// Future-work direction 2 of the paper (§6): use decision units to train
// a DL-based EM system, then explain it post hoc. This example feeds
// WYM's scored units into the (non-interpretable) DITTO stand-in's
// feature space — comparing the black-box model with and without the
// unit signal — and explains the result with LIME.
//
// Run: ./build/examples/units_for_dl

#include <cstdio>

#include "baselines/ditto.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "explain/lime.h"
#include "ml/metrics.h"

int main() {
  const wym::data::Dataset dataset =
      wym::data::GenerateById("S-DA", /*seed=*/3, /*scale=*/0.5);
  const wym::data::Split split = wym::data::DefaultSplit(dataset, 3);
  std::printf("dataset %s: %zu records\n", dataset.name.c_str(),
              dataset.size());

  // The interpretable system...
  wym::core::WymModel wym_model;
  wym_model.Fit(split.train, split.validation);
  const double wym_f1 = wym::ml::F1Score(
      split.test.Labels(), wym_model.PredictDataset(split.test));

  // ...and the black box.
  wym::baselines::DittoMatcher ditto;
  ditto.Fit(split.train, split.validation);
  const double ditto_f1 = wym::ml::F1Score(
      split.test.Labels(), ditto.PredictDataset(split.test));

  std::printf("WYM   test F1: %.3f (intrinsic explanations)\n", wym_f1);
  std::printf("DITTO test F1: %.3f (opaque)\n", ditto_f1);

  // Explain one DITTO prediction post hoc with LIME and contrast it with
  // WYM's intrinsic decision units on the same record.
  const wym::data::EmRecord& record = split.test.records.front();
  wym::explain::LimeOptions lime_options;
  lime_options.num_samples = 60;
  const wym::explain::LimeExplainer lime(lime_options);
  const auto lime_explanation = lime.Explain(ditto, record);

  std::printf("\nDITTO + LIME, top tokens (record label=%d):\n",
              record.label);
  size_t shown = 0;
  for (size_t index : lime_explanation.RankByMagnitude()) {
    const auto& tw = lime_explanation.weights[index];
    std::printf("  %-16s (%s, attr %zu)  weight %+0.4f\n",
                tw.key.token.c_str(),
                tw.key.side == wym::core::Side::kLeft ? "left" : "right",
                tw.key.attribute, tw.weight);
    if (++shown == 5) break;
  }

  const auto wym_explanation = wym_model.Explain(record);
  std::printf("\nWYM intrinsic decision units, top units:\n");
  shown = 0;
  for (size_t index : wym_explanation.RankByImpactMagnitude()) {
    const auto& unit = wym_explanation.units[index];
    std::printf("  %-28s impact %+0.4f\n", unit.unit.Label().c_str(),
                unit.impact);
    if (++shown == 5) break;
  }
  std::printf(
      "\nThe unit-level view names the *pair* of tokens that justifies the\n"
      "decision; the token-level view splits that evidence in two.\n");
  return 0;
}
