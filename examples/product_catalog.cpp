// Product-catalog deduplication with domain knowledge: reproduces the
// paper's §5.1.1 error analysis — WYM mispairs different product codes
// into one decision unit; adding the "equal product codes only" rule
// recovers F1 (the paper reports T-AB going from 0.645 to 0.754).
//
// Run: ./build/examples/product_catalog

#include <cstdio>

#include "core/unit_generator.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "ml/metrics.h"

namespace {

double TrainAndScore(const wym::core::WymConfig& config,
                     const wym::data::Split& split) {
  wym::core::WymModel model(config);
  model.Fit(split.train, split.validation);
  return wym::ml::F1Score(split.test.Labels(),
                          model.PredictDataset(split.test));
}

}  // namespace

int main() {
  // The textual Abt-Buy-style dataset: long descriptions, periphrasis,
  // and near-identical products that differ only in their model code.
  const wym::data::Dataset dataset =
      wym::data::GenerateById("T-AB", /*seed=*/7, /*scale=*/0.6);
  const wym::data::Split split = wym::data::DefaultSplit(dataset, 7);
  std::printf("dataset %s: %zu records (%.1f%% match)\n",
              dataset.name.c_str(), dataset.size(), dataset.MatchPercent());

  // Baseline WYM.
  wym::core::WymConfig config;
  const double base_f1 = TrainAndScore(config, split);
  std::printf("WYM without domain rules:   F1 = %.3f\n", base_f1);

  // WYM + the product-code rule: alphanumeric codes only pair if equal.
  config.generator.rules.push_back(wym::core::EqualProductCodeRule());
  const double ruled_f1 = TrainAndScore(config, split);
  std::printf("WYM with product-code rule: F1 = %.3f\n", ruled_f1);

  std::printf(
      "\nThe rule vetoes spurious (code_a, code_b) pairings, turning them\n"
      "into unpaired units that correctly push toward non-match\n"
      "(paper Section 5.1.1: F1 0.645 -> 0.754 on Abt-Buy).\n");
  return 0;
}
