// Reproduces the paper's running example end to end: the two records of
// Table 1 (a matching pair of Microsoft Exchange Server listings and a
// non-matching pair of cameras), explained Figure-3 style with relevance
// and impact bars.
//
// Run: ./build/examples/paper_table1

#include <cstdio>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "explain/report.h"

namespace {

wym::data::EmRecord MakeRecord(std::vector<std::string> left,
                               std::vector<std::string> right, int label) {
  wym::data::EmRecord record;
  record.left.values = std::move(left);
  record.right.values = std::move(right);
  record.label = label;
  return record;
}

}  // namespace

int main() {
  // Two in-domain models over the same {name, manufacturer, price}
  // schema: the software benchmark covers Table 1's Exchange Server row
  // ("exch" is the abbreviation of "exchange" in the corruption model
  // too), the electronics benchmark covers the camera row.
  auto train_on = [](const char* id) {
    const wym::data::Dataset dataset =
        wym::data::GenerateById(id, /*seed=*/42, /*scale=*/1.0);
    const wym::data::Split split = wym::data::DefaultSplit(dataset, 42);
    wym::core::WymModel model;
    model.Fit(split.train, split.validation);
    std::printf("trained on %s (%zu records); classifier %s\n",
                dataset.name.c_str(), dataset.size(),
                model.matcher().best_name().c_str());
    return model;
  };
  const wym::core::WymModel software_model = train_on("S-AG");
  const wym::core::WymModel product_model = train_on("S-WA");
  std::printf("\n");

  // Paper Table 1, row 1 — matching entities (cf. Figure 3a/3c).
  const wym::data::EmRecord matching = MakeRecord(
      {"exch srvr external sa eng 39400416", "microsoft licenses",
       "42166.22"},
      {"39400416 exch svr external l sa", "microsoft licenses", "22575.14"},
      1);
  // Paper Table 1, row 2 — non-matching entities (cf. Figure 3b/3d).
  const wym::data::EmRecord non_matching = MakeRecord(
      {"digital camera with lens kit dslra200w", "sony", "37.63"},
      {"digital camera leather case 5811", "nikon", "36.11"}, 0);

  wym::explain::ReportOptions report;
  report.bar_width = 32;

  std::printf("--- Table 1 row 1: matching descriptions (Figure 3c) ---\n");
  std::printf("%s\n",
              wym::explain::RenderExplanation(
                  software_model.Explain(matching), report)
                  .c_str());

  std::printf("--- Table 1 row 2: non-matching descriptions (Figure 3d) ---\n");
  std::printf("%s\n",
              wym::explain::RenderExplanation(
                  product_model.Explain(non_matching), report)
                  .c_str());

  std::printf(
      "Paper reading (section 4.3.1): the product-code pair (39400416,\n"
      "39400416) should carry the largest match impact in row 1; in row 2\n"
      "the unpaired code/feature tokens (dslra200w), (5811), (lens), ...\n"
      "jointly push toward non-match with similar magnitudes.\n");
  return 0;
}
