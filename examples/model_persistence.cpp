// Train-once / serve-many: persists a trained WYM pipeline to disk and
// reloads it in a "serving" role — predictions and explanations are
// bit-identical to the in-memory model. Finishes with the global
// attribution report (dataset-level interpretability).
//
// Run: ./build/examples/model_persistence

#include <cstdio>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "explain/global.h"
#include "explain/report.h"
#include "ml/metrics.h"

int main() {
  const wym::data::Dataset dataset =
      wym::data::GenerateById("S-DA", /*seed=*/42, /*scale=*/0.6);
  const wym::data::Split split = wym::data::DefaultSplit(dataset, 42);

  // --- training side ---
  wym::core::WymModel trainer;
  trainer.Fit(split.train, split.validation);
  const char* path = "/tmp/wym_sda.model";
  const wym::Status saved = trainer.SaveToFile(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("trained (%s, validation F1 %.3f) and saved to %s\n",
              trainer.matcher().best_name().c_str(),
              trainer.matcher().best_validation_f1(), path);

  // --- serving side (a fresh process would start here) ---
  auto loaded = wym::core::WymModel::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const wym::core::WymModel& server = loaded.value();

  const double f1 = wym::ml::F1Score(split.test.Labels(),
                                     server.PredictDataset(split.test));
  std::printf("restored model test F1: %.3f\n", f1);

  // Identical explanations before and after the round trip.
  const auto& record = split.test.records.front();
  const double drift = std::abs(trainer.PredictProba(record) -
                                server.PredictProba(record));
  std::printf("probability drift after round trip: %.2e (must be 0)\n\n",
              drift);

  std::printf("%s\n", wym::explain::RenderExplanation(
                          server.Explain(record),
                          {.max_units = 6, .bar_width = 30,
                           .show_relevance = true})
                          .c_str());

  // Dataset-level view: which attributes drive this matcher?
  const wym::explain::GlobalAttribution report =
      wym::explain::ComputeGlobalAttribution(
          server, wym::data::Subset(split.test,
                                    [&] {
                                      std::vector<size_t> idx;
                                      for (size_t i = 0;
                                           i < 80 && i < split.test.size();
                                           ++i) {
                                        idx.push_back(i);
                                      }
                                      return idx;
                                    }(),
                                    "/head"));
  std::printf("%s",
              wym::explain::RenderGlobalAttribution(report, dataset.schema)
                  .c_str());
  return 0;
}
