// Quickstart: train WYM on a small product dataset and explain two
// predictions — the matching / non-matching examples of the paper's
// Table 1 and Figure 3.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "ml/metrics.h"

namespace {

void PrintExplanation(const char* title,
                      const wym::core::Explanation& explanation) {
  std::printf("\n%s\n", title);
  std::printf("  prediction: %s (p=%.3f)\n",
              explanation.prediction == 1 ? "MATCH" : "NO MATCH",
              explanation.probability);
  std::printf("  %-28s %10s %10s\n", "decision unit", "relevance", "impact");
  for (size_t index : explanation.RankByImpactMagnitude()) {
    const auto& unit = explanation.units[index];
    std::printf("  %-28s %10.3f %10.3f\n", unit.unit.Label().c_str(),
                unit.relevance, unit.impact);
  }
}

}  // namespace

int main() {
  // 1. A small Walmart-Amazon-style product dataset (synthetic; see
  //    DESIGN.md for the substitution rationale) with the paper's
  //    60-20-20 split.
  const wym::data::Dataset dataset =
      wym::data::GenerateById("S-WA", /*seed=*/42, /*scale=*/1.0);
  const wym::data::Split split = wym::data::DefaultSplit(dataset, 42);
  std::printf("dataset %s: %zu records (%.1f%% match)\n",
              dataset.name.c_str(), dataset.size(), dataset.MatchPercent());

  // 2. Train the full WYM pipeline (paper defaults).
  wym::core::WymModel model;
  model.Fit(split.train, split.validation);
  std::printf("selected classifier: %s (validation F1 %.3f)\n",
              model.matcher().best_name().c_str(),
              model.matcher().best_validation_f1());

  // 3. Test-set effectiveness.
  const std::vector<int> predicted = model.PredictDataset(split.test);
  std::printf("test F1: %.3f\n",
              wym::ml::F1Score(split.test.Labels(), predicted));

  // 4. Explanations for one matching and one non-matching record.
  const wym::data::EmRecord* match = nullptr;
  const wym::data::EmRecord* non_match = nullptr;
  for (const auto& record : split.test.records) {
    if (record.label == 1 && match == nullptr) match = &record;
    if (record.label == 0 && non_match == nullptr) non_match = &record;
    if (match && non_match) break;
  }
  if (match != nullptr) {
    PrintExplanation("--- matching record (cf. Figure 3c) ---",
                     model.Explain(*match));
  }
  if (non_match != nullptr) {
    PrintExplanation("--- non-matching record (cf. Figure 3d) ---",
                     model.Explain(*non_match));
  }
  return 0;
}
