// End-to-end entity resolution from raw tables: the full deployment
// pipeline upstream of the paper's setting. Two product feeds (noisy
// views of one catalog) are streamed through the candidate-generation
// tier, WYM is trained on a labelled sample of candidates, and the two
// tables are then matched end to end with blocking::MatchTables.
//
// Run: ./build/examples/end_to_end_er

#include <cstdio>

#include "blocking/blocker.h"
#include "blocking/candidate_stream.h"
#include "core/wym.h"
#include "data/catalog.h"
#include "data/corruption.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "util/random.h"

using namespace wym;

int main() {
  // 1. Build two "source feeds" from one ground-truth catalog: each
  //    source carries its own corruption, and only 70% of the catalog
  //    appears in both sources.
  Rng rng(99);
  const data::Schema schema = data::DomainSchema(data::Domain::kProduct);
  const auto catalog = data::GenerateCatalog(data::Domain::kProduct, 400, &rng);

  data::CorruptionProfile profile;  // Mild per-source noise.
  profile.typo = 0.02;
  profile.drop_token = 0.05;
  profile.abbreviate = 0.1;

  blocking::EntityTable source_a{schema, {}}, source_b{schema, {}};
  std::vector<size_t> identity_a, identity_b;
  for (size_t i = 0; i < catalog.size(); ++i) {
    data::Entity base;
    base.values = catalog[i].values;
    if (rng.Bernoulli(0.85)) {
      source_a.rows.push_back(
          data::CorruptEntity(base, schema, profile, &rng));
      identity_a.push_back(i);
    }
    if (rng.Bernoulli(0.85)) {
      source_b.rows.push_back(
          data::CorruptEntity(base, schema, profile, &rng));
      identity_b.push_back(i);
    }
  }
  std::printf("source A: %zu rows, source B: %zu rows\n", source_a.size(),
              source_b.size());

  // 2. Candidate generation: one CandidateStream covers the token index
  //    (with exact-duplicate short-circuit) plus the embedding-LSH
  //    stage for the typo'd rows the token index misses.
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(encoder_options);
  encoder.Fit({});

  blocking::CandidateStreamOptions stream_options;
  stream_options.encoder = &encoder;
  blocking::CandidateStream stream(source_a, source_b, stream_options);
  const auto candidates = stream.Drain();
  std::printf(
      "blocking: %zu streamed candidates "
      "(%.1f%% of the %zu x %zu cross product), recall %.3f\n",
      candidates.size(),
      100.0 * static_cast<double>(candidates.size()) /
          static_cast<double>(source_a.size() * source_b.size()),
      source_a.size(), source_b.size(),
      blocking::BlockingRecall(candidates, identity_a, identity_b));

  // 3. Label the candidates with the (normally human-provided) ground
  //    truth and train WYM on a 60-20-20 split.
  const data::Dataset dataset = blocking::BuildCandidateDataset(
      source_a, source_b, candidates, identity_a, identity_b, "er-demo");
  std::printf("candidate dataset: %zu records, %.1f%% matches\n",
              dataset.size(), dataset.MatchPercent());

  const data::Split split = data::DefaultSplit(dataset, 7);
  core::WymModel model;
  model.Fit(split.train, split.validation);

  const double f1 =
      ml::F1Score(split.test.Labels(), model.PredictDataset(split.test));
  std::printf("matcher test F1 on candidates: %.3f (classifier: %s)\n", f1,
              model.matcher().best_name().c_str());

  // 4. Match the two raw tables end to end: candidate chunks stream
  //    straight into the trained model in bounded batches.
  blocking::MatchTablesStats stats;
  const auto matches =
      blocking::MatchTables(model, source_a, source_b, {}, nullptr, &stats);
  size_t correct = 0;
  for (const auto& m : matches) {
    correct += identity_a[m.left_row] == identity_b[m.right_row] ? 1 : 0;
  }
  std::printf(
      "MatchTables: %zu candidates scored -> %zu matches, %.1f%% correct "
      "under ground truth\n",
      stats.candidates_scored, matches.size(),
      matches.empty() ? 0.0
                      : 100.0 * static_cast<double>(correct) /
                            static_cast<double>(matches.size()));

  // 5. Resolve + explain one prediction.
  const core::Explanation explanation =
      model.Explain(split.test.records.front());
  std::printf("\nexample resolution: %s (p=%.2f); top units:\n",
              explanation.prediction ? "MATCH" : "NO MATCH",
              explanation.probability);
  size_t shown = 0;
  for (size_t index : explanation.RankByImpactMagnitude()) {
    const auto& unit = explanation.units[index];
    std::printf("  %-28s impact %+0.3f\n", unit.unit.Label().c_str(),
                unit.impact);
    if (++shown == 5) break;
  }
  return 0;
}
