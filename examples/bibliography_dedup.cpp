// Bibliographic deduplication on dirty data: trains WYM on the dirty
// DBLP-GoogleScholar-style dataset (attribute values spilled into the
// wrong columns, challenge R2) and shows how inter-attribute decision
// units recover the misplaced correspondences.
//
// Run: ./build/examples/bibliography_dedup

#include <cstdio>
#include <map>

#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/split.h"
#include "ml/metrics.h"

int main() {
  const wym::data::Dataset dataset =
      wym::data::GenerateById("D-DG", /*seed=*/11, /*scale=*/0.5);
  const wym::data::Split split = wym::data::DefaultSplit(dataset, 11);
  std::printf("dataset %s: %zu records (%.1f%% match)\n",
              dataset.name.c_str(), dataset.size(), dataset.MatchPercent());

  wym::core::WymModel model;
  model.Fit(split.train, split.validation);
  std::printf("selected classifier: %s\n",
              model.matcher().best_name().c_str());
  std::printf("test F1: %.3f\n",
              wym::ml::F1Score(split.test.Labels(),
                               model.PredictDataset(split.test)));

  // How often does each Algorithm 1 phase fire on dirty data? Phase 2
  // (inter-attribute, threshold eta) is what rescues spilled values.
  std::map<wym::core::UnitPhase, size_t> phase_counts;
  size_t total_units = 0;
  for (const auto& record : split.test.records) {
    const auto tokenized = model.Prepare(record);
    for (const auto& unit : model.GenerateUnits(tokenized)) {
      ++phase_counts[unit.phase];
      ++total_units;
    }
  }
  auto share = [&](wym::core::UnitPhase phase) {
    return 100.0 * static_cast<double>(phase_counts[phase]) /
           static_cast<double>(total_units);
  };
  std::printf("\ndecision units on the test set (%zu total):\n", total_units);
  std::printf("  intra-attribute pairs (theta): %5.1f%%\n",
              share(wym::core::UnitPhase::kIntraAttribute));
  std::printf("  inter-attribute pairs (eta):   %5.1f%%  <- dirty rescue\n",
              share(wym::core::UnitPhase::kInterAttribute));
  std::printf("  one-to-many pairs (epsilon):   %5.1f%%\n",
              share(wym::core::UnitPhase::kOneToMany));
  std::printf("  unpaired units:                %5.1f%%\n",
              share(wym::core::UnitPhase::kUnpaired));
  return 0;
}
