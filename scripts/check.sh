#!/bin/sh
# One-shot correctness gate: build + ctest in every supported checking
# configuration, then print a pass/fail summary. Nonzero exit when any
# configuration fails. Run from the repo root:
#
#   sh scripts/check.sh              # all configurations
#   sh scripts/check.sh release      # just one
#                                    # (release|ubsan|asan-ubsan|debug-checks|
#                                    #  perf-report)
#   sh scripts/check.sh --fast       # release build + static analysis +
#                                    # ctest only (the quick pre-push loop)
#
# Build trees and logs land under build/check/<name>/ so they never
# disturb an existing build/ directory and a single `rm -rf build`
# clears everything. Set JOBS to cap build parallelism.

set -u

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}
ONLY=${1:-all}
CHECK_DIR="$ROOT/build/check"
mkdir -p "$CHECK_DIR"

SUMMARY=""
FAILED=0

run_config() {
  name=$1
  shift
  if [ "$ONLY" != all ] && [ "$ONLY" != "$name" ]; then
    return 0
  fi
  build="$CHECK_DIR/$name"
  log="$CHECK_DIR/$name.log"
  echo "==> [$name] configure + build + ctest ($build)"
  if cmake -B "$build" -S "$ROOT" "$@" > "$log" 2>&1 \
     && cmake --build "$build" -j "$JOBS" >> "$log" 2>&1 \
     && ctest --test-dir "$build" --output-on-failure -j 2 >> "$log" 2>&1
  then
    SUMMARY="$SUMMARY
  PASS  $name"
  else
    SUMMARY="$SUMMARY
  FAIL  $name (see $log)"
    FAILED=1
    tail -n 30 "$log"
  fi
}

# --fast: the pre-push loop. One release build, the three wym_lint
# passes run explicitly (so their findings land on the terminal, not
# just in a ctest log), then the full release ctest suite. Sanitizer
# and perf tiers are the full run's job.
if [ "$ONLY" = "--fast" ]; then
  build="$CHECK_DIR/release"
  log="$CHECK_DIR/fast.log"
  echo "==> [fast] release build + lint/graph/taint + ctest ($build)"
  if ! cmake -B "$build" -S "$ROOT" > "$log" 2>&1 \
     || ! cmake --build "$build" -j "$JOBS" >> "$log" 2>&1; then
    tail -n 30 "$log"
    echo "check.sh --fast: FAIL (build; see $log)"
    exit 1
  fi
  for pass in lint graph taint; do
    if ! "$build/tools/wym_lint" "$pass" "$ROOT"; then
      echo "check.sh --fast: FAIL (wym_lint $pass)"
      exit 1
    fi
  done
  if ! ctest --test-dir "$build" --output-on-failure -j 2 >> "$log" 2>&1
  then
    tail -n 30 "$log"
    echo "check.sh --fast: FAIL (ctest; see $log)"
    exit 1
  fi
  echo "check.sh --fast: PASS"
  exit 0
fi

# Release: the tier-1 configuration, including the wym_lint /
# wym_lint_graph / wym_lint_taint ctest gates.
run_config release
# UBSan: -fno-sanitize-recover=all makes any UB finding a test failure.
run_config ubsan -DWYM_SANITIZE=undefined
# ASan+UBSan: the fault-injection sweep (truncated/bit-flipped model
# files, mid-write failures) must stay memory-clean, not merely return
# the right Status.
run_config asan-ubsan -DWYM_SANITIZE=address,undefined
# Debug invariant tier: WYM_DCHECK bounds/dimension/NaN checks live.
run_config debug-checks -DWYM_DEBUG_CHECKS=ON

# Perf report: bench_micro --json and bench_blocking --json must emit
# schema-valid wym-bench-report/v1 files (the BENCH_*.json trajectory).
# Reuses the release tree; a short benchmark subset and a small blocking
# table keep the step fast. The fresh micro report is then gated against
# the seeded repo-root BENCH_micro.json via compare-reports: only the
# benchmark-name intersection is compared, and the 60% tolerance (vs the
# tool's 10% default) absorbs the noise of short runs on loaded
# single-CPU CI boxes while still catching order-of-magnitude cliffs.
# Reseed the baseline after intentional perf changes (see DESIGN.md).
run_perf_report() {
  name=perf-report
  if [ "$ONLY" != all ] && [ "$ONLY" != "$name" ]; then
    return 0
  fi
  build="$CHECK_DIR/release"
  log="$CHECK_DIR/perf-report.log"
  report="$build/BENCH_micro.json"
  blocking_report="$build/BENCH_blocking.json"
  echo "==> [$name] bench_micro/bench_blocking --json + schema validation"
  if cmake -B "$build" -S "$ROOT" > "$log" 2>&1 \
     && cmake --build "$build" -j "$JOBS" \
        --target bench_micro bench_blocking wym_cli >> "$log" 2>&1 \
     && "$build/bench/bench_micro" --json="$report" \
        --benchmark_filter='BM_Dot|BM_UnitGeneration_Cached' \
        --benchmark_min_time=0.01 >> "$log" 2>&1 \
     && "$build/tools/wym_cli" validate-report --file "$report" \
        >> "$log" 2>&1 \
     && WYM_BLOCK_ROWS=500 WYM_BLOCK_BASELINE_ROWS=100 \
        "$build/bench/bench_blocking" --json="$blocking_report" \
        >> "$log" 2>&1 \
     && "$build/tools/wym_cli" validate-report --file "$blocking_report" \
        >> "$log" 2>&1 \
     && "$build/tools/wym_cli" compare-reports "$ROOT/BENCH_micro.json" \
        "$report" --tolerance 0.6 >> "$log" 2>&1
  then
    SUMMARY="$SUMMARY
  PASS  $name"
  else
    SUMMARY="$SUMMARY
  FAIL  $name (see $log)"
    FAILED=1
    tail -n 30 "$log"
  fi
}
run_perf_report

echo
echo "check.sh summary:$SUMMARY"
exit $FAILED
