#!/bin/sh
# One-shot correctness gate: build + ctest in every supported checking
# configuration, then print a pass/fail summary. Nonzero exit when any
# configuration fails. Run from the repo root:
#
#   sh scripts/check.sh              # all configurations
#   sh scripts/check.sh release      # just one
#                                    # (release|ubsan|asan-ubsan|debug-checks|
#                                    #  perf-report)
#   sh scripts/check.sh --fast       # release build + static analysis +
#                                    # ctest only (the quick pre-push loop)
#
# Build trees and logs land under build/check/<name>/ so they never
# disturb an existing build/ directory and a single `rm -rf build`
# clears everything. Set JOBS to cap build parallelism.

set -u

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}
ONLY=${1:-all}
CHECK_DIR="$ROOT/build/check"
mkdir -p "$CHECK_DIR"

SUMMARY=""
FAILED=0

run_config() {
  name=$1
  shift
  if [ "$ONLY" != all ] && [ "$ONLY" != "$name" ]; then
    return 0
  fi
  build="$CHECK_DIR/$name"
  log="$CHECK_DIR/$name.log"
  echo "==> [$name] configure + build + ctest ($build)"
  if cmake -B "$build" -S "$ROOT" "$@" > "$log" 2>&1 \
     && cmake --build "$build" -j "$JOBS" >> "$log" 2>&1 \
     && ctest --test-dir "$build" --output-on-failure -j 2 >> "$log" 2>&1
  then
    SUMMARY="$SUMMARY
  PASS  $name"
  else
    SUMMARY="$SUMMARY
  FAIL  $name (see $log)"
    FAILED=1
    tail -n 30 "$log"
  fi
}

# --fast: the pre-push loop. One release build, the three wym_lint
# passes run explicitly (so their findings land on the terminal, not
# just in a ctest log), then the full release ctest suite. Sanitizer
# and perf tiers are the full run's job.
if [ "$ONLY" = "--fast" ]; then
  build="$CHECK_DIR/release"
  log="$CHECK_DIR/fast.log"
  echo "==> [fast] release build + lint/graph/taint + ctest ($build)"
  if ! cmake -B "$build" -S "$ROOT" > "$log" 2>&1 \
     || ! cmake --build "$build" -j "$JOBS" >> "$log" 2>&1; then
    tail -n 30 "$log"
    echo "check.sh --fast: FAIL (build; see $log)"
    exit 1
  fi
  for pass in lint graph taint; do
    if ! "$build/tools/wym_lint" "$pass" "$ROOT"; then
      echo "check.sh --fast: FAIL (wym_lint $pass)"
      exit 1
    fi
  done
  if ! ctest --test-dir "$build" --output-on-failure -j 2 >> "$log" 2>&1
  then
    tail -n 30 "$log"
    echo "check.sh --fast: FAIL (ctest; see $log)"
    exit 1
  fi
  echo "check.sh --fast: PASS"
  exit 0
fi

# Release: the tier-1 configuration, including the wym_lint /
# wym_lint_graph / wym_lint_taint ctest gates.
run_config release
# UBSan: -fno-sanitize-recover=all makes any UB finding a test failure.
run_config ubsan -DWYM_SANITIZE=undefined
# ASan+UBSan: the fault-injection sweep (truncated/bit-flipped model
# files, mid-write failures) must stay memory-clean, not merely return
# the right Status.
run_config asan-ubsan -DWYM_SANITIZE=address,undefined
# Debug invariant tier: WYM_DCHECK bounds/dimension/NaN checks live.
run_config debug-checks -DWYM_DEBUG_CHECKS=ON

# Short live serving session with telemetry on: train a tiny model,
# serve it, answer a few requests, drain, then require the exported
# wym-telemetry/v1 artifact and the request journal to validate. This
# is the end-to-end proof that a real wym_serve run leaves
# schema-valid telemetry behind.
serve_telemetry_check() {
  build=$1
  work="$CHECK_DIR/serve-telemetry"
  rm -rf "$work"
  mkdir -p "$work"
  "$build/tools/wym_cli" generate --dataset S-FZ --out "$work/data.csv" \
    --seed 42 --scale 0.2 || return 1
  "$build/tools/wym_cli" train-eval --data "$work/data.csv" \
    --save "$work/model.wym" || return 1
  "$build/tools/wym_serve" --socket "$work/wym.sock" \
    --model "default=$work/model.wym" \
    --journal "$work/journal.jsonl" \
    --recorder 64 --recorder-out "$work/postmortem.json" \
    --telemetry-out "$work/telemetry.json" --telemetry-period 1 &
  serve_pid=$!
  i=0
  until "$build/tools/wym_cli" query --socket "$work/wym.sock" --op ping \
        --retries 0 --timeout-ms 2000 > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
      kill "$serve_pid" 2>/dev/null
      wait "$serve_pid" 2>/dev/null
      return 1
    fi
    sleep 0.1
  done
  for n in 1 2 3 4 5 6 7 8; do
    "$build/tools/wym_cli" query --socket "$work/wym.sock" --op ping \
      --retries 0 > /dev/null 2>&1 || { kill "$serve_pid" 2>/dev/null; \
        wait "$serve_pid" 2>/dev/null; return 1; }
  done
  sleep 1
  "$build/tools/wym_cli" query --socket "$work/wym.sock" --op shutdown \
    --retries 0 > /dev/null 2>&1
  wait "$serve_pid" || return 1
  "$build/tools/wym_cli" validate-report --file "$work/telemetry.json" \
    || return 1
  "$build/tools/wym_cli" validate-report --file "$work/journal.jsonl" \
    || return 1
  "$build/tools/wym_cli" validate-report --file "$work/postmortem.json"
}

# Perf report: bench_micro --json and bench_blocking --json must emit
# schema-valid wym-bench-report/v1 files (the BENCH_*.json trajectory).
# Reuses the release tree; a short benchmark subset and a small blocking
# table keep the step fast. The fresh micro report is then gated against
# the seeded repo-root BENCH_micro.json via compare-reports: only the
# benchmark-name intersection is compared, and the 60% tolerance (vs the
# tool's 10% default) absorbs the noise of short runs on loaded
# single-CPU CI boxes while still catching order-of-magnitude cliffs.
# Reseed the baseline after intentional perf changes (see DESIGN.md).
# The serve benchmarks put the telemetry on/off pair into the report so
# the <=2% overhead budget is visible in the BENCH_micro.json
# trajectory, and serve_telemetry_check proves a live session exports
# valid artifacts.
run_perf_report() {
  name=perf-report
  if [ "$ONLY" != all ] && [ "$ONLY" != "$name" ]; then
    return 0
  fi
  build="$CHECK_DIR/release"
  log="$CHECK_DIR/perf-report.log"
  report="$build/BENCH_micro.json"
  blocking_report="$build/BENCH_blocking.json"
  echo "==> [$name] bench_micro/bench_blocking --json + schema validation"
  if cmake -B "$build" -S "$ROOT" > "$log" 2>&1 \
     && cmake --build "$build" -j "$JOBS" \
        --target bench_micro bench_blocking wym_cli wym_serve_bin \
        >> "$log" 2>&1 \
     && "$build/bench/bench_micro" --json="$report" \
        --benchmark_filter='BM_Dot|BM_UnitGeneration_Cached|BM_ServePredict' \
        --benchmark_min_time=0.01 >> "$log" 2>&1 \
     && "$build/tools/wym_cli" validate-report --file "$report" \
        >> "$log" 2>&1 \
     && WYM_BLOCK_ROWS=500 WYM_BLOCK_BASELINE_ROWS=100 \
        "$build/bench/bench_blocking" --json="$blocking_report" \
        >> "$log" 2>&1 \
     && "$build/tools/wym_cli" validate-report --file "$blocking_report" \
        >> "$log" 2>&1 \
     && serve_telemetry_check "$build" >> "$log" 2>&1 \
     && "$build/tools/wym_cli" compare-reports "$ROOT/BENCH_micro.json" \
        "$report" --tolerance 0.6 >> "$log" 2>&1
  then
    SUMMARY="$SUMMARY
  PASS  $name"
  else
    SUMMARY="$SUMMARY
  FAIL  $name (see $log)"
    FAILED=1
    tail -n 30 "$log"
  fi
}
run_perf_report

echo
echo "check.sh summary:$SUMMARY"
exit $FAILED
