#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string_view>
#include <tuple>
#include <vector>

#include "util/stopwatch.h"

namespace wym::obs {

namespace {

/// One recorded complete event. Name/category are unowned string
/// literals (documented contract in trace.h).
struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
};

/// Per-thread event buffer. Owned by the collector (so events survive
/// thread exit), written by exactly one thread, drained under its
/// mutex at flush time.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

/// Process-wide collector. `active` gates the hot path; everything
/// else is touched only on registration and flush.
struct Collector {
  std::atomic<bool> active{false};
  std::mutex mu;  // Guards path and buffers.
  std::string path;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;

  Collector() {
    const char* env = std::getenv("WYM_TRACE");
    if (env != nullptr && env[0] != '\0') {
      path = env;
      active.store(true, std::memory_order_release);
      // Flush on clean exit so WYM_TRACE works with any entry point
      // (CLI subcommands, tests, benches) without explicit plumbing.
      std::atexit([] {
        std::string error;
        if (!StopTracingAndWrite(&error)) {
          std::fprintf(stderr, "wym: WYM_TRACE flush failed: %s\n",
                       error.c_str());
        }
      });
    }
  }
};

Collector& GetCollector() {
  static Collector* collector = new Collector();  // wym-lint: allow(no-raw-new-delete): intentionally leaked singleton; spans may close during static destruction, after a static value would already be gone.
  return *collector;
}

/// The calling thread's buffer, registered with the collector on first
/// use and cached thread-locally.
ThreadBuffer& GetThreadBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    Collector& collector = GetCollector();
    const std::lock_guard<std::mutex> lock(collector.mu);
    collector.buffers.push_back(std::make_unique<ThreadBuffer>());
    collector.buffers.back()->tid = collector.next_tid++;
    return collector.buffers.back().get();
  }();
  return *buffer;
}

}  // namespace

std::uint64_t NowNanos() {
  // Single process-wide epoch; magic-static init is thread-safe.
  static const Stopwatch epoch;
  return epoch.ElapsedNanos();
}

bool TracingActive() {
  return GetCollector().active.load(std::memory_order_acquire);
}

void StartTracing(const std::string& path) {
  Collector& collector = GetCollector();
  {
    const std::lock_guard<std::mutex> lock(collector.mu);
    collector.path = path;
  }
  collector.active.store(true, std::memory_order_release);
}

bool StopTracingAndWrite(std::string* error) {
  Collector& collector = GetCollector();
  if (!collector.active.exchange(false, std::memory_order_acq_rel)) {
    if (error != nullptr) *error = "tracing was not active";
    return false;
  }

  std::vector<TraceEvent> events;
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(collector.mu);
    path = collector.path;
    for (const std::unique_ptr<ThreadBuffer>& buffer : collector.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
      buffer->events.clear();
    }
  }
  // Deterministic file order for a deterministic workload: sort by
  // time, then thread, then name (chrome://tracing does not care, but
  // diffs and tests do).
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::make_tuple(a.start_ns, a.tid, a.dur_ns,
                                     std::string_view(a.name)) <
                     std::make_tuple(b.start_ns, b.tid, b.dur_ns,
                                     std::string_view(b.name));
            });

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open trace file: " + path;
    return false;
  }
  // Chrome trace_event JSON object format; "ts"/"dur" are microseconds
  // (fractional allowed), hence the /1000.0 from our nanosecond spans.
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ",";
    out << "\n{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out << buf << ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out << buf << "}";
  }
  out << "\n]}\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

void AppendCompleteEvent(const char* name, const char* category,
                         std::uint64_t start_ns, std::uint64_t dur_ns) {
  if (!TracingActive()) return;
  ThreadBuffer& buffer = GetThreadBuffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      TraceEvent{name, category, start_ns, dur_ns, buffer.tid});
}

SpanScope::SpanScope(const char* name, const char* category)
    : name_(name),
      category_(category),
      start_ns_(0),
      active_(TracingActive()) {
  if (active_) start_ns_ = NowNanos();
}

SpanScope::~SpanScope() {
  if (!active_) return;
  // Re-check: tracing may have stopped mid-span; dropping the event is
  // better than writing to a drained buffer set.
  if (!TracingActive()) return;
  const std::uint64_t end_ns = NowNanos();
  AppendCompleteEvent(name_, category_, start_ns_,
                      end_ns >= start_ns_ ? end_ns - start_ns_ : 0);
}

}  // namespace wym::obs
