#ifndef WYM_OBS_TRACE_H_
#define WYM_OBS_TRACE_H_

#include <cstdint>
#include <string>

/// \file
/// Span-based tracing with Chrome trace_event JSON export.
///
/// Usage: set WYM_TRACE=/path/to/out.json in the environment and run
/// any pipeline entry point; a complete-event ("ph":"X") trace is
/// written at process exit (or at StopTracingAndWrite()) that loads
/// directly in chrome://tracing / Perfetto. Instrumented code wraps
/// stages in a SpanScope (or the WYM_SPAN macro):
///
///   {
///     obs::SpanScope span("fit.tokenize");
///     ... work ...
///   }
///
/// Cost model: when tracing is inactive a SpanScope is one relaxed
/// atomic load in the constructor and one branch in the destructor —
/// no clock reads, no allocation. When active, each span costs two
/// clock reads plus an append to a per-thread buffer (amortized; the
/// buffer grows geometrically and is flushed once at the end).
///
/// Span names and categories must be string literals (or otherwise
/// outlive tracing): events store the pointers, not copies, so the
/// hot path never allocates.
///
/// Time comes from a single process-wide util::Stopwatch epoch
/// (NowNanos()), the tree's one sanctioned time source — metrics
/// histograms and spans therefore share a clock by construction.

namespace wym::obs {

/// Nanoseconds since the process trace epoch (first use). Monotonic,
/// shared by spans and callers that time sections manually (e.g. the
/// thread pool's queue-wait histogram).
std::uint64_t NowNanos();

/// True when spans are being collected.
bool TracingActive();

/// Starts collecting spans, to be written to `path` on
/// StopTracingAndWrite() or process exit. Programmatic alternative to
/// WYM_TRACE for tests and tools; calling while already active just
/// redirects the output path.
void StartTracing(const std::string& path);

/// Stops collection and writes the trace_event JSON file. Returns
/// false (with `*error` set, if non-null) when the file cannot be
/// written or tracing was never started. Idempotent: a second call
/// without an intervening StartTracing() fails cleanly.
bool StopTracingAndWrite(std::string* error = nullptr);

/// Appends one complete event ("ph":"X"). `name` and `category` must
/// outlive tracing (string literals). No-op when tracing is inactive.
void AppendCompleteEvent(const char* name, const char* category,
                         std::uint64_t start_ns, std::uint64_t dur_ns);

/// RAII span: records [construction, destruction) as a complete event
/// on the calling thread's timeline.
class SpanScope {
 public:
  explicit SpanScope(const char* name, const char* category = "wym");
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_;
  bool active_;
};

}  // namespace wym::obs

#define WYM_OBS_CONCAT_INNER(a, b) a##b
#define WYM_OBS_CONCAT(a, b) WYM_OBS_CONCAT_INNER(a, b)
/// Spans the rest of the enclosing scope.
#define WYM_SPAN(name) \
  ::wym::obs::SpanScope WYM_OBS_CONCAT(wym_span_, __LINE__)(name)

#endif  // WYM_OBS_TRACE_H_
