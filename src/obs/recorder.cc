#include "obs/recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace wym::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Record(const RequestRecord& record) {
  // 1-based ticket so 0 can mean "never written".
  const std::uint64_t ticket =
      next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(ticket - 1) % slots_.size()];
  // Seqlock writer: mark the slot in-progress, fill it, then publish.
  // A snapshot that overlaps this sees begin != end and skips the slot.
  slot.begin.store(ticket, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.record = record;
  slot.end.store(ticket, std::memory_order_release);
}

std::vector<RequestRecord> FlightRecorder::SnapshotOrdered() const {
  struct Captured {
    std::uint64_t ticket;
    RequestRecord record;
  };
  std::vector<Captured> captured;
  captured.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t end = slot.end.load(std::memory_order_acquire);
    if (end == 0) continue;  // Never written.
    Captured c;
    c.ticket = end;
    c.record = slot.record;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.begin.load(std::memory_order_relaxed) != end) {
      continue;  // Torn by a concurrent overwrite; skip.
    }
    captured.push_back(c);
  }
  std::sort(captured.begin(), captured.end(),
            [](const Captured& a, const Captured& b) {
              return a.ticket < b.ticket;
            });
  std::vector<RequestRecord> out;
  out.reserve(captured.size());
  for (const Captured& c : captured) out.push_back(c.record);
  return out;
}

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  char reason_buf[RequestRecord::kModelBytes];
  SetRecordField(reason_buf, sizeof(reason_buf), reason);
  const std::vector<RequestRecord> records = SnapshotOrdered();

  std::string out;
  out.reserve(64 + records.size() * kMaxJournalLine);
  char buf[kMaxJournalLine + 1];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":\"wym-flight-recorder/v1\",\"reason\":\"%s\""
                ",\"capacity\":%zu,\"recorded\":%" PRIu64 ",\"records\":[",
                reason_buf, slots_.size(), recorded());
  out += buf;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n  ";
    const std::size_t n = RenderRequestRecord(records[i], buf, sizeof(buf));
    out.append(buf, n);
  }
  out += records.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                const std::string& reason,
                                std::string* error) const {
  const std::string body = DumpJson(reason);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open dump file: " + tmp;
    return false;
  }
  const bool written =
      std::fwrite(body.data(), 1, body.size(), file) == body.size();
  const bool closed = std::fclose(file) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot write dump file: " + tmp;
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename dump file to: " + path;
    return false;
  }
  return true;
}

bool ValidateFlightRecorderJson(const std::string& text, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (!root.IsObject()) {
    return fail("flight recorder: top level is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->string != "wym-flight-recorder/v1") {
    return fail("flight recorder: missing schema tag wym-flight-recorder/v1");
  }
  const JsonValue* reason = root.Find("reason");
  if (reason == nullptr || !reason->IsString()) {
    return fail("flight recorder: missing string member \"reason\"");
  }
  for (const char* key : {"capacity", "recorded"}) {
    const JsonValue* member = root.Find(key);
    if (member == nullptr || !member->IsNumber() || member->number < 0) {
      return fail(std::string("flight recorder: missing non-negative ") +
                  "number \"" + key + "\"");
    }
  }
  const JsonValue* records = root.Find("records");
  if (records == nullptr || !records->IsArray()) {
    return fail("flight recorder: missing array member \"records\"");
  }
  for (std::size_t i = 0; i < records->array.size(); ++i) {
    const std::string where = "records[" + std::to_string(i) + "]";
    if (!ValidateJournalRecord(records->array[i], where, error)) return false;
  }
  return true;
}

}  // namespace wym::obs
