#ifndef WYM_OBS_RECORDER_H_
#define WYM_OBS_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_log.h"

/// \file
/// Flight recorder: a fixed-size lock-free ring of the last N answered
/// request records (see DESIGN.md "Telemetry").
///
/// The journal answers "what happened to request X" when an operator
/// has the file; the recorder answers "what was in flight just now"
/// when the process is in trouble. wym_serve dumps it to a postmortem
/// JSON artifact (`wym-flight-recorder/v1`) on watchdog fire, drain,
/// and SIGQUIT.
///
/// Record() is wait-free for writers: a ticket from one atomic
/// fetch_add picks the slot, and a per-slot begin/end sequence pair
/// (seqlock discipline) lets the rare snapshot reader detect and skip
/// records torn by a concurrent overwrite. Readers never block
/// writers. Like the rest of obs, dumping uses plain stdio (obs sits
/// below util) and serialization is a pure function of the captured
/// records.

namespace wym::obs {

class FlightRecorder {
 public:
  /// `capacity` = ring size in records; clamped to >= 1.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Copies `record` into the next ring slot. Wait-free; safe from any
  /// thread.
  void Record(const RequestRecord& record);

  /// The current ring contents, oldest first (by recording order, which
  /// is answer order — not admission order). Records mid-overwrite are
  /// skipped, so the result may briefly hold fewer than
  /// min(recorded(), capacity()) entries.
  std::vector<RequestRecord> SnapshotOrdered() const;

  /// `wym-flight-recorder/v1` postmortem JSON: fixed key order
  /// (schema, reason, capacity, recorded, records), one journal-style
  /// record object per ring entry. `reason` is sanitized like a record
  /// field ("watchdog", "drain", "sigquit").
  std::string DumpJson(const std::string& reason) const;

  /// Writes DumpJson(reason) to `path` via a temp file + rename so a
  /// crash mid-dump never leaves a half-written artifact.
  bool DumpToFile(const std::string& path, const std::string& reason,
                  std::string* error) const;

  std::size_t capacity() const { return slots_.size(); }
  /// Total Record() calls since construction (may exceed capacity).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// Ticket of the writer that started (begin) and finished (end)
    /// filling this slot; equal iff the record is consistent. 0 =
    /// never written.
    std::atomic<std::uint64_t> begin{0};
    std::atomic<std::uint64_t> end{0};
    RequestRecord record;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

/// True when `text` conforms to the wym-flight-recorder/v1 schema.
bool ValidateFlightRecorderJson(const std::string& text, std::string* error);

}  // namespace wym::obs

#endif  // WYM_OBS_RECORDER_H_
