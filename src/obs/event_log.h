#ifndef WYM_OBS_EVENT_LOG_H_
#define WYM_OBS_EVENT_LOG_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

/// \file
/// Per-request structured event sink: the serving tier's request
/// journal (see DESIGN.md "Telemetry").
///
/// One RequestRecord is filled per answered request — admission stamp,
/// queue/run/total durations, outcome taxonomy, pair/batch/cache
/// counts — and appended as one JSONL line tagged
/// `"schema":"wym-journal/v1"`. Contracts, matching the rest of the
/// observability layer:
///
///  * No feedback: nothing here is read back by any computation.
///  * Zero allocation on the append path: RequestRecord is a flat POD
///    (fixed-size char fields, sanitized at copy time), the line is
///    rendered with snprintf into a stack buffer, and the write is one
///    fwrite under a mutex.
///  * Deterministic serialization: RenderRequestRecord is a pure
///    function of the record with a fixed key order, so two runs with
///    the same injected clock produce byte-identical journals at any
///    WYM_THREADS (it is a taint sink under `wym_lint taint`).
///  * Size-rotated: when the active file would exceed `max_bytes` the
///    journal renames it to `<path>.1` (replacing any previous `.1`)
///    and starts fresh, bounding disk use at ~2x max_bytes.
///
/// Like the report validators, this sits below util, so errors are
/// bool + message strings rather than Status.

namespace wym::obs {

/// How one request ended. Every answered request has exactly one.
enum class RequestOutcome : std::uint8_t {
  kOk = 0,        ///< Executed and answered successfully.
  kCacheHit,      ///< Ok, and every pair came from the prediction cache.
  kShed,          ///< Refused at admission (queue full or draining).
  kDeadline,      ///< Deadline budget expired (in queue or mid-batch).
  kWedged,        ///< Answered by the watchdog; the worker was stuck.
  kError,         ///< Any other typed error (NotFound, Corruption, ...).
};

/// Wire name ("ok", "cache_hit", "shed", "deadline", "wedged", "error").
const char* RequestOutcomeName(RequestOutcome outcome);

/// One journal entry. Flat and trivially copyable on purpose: the
/// flight recorder copies whole records into ring slots and the journal
/// renders them without touching the heap.
struct RequestRecord {
  static constexpr std::size_t kIdBytes = 24;
  static constexpr std::size_t kOpBytes = 16;
  static constexpr std::size_t kModelBytes = 48;

  /// Admission sequence number (mints the request id "q<seq>").
  std::uint64_t sequence = 0;
  /// Client-chosen correlation id, sanitized + truncated.
  char client_id[kIdBytes] = {};
  /// Wire op name ("predict", "ping", ...).
  char op[kOpBytes] = {};
  /// "name#generation" of the model that served it; empty for ops that
  /// touch no model.
  char model[kModelBytes] = {};
  /// Admission timestamp (service clock — injectable in tests).
  std::uint64_t admit_ns = 0;
  /// Admission -> dequeue (0 for inline/shed answers).
  std::uint64_t queue_ns = 0;
  /// Dequeue -> answer (0 for inline/shed answers).
  std::uint64_t run_ns = 0;
  /// Admission -> answer.
  std::uint64_t total_ns = 0;
  /// Candidate pairs carried by the request.
  std::uint32_t pairs = 0;
  /// Batch slices executed before the answer.
  std::uint32_t batches = 0;
  /// Pairs served from the prediction cache.
  std::uint32_t cached = 0;
  RequestOutcome outcome = RequestOutcome::kOk;
};

/// Truncating copy into a fixed record field that also sanitizes for
/// JSON: '"', '\\' and control bytes become '_', so the render path can
/// emit the field without escaping (and thus without allocating).
void SetRecordField(char* dst, std::size_t cap, const std::string& src);

/// Upper bound on one rendered journal line (excluding the newline).
inline constexpr std::size_t kMaxJournalLine = 512;

/// Renders the record as one `wym-journal/v1` JSONL line (no trailing
/// newline) into `buf`; returns the length. Fixed key order:
/// schema, seq, id, client_id, op, model, outcome, admit_ns, queue_ns,
/// run_ns, total_ns, pairs, batches, cached. Pure function of the
/// record — the journal's determinism sink.
std::size_t RenderRequestRecord(const RequestRecord& record, char* buf,
                                std::size_t cap);

/// The minted request id for a sequence number ("q00000042"); writes
/// into `buf` (needs >= RequestRecord::kIdBytes) and returns it.
const char* RenderRequestId(std::uint64_t sequence, char* buf,
                            std::size_t cap);

/// Append-only JSONL journal with single-slot size rotation.
class EventLog {
 public:
  struct Options {
    std::string path;
    /// Rotation bound on the active file; a record that would push the
    /// file past this triggers rotation first. 0 = never rotate.
    std::uint64_t max_bytes = 64ull << 20;
  };

  explicit EventLog(Options options);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens (creating or truncating) the active file. False + message on
  /// failure. Append before Open (or after a failed Open) is a no-op.
  bool Open(std::string* error);

  /// Renders and writes one line, rotating first if the line would
  /// cross the size bound. Thread-safe; flushes per line so `tail -f`
  /// (and wym_cli tail --follow) see records promptly.
  void Append(const RequestRecord& record);

  /// Flushes and closes the active file. Idempotent.
  void Close();

  const std::string& path() const { return options_.path; }
  /// Lines written since Open (across rotations).
  std::uint64_t lines_written() const;
  /// Completed rotations since Open.
  std::uint64_t rotations() const;

 private:
  void RotateLocked();

  const Options options_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::uint64_t active_bytes_ = 0;
  std::uint64_t lines_written_ = 0;
  std::uint64_t rotations_ = 0;
};

struct JsonValue;

/// True when `record` is one parsed `wym-journal/v1` object with the
/// full fixed field set and a known outcome name. `where` prefixes
/// error messages. Shared by the journal and flight-recorder
/// validators.
bool ValidateJournalRecord(const JsonValue& record, const std::string& where,
                           std::string* error);

/// True when `text` is a valid journal file: one `wym-journal/v1`
/// object per non-empty line, each with the full fixed field set, a
/// known outcome name, and a unique `seq`. (Lines are appended in
/// answer order, which interleaves inline ops with queued work, so
/// `seq` is unique but deliberately not required to be monotonic.)
bool ValidateJournalJson(const std::string& text, std::string* error);

}  // namespace wym::obs

#endif  // WYM_OBS_EVENT_LOG_H_
