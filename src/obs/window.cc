#include "obs/window.h"

#include <cinttypes>
#include <cstdio>

namespace wym::obs {

namespace {

std::uint64_t SaturatingDelta(std::uint64_t now, std::uint64_t then) {
  return now > then ? now - then : 0;
}

}  // namespace

std::string RenderWindowStats(const WindowStats& stats) {
  // Fixed key order and fixed precision: the rendered artifact must be
  // byte-stable for a given stats value (it is diffed in tests and
  // validated in check.sh).
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"window_ns\":%" PRIu64 ",\"requests\":%" PRIu64
      ",\"qps\":%.3f,\"shed\":%" PRIu64 ",\"shed_rate\":%.6f"
      ",\"cache_hits\":%" PRIu64 ",\"cache_misses\":%" PRIu64
      ",\"cache_hit_rate\":%.6f,\"p50_ns\":%.1f,\"p95_ns\":%.1f"
      ",\"p99_ns\":%.1f}",
      stats.window_ns, stats.requests, stats.qps, stats.shed,
      stats.shed_rate, stats.cache_hits, stats.cache_misses,
      stats.cache_hit_rate, stats.p50_ns, stats.p95_ns, stats.p99_ns);
  return buf;
}

WindowTracker::WindowTracker() : WindowTracker(Options()) {}

WindowTracker::WindowTracker(Options options)
    : options_(std::move(options)),
      ring_(options_.capacity == 0 ? 1 : options_.capacity) {}

void WindowTracker::Tick(std::uint64_t now_ns) {
  // Sample outside the lock: registry reads take the registry mutex
  // plus shard loads, and holding two locks here would be the only
  // place obs nests them.
  Registry& registry = Registry::Global();
  Sample sample;
  sample.now_ns = now_ns;
  sample.requests = registry.GetCounter(options_.requests_metric).Value();
  sample.shed = registry.GetCounter(options_.shed_metric).Value();
  sample.cache_hits =
      registry.GetCounter(options_.cache_hits_metric).Value();
  sample.cache_misses =
      registry.GetCounter(options_.cache_misses_metric).Value();
  sample.latency =
      registry.GetHistogram(options_.latency_metric).Snapshot();

  const std::lock_guard<std::mutex> lock(mu_);
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(sample);
    ++size_;
  } else {
    ring_[head_] = std::move(sample);
    head_ = (head_ + 1) % ring_.size();
  }
}

WindowStats WindowTracker::DeltaLocked(std::uint64_t window_ns) const {
  WindowStats stats;
  if (size_ < 2) return stats;
  const Sample& newest = AtLocked(size_ - 1);
  // Baseline: the latest sample at least window_ns older than the
  // newest, else the oldest sample held. Samples are in nondecreasing
  // now_ns order (one writer, monotonic injected clock).
  const Sample* base = &AtLocked(0);
  for (std::size_t i = size_ - 1; i-- > 0;) {
    const Sample& candidate = AtLocked(i);
    if (candidate.now_ns + window_ns <= newest.now_ns) {
      base = &candidate;
      break;
    }
  }

  stats.window_ns = SaturatingDelta(newest.now_ns, base->now_ns);
  stats.requests = SaturatingDelta(newest.requests, base->requests);
  stats.shed = SaturatingDelta(newest.shed, base->shed);
  stats.cache_hits = SaturatingDelta(newest.cache_hits, base->cache_hits);
  stats.cache_misses =
      SaturatingDelta(newest.cache_misses, base->cache_misses);
  if (stats.window_ns > 0) {
    stats.qps = static_cast<double>(stats.requests) /
                (static_cast<double>(stats.window_ns) / 1e9);
  }
  if (stats.requests > 0) {
    stats.shed_rate = static_cast<double>(stats.shed) /
                      static_cast<double>(stats.requests);
  }
  const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
  if (lookups > 0) {
    stats.cache_hit_rate = static_cast<double>(stats.cache_hits) /
                           static_cast<double>(lookups);
  }
  const HistogramSnapshot delta = newest.latency.DeltaSince(base->latency);
  stats.p50_ns = delta.Percentile(0.50);
  stats.p95_ns = delta.Percentile(0.95);
  stats.p99_ns = delta.Percentile(0.99);
  return stats;
}

WindowStats WindowTracker::Delta(std::uint64_t window_ns) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return DeltaLocked(window_ns);
}

std::string WindowTracker::WindowsJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  for (std::size_t i = 0; i < options_.window_ns.size(); ++i) {
    if (i != 0) out += ',';
    char label[32];
    std::snprintf(label, sizeof(label), "\"%llus\":",
                  static_cast<unsigned long long>(options_.window_ns[i] /
                                                  1000000000ull));
    out += label;
    out += RenderWindowStats(DeltaLocked(options_.window_ns[i]));
  }
  out += '}';
  return out;
}

std::string WindowTracker::TelemetryJson() const {
  std::uint64_t now_ns = 0;
  std::size_t n = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (size_ > 0) now_ns = AtLocked(size_ - 1).now_ns;
    n = size_;
  }
  char head[128];
  std::snprintf(head, sizeof(head),
                "{\"schema\":\"wym-telemetry/v1\",\"now_ns\":%" PRIu64
                ",\"samples\":%zu,\"windows\":",
                now_ns, n);
  std::string out = head;
  out += WindowsJson();
  out += "}\n";
  return out;
}

std::size_t WindowTracker::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace wym::obs
