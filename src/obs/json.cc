#include "obs/json.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace wym::obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over the raw text. Tracks position for
/// error messages; depth-limited so adversarial nesting cannot blow
/// the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) {
      Fail(error);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing content after top-level value";
      Fail(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Fail(std::string* error) const {
    if (error == nullptr) return;
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ": " << error_;
    *error = os.str();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      error_ = "nesting too deep";
      return false;
    }
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of input";
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        if (Literal("true", 4)) return true;
        error_ = "invalid literal";
        return false;
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        if (Literal("false", 5)) return true;
        error_ = "invalid literal";
        return false;
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        if (Literal("null", 4)) return true;
        error_ = "invalid literal";
        return false;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        error_ = "expected quoted object key";
        return false;
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            // Decode \uXXXX to UTF-8 (surrogate pairs are passed
            // through as two separate code points; the validators only
            // care about well-formedness, not text fidelity).
            if (pos_ + 4 >= text_.size()) {
              error_ = "truncated \\u escape";
              return false;
            }
            unsigned int cp = 0;
            for (int k = 1; k <= 4; ++k) {
              const char h = text_[pos_ + k];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                error_ = "invalid \\u escape";
                return false;
              }
            }
            pos_ += 4;
            if (cp < 0x80) {
              *out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              *out += static_cast<char>(0xC0 | (cp >> 6));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (cp >> 12));
              *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            error_ = "invalid escape character";
            return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        error_ = "unescaped control character in string";
        return false;
      }
      *out += c;
      ++pos_;
    }
    error_ = "unterminated string";
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      error_ = "expected a JSON value";
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_ = "invalid JSON";
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text);
  return parser.Parse(out, error);
}

}  // namespace wym::obs
