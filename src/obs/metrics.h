#ifndef WYM_OBS_METRICS_H_
#define WYM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file
/// Metrics registry: named counters, gauges, and fixed-bucket latency
/// histograms (see DESIGN.md "Observability").
///
/// Design constraints, in priority order:
///  1. Observation must never perturb results. No metric feeds back
///     into any computation, and merged values are independent of
///     thread schedule: counters/histograms sum commutative integer
///     shards in a fixed shard order, so Snapshot() is deterministic
///     for a deterministic workload at any WYM_THREADS setting.
///  2. Near-zero cost on hot paths. Mutators are a branch on the
///     cached WYM_METRICS flag plus one relaxed atomic RMW on a
///     cache-line-padded per-thread shard — no locks, no allocation.
///  3. Zero dependencies. This subsystem sits below util (util links
///     obs, not vice versa), so it must not include Status/logging.
///
/// Registration (GetCounter etc.) takes a mutex and may allocate; hot
/// code hoists the lookup into a function-local static reference.
/// Returned references live for the process lifetime — Reset() zeroes
/// values but never invalidates handles.

namespace wym::obs {

/// True unless the WYM_METRICS environment variable is "0" or "off"
/// (metrics default on: the whole point is always-on accounting).
/// Cached on first call; mutators consult it so a disabled process
/// pays only this predictable branch.
bool MetricsEnabled();

namespace internal {

/// Shard count for counters and histograms. A power of two comfortably
/// above the deterministic thread-pool's typical size; threads hash to
/// shards, so totals stay exact even when threads collide.
inline constexpr std::size_t kShards = 16;

/// Index of the calling thread's shard (stable per thread).
std::size_t ShardIndex();

/// One atomic on its own cache line, so concurrent increments from
/// different shards never false-share.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace internal

/// Monotonic event counter. Add() is wait-free; Value() merges shards
/// in fixed order (shard 0..kShards-1), so the merged total is exact
/// and deterministic once all writers have quiesced.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const internal::PaddedAtomicU64& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes all shards. Test/registry use only; racing with writers
  /// yields an unspecified (but valid) total.
  void Reset() {
    for (internal::PaddedAtomicU64& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<internal::PaddedAtomicU64, internal::kShards> shards_;
};

/// Instantaneous level (e.g. queue depth) with a monotonic high-water
/// mark. A single atomic: gauges track *current* state, so per-thread
/// sharding would change the semantics, not just the cost.
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
    RaiseMax(v);
  }

  void Add(std::int64_t delta) {
    if (!MetricsEnabled()) return;
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    RaiseMax(now);
  }

  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void RaiseMax(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Point-in-time view of one histogram; percentiles interpolate within
/// the matched power-of-two bucket.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// p in [0, 1]; e.g. Percentile(0.95). Out-of-range (and NaN) p
  /// clamps: p <= 0 returns the low edge of the first non-empty
  /// bucket, p >= 1 the upper bound of the last non-empty bucket.
  /// Returns 0 for an empty histogram.
  double Percentile(double p) const;

  /// This snapshot minus an earlier `base` of the same histogram
  /// (bucket-wise, saturating at 0) — the per-window view used by
  /// obs::WindowTracker. Counts are monotonic, so for two snapshots of
  /// one histogram the saturation never engages.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& base) const;
};

/// Fixed-bucket latency histogram over non-negative integer samples
/// (nanoseconds by convention). Bucket b spans [2^b, 2^(b+1)) with
/// bucket 0 holding {0, 1}; 40 buckets cover ~18 minutes in ns.
/// Same sharding/merge discipline as Counter.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void Record(std::uint64_t sample) {
    if (!MetricsEnabled()) return;
    Shard& shard = shards_[internal::ShardIndex()];
    shard.buckets[BucketIndex(sample)].value.fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.value.fetch_add(sample, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Inclusive upper bound of bucket `b` (the value used for
  /// interpolation display).
  static std::uint64_t BucketUpperBound(std::size_t b) {
    return (b + 1 >= 64) ? ~0ull : (1ull << (b + 1)) - 1;
  }

 private:
  static std::size_t BucketIndex(std::uint64_t sample) {
    std::size_t b = 0;
    while (sample > 1 && b + 1 < kBuckets) {
      sample >>= 1;
      ++b;
    }
    return b;
  }

  struct Shard {
    std::array<internal::PaddedAtomicU64, kBuckets> buckets;
    internal::PaddedAtomicU64 sum;
  };
  std::array<Shard, internal::kShards> shards_;
};

/// Deterministic (name-sorted) view of every registered metric.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value;
    std::int64_t max;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot hist;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
};

/// Process-wide name -> metric registry. Lookup is mutex-guarded (hoist
/// into a static reference on hot paths); returned references are
/// stable for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Name-sorted snapshot of all metrics (std::map iteration order).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric without invalidating references.
  /// Intended for tests that assert on deltas from a clean slate.
  void ResetForTest();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Human-readable dump (wym_cli stats); deterministic for a
/// deterministic workload.
std::string RenderMetrics(const MetricsSnapshot& snapshot);

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} —
/// the "metrics" section of the wym-bench-report/v1 schema.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

}  // namespace wym::obs

#endif  // WYM_OBS_METRICS_H_
