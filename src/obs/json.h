#ifndef WYM_OBS_JSON_H_
#define WYM_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

/// \file
/// Minimal from-scratch JSON parser, just enough to validate the
/// observability layer's own outputs (trace_event files, bench
/// reports) without external dependencies. Strict on structure
/// (balanced containers, quoted keys, no trailing commas), permissive
/// on numbers (parsed via strtod). Objects preserve key order and
/// allow duplicate keys (Find returns the first), which is all the
/// validators need.

namespace wym::obs {

/// One parsed JSON value; a tagged tree.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// First member with `key`, or nullptr. Object-kind only.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses `text` into `*out`. On failure returns false and describes
/// the problem (with a line number) in `*error` when non-null.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace wym::obs

#endif  // WYM_OBS_JSON_H_
