#ifndef WYM_OBS_REPORT_H_
#define WYM_OBS_REPORT_H_

#include <string>

/// \file
/// Schema validation for the observability layer's two machine-readable
/// artifacts:
///
///  * trace files — the Chrome trace_event JSON written for WYM_TRACE
///    (obs/trace.cc): a top-level object with a "traceEvents" array of
///    complete events carrying name/cat/ph/pid/tid/ts/dur;
///
///  * bench reports — the wym-bench-report/v1 JSON emitted by
///    bench_common's --json flag: schema marker, bench name,
///    benchmarks[] with name + time_ns, and a metrics object with
///    counters/gauges/histograms sections.
///
/// Used by tests (obs_test), `wym_cli validate-report`, and the
/// scripts/check.sh perf-report step. Validators return bool + error
/// string (not Status): obs sits below util in the dependency order.

namespace wym::obs {

/// True when `text` is a trace_event JSON file the Chrome tracer would
/// load: a JSON object whose "traceEvents" member is an array of event
/// objects, each with string "name"/"cat"/"ph" and numeric
/// "pid"/"tid"/"ts" (and numeric "dur" for "ph":"X" events).
bool ValidateTraceJson(const std::string& text, std::string* error);

/// True when `text` conforms to the wym-bench-report/v1 schema.
bool ValidateBenchReportJson(const std::string& text, std::string* error);

/// True when `text` conforms to the wym-telemetry/v1 schema (the
/// windowed serving stats artifact written by obs::WindowTracker /
/// wym_serve --telemetry-out): schema marker, numeric now_ns and
/// samples, and a "windows" object whose members each carry the full
/// numeric stat set (window_ns, requests, qps, shed, shed_rate,
/// cache_hits, cache_misses, cache_hit_rate, p50_ns, p95_ns, p99_ns).
bool ValidateTelemetryJson(const std::string& text, std::string* error);

}  // namespace wym::obs

#endif  // WYM_OBS_REPORT_H_
