#include "obs/metrics.h"

#include <cstdlib>
#include <sstream>

namespace wym::obs {

bool MetricsEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("WYM_METRICS");
    if (env == nullptr) return true;
    const std::string v(env);
    return !(v == "0" || v == "off" || v == "OFF");
  }();
  return enabled;
}

namespace internal {

std::size_t ShardIndex() {
  // Threads take shards round-robin from a process-wide ticket; the
  // assignment is stable per thread (thread_local) and collisions are
  // harmless because shards merge by summation.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  // !(p > 0) also catches NaN: both clamp to the low edge rather than
  // propagating NaN through the interpolation below.
  if (!(p > 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate linearly inside bucket b: [lower, upper]. With all
    // mass in one bucket this sweeps lower -> upper as p goes 0 -> 1
    // (p = 0 returns the bucket's low edge exactly).
    const double lower = b == 0 ? 0.0 : static_cast<double>(1ull << b);
    const double upper = static_cast<double>(Histogram::BucketUpperBound(b));
    const double into =
        (target - static_cast<double>(before)) /
        static_cast<double>(buckets[b]);
    return lower + into * (upper - lower);
  }
  // Rounding pushed `target` past every populated bucket: clamp to the
  // upper bound of the last *non-empty* bucket, not the last bucket of
  // the array (which would overstate a fast histogram by orders of
  // magnitude).
  for (std::size_t b = buckets.size(); b-- > 0;) {
    if (buckets[b] != 0) {
      return static_cast<double>(Histogram::BucketUpperBound(b));
    }
  }
  return 0.0;
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& base) const {
  HistogramSnapshot delta;
  delta.buckets.assign(buckets.size(), 0);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t then = b < base.buckets.size() ? base.buckets[b] : 0;
    delta.buckets[b] = buckets[b] > then ? buckets[b] - then : 0;
    delta.count += delta.buckets[b];
  }
  delta.sum = sum > base.sum ? sum - base.sum : 0;
  return delta;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  // Fixed shard order, commutative integer sums: the merged snapshot is
  // independent of which thread recorded which sample.
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].value.load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.value.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (internal::PaddedAtomicU64& bucket : shard.buckets) {
      bucket.value.store(0, std::memory_order_relaxed);
    }
    shard.sum.value.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // wym-lint: allow(no-raw-new-delete): intentionally leaked process-lifetime singleton; a static value could be destroyed before late metric writers during shutdown.
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value(), gauge->Max()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->Snapshot()});
  }
  return snap;
}

void Registry::ResetForTest() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string RenderMetrics(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "metrics registry (" << snapshot.counters.size() << " counters, "
     << snapshot.gauges.size() << " gauges, " << snapshot.histograms.size()
     << " histograms)\n";
  if (!snapshot.counters.empty()) {
    os << "counters:\n";
    for (const MetricsSnapshot::CounterEntry& c : snapshot.counters) {
      os << "  " << c.name << " = " << c.value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    os << "gauges:\n";
    for (const MetricsSnapshot::GaugeEntry& g : snapshot.gauges) {
      os << "  " << g.name << " = " << g.value << " (max " << g.max << ")\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    os << "histograms:\n";
    for (const MetricsSnapshot::HistogramEntry& h : snapshot.histograms) {
      os << "  " << h.name << ": count=" << h.hist.count
         << " mean=" << h.hist.Mean() << "ns p50=" << h.hist.Percentile(0.5)
         << "ns p95=" << h.hist.Percentile(0.95) << "ns\n";
    }
  }
  return os.str();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  // Metric names are restricted to [A-Za-z0-9._-] by convention, but
  // escape the JSON-significant characters anyway so a stray name can
  // never corrupt a report.
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  };

  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << escape(snapshot.counters[i].name)
       << "\":" << snapshot.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << escape(snapshot.gauges[i].name) << "\":{\"value\":"
       << snapshot.gauges[i].value << ",\"max\":" << snapshot.gauges[i].max
       << "}";
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) os << ",";
    const HistogramSnapshot& h = snapshot.histograms[i].hist;
    os << "\"" << escape(snapshot.histograms[i].name) << "\":{\"count\":"
       << h.count << ",\"sum_ns\":" << h.sum << ",\"mean_ns\":" << h.Mean()
       << ",\"p50_ns\":" << h.Percentile(0.5)
       << ",\"p95_ns\":" << h.Percentile(0.95) << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace wym::obs
