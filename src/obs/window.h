#ifndef WYM_OBS_WINDOW_H_
#define WYM_OBS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

/// \file
/// Sliding-window view over the metrics registry (see DESIGN.md
/// "Telemetry").
///
/// The registry's counters and histograms are since-boot aggregates;
/// an operator asking "what is p99 *right now*" needs deltas. A
/// WindowTracker samples a fixed set of serving metrics on every
/// Tick(now_ns) into a bounded ring and computes window stats as the
/// difference between the newest sample and the latest sample at
/// least `window_ns` older — rates from counter deltas, percentiles
/// from bucket-wise histogram deltas (HistogramSnapshot::DeltaSince).
///
/// Contracts, shared with the rest of obs:
///  * Read-only over the registry; nothing feeds back into serving.
///  * The clock is injected (Tick takes now_ns), so tests drive it
///    deterministically and serialization is a pure function of the
///    collected samples.
///  * `wym-telemetry/v1` output has a fixed key order.

namespace wym::obs {

/// One window's worth of serving stats (all deltas, not since-boot).
struct WindowStats {
  /// Actual span covered: newest sample minus baseline sample. May be
  /// shorter than requested early in life, 0 with fewer than 2 samples.
  std::uint64_t window_ns = 0;
  std::uint64_t requests = 0;
  double qps = 0.0;
  std::uint64_t shed = 0;
  /// shed / requests over the window (0 when no requests).
  double shed_rate = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// hits / (hits + misses) over the window (0 when no lookups).
  double cache_hit_rate = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

/// Fixed-key-order JSON object for one window:
/// {"window_ns":..,"requests":..,"qps":..,"shed":..,"shed_rate":..,
///  "cache_hits":..,"cache_misses":..,"cache_hit_rate":..,
///  "p50_ns":..,"p95_ns":..,"p99_ns":..}. Pure function of `stats`.
std::string RenderWindowStats(const WindowStats& stats);

class WindowTracker {
 public:
  struct Options {
    /// Registry metric names sampled each Tick. The defaults are the
    /// serving tier's names (schema-level knowledge, like the report
    /// validators); tests may point at scratch metrics.
    std::string requests_metric = "serve.requests";
    std::string shed_metric = "serve.shed";
    std::string cache_hits_metric = "serve.cache_hits";
    std::string cache_misses_metric = "serve.cache_misses";
    std::string latency_metric = "serve.request_ns";
    /// Ring capacity in samples. At wym_serve's default 1s telemetry
    /// period, 128 samples comfortably cover the 60s window.
    std::size_t capacity = 128;
    /// Windows reported by TelemetryJson()/WindowsJson(), labelled
    /// "<seconds>s".
    std::vector<std::uint64_t> window_ns = {10ull * 1000 * 1000 * 1000,
                                            60ull * 1000 * 1000 * 1000};
  };

  WindowTracker();
  explicit WindowTracker(Options options);

  WindowTracker(const WindowTracker&) = delete;
  WindowTracker& operator=(const WindowTracker&) = delete;

  /// Samples the global registry at `now_ns` (the caller's injected
  /// clock) into the ring, evicting the oldest sample when full.
  void Tick(std::uint64_t now_ns);

  /// Stats over (roughly) the last `window_ns`: newest sample vs the
  /// latest sample at least that much older (or the oldest sample held
  /// if the ring does not reach back that far). All-zero with fewer
  /// than 2 samples.
  WindowStats Delta(std::uint64_t window_ns) const;

  /// {"10s":{...},"60s":{...}} for the configured windows — the
  /// "windows" member of wym-telemetry/v1, also embedded by the serve
  /// stats op.
  std::string WindowsJson() const;

  /// Full fixed-key-order telemetry artifact:
  /// {"schema":"wym-telemetry/v1","now_ns":..,"samples":..,
  ///  "windows":{...}}. now_ns is the newest sample's stamp (0 when no
  ///  samples) — no clock is read here.
  std::string TelemetryJson() const;

  std::size_t samples() const;

 private:
  struct Sample {
    std::uint64_t now_ns = 0;
    std::uint64_t requests = 0;
    std::uint64_t shed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    HistogramSnapshot latency;
  };

  WindowStats DeltaLocked(std::uint64_t window_ns) const;
  const Sample& AtLocked(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  const Options options_;
  mutable std::mutex mu_;
  std::vector<Sample> ring_;
  std::size_t head_ = 0;  // Index of the oldest sample.
  std::size_t size_ = 0;
};

}  // namespace wym::obs

#endif  // WYM_OBS_WINDOW_H_
