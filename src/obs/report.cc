#include "obs/report.h"

#include <sstream>

#include "obs/json.h"

namespace wym::obs {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Requires `value` to be an object with member `key` of kind `kind`;
/// returns the member or null with `*error` set.
const JsonValue* RequireMember(const JsonValue& value, const char* key,
                               JsonValue::Kind kind, const char* where,
                               std::string* error) {
  const JsonValue* member = value.Find(key);
  if (member == nullptr) {
    std::ostringstream os;
    os << where << ": missing required member \"" << key << "\"";
    Fail(error, os.str());
    return nullptr;
  }
  if (member->kind != kind) {
    std::ostringstream os;
    os << where << ": member \"" << key << "\" has the wrong type";
    Fail(error, os.str());
    return nullptr;
  }
  return member;
}

}  // namespace

bool ValidateTraceJson(const std::string& text, std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (!root.IsObject()) return Fail(error, "trace: top level is not an object");
  const JsonValue* events = RequireMember(root, "traceEvents",
                                          JsonValue::Kind::kArray, "trace",
                                          error);
  if (events == nullptr) return false;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    std::ostringstream where;
    where << "traceEvents[" << i << "]";
    const std::string w = where.str();
    if (!event.IsObject()) return Fail(error, w + ": not an object");
    for (const char* key : {"name", "cat", "ph"}) {
      if (RequireMember(event, key, JsonValue::Kind::kString, w.c_str(),
                        error) == nullptr) {
        return false;
      }
    }
    for (const char* key : {"pid", "tid", "ts"}) {
      if (RequireMember(event, key, JsonValue::Kind::kNumber, w.c_str(),
                        error) == nullptr) {
        return false;
      }
    }
    const JsonValue* ph = event.Find("ph");
    if (ph->string == "X") {
      const JsonValue* dur = RequireMember(event, "dur",
                                           JsonValue::Kind::kNumber,
                                           w.c_str(), error);
      if (dur == nullptr) return false;
      if (dur->number < 0) return Fail(error, w + ": negative duration");
    }
  }
  return true;
}

bool ValidateBenchReportJson(const std::string& text, std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (!root.IsObject()) {
    return Fail(error, "bench report: top level is not an object");
  }
  const JsonValue* schema = RequireMember(root, "schema",
                                          JsonValue::Kind::kString,
                                          "bench report", error);
  if (schema == nullptr) return false;
  if (schema->string != "wym-bench-report/v1") {
    return Fail(error, "bench report: unknown schema \"" + schema->string +
                           "\" (expected wym-bench-report/v1)");
  }
  if (RequireMember(root, "bench", JsonValue::Kind::kString, "bench report",
                    error) == nullptr) {
    return false;
  }
  const JsonValue* benchmarks = RequireMember(root, "benchmarks",
                                              JsonValue::Kind::kArray,
                                              "bench report", error);
  if (benchmarks == nullptr) return false;
  for (std::size_t i = 0; i < benchmarks->array.size(); ++i) {
    const JsonValue& b = benchmarks->array[i];
    std::ostringstream where;
    where << "benchmarks[" << i << "]";
    const std::string w = where.str();
    if (!b.IsObject()) return Fail(error, w + ": not an object");
    if (RequireMember(b, "name", JsonValue::Kind::kString, w.c_str(),
                      error) == nullptr) {
      return false;
    }
    if (RequireMember(b, "time_ns", JsonValue::Kind::kNumber, w.c_str(),
                      error) == nullptr) {
      return false;
    }
  }
  const JsonValue* metrics = RequireMember(root, "metrics",
                                           JsonValue::Kind::kObject,
                                           "bench report", error);
  if (metrics == nullptr) return false;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (RequireMember(*metrics, section, JsonValue::Kind::kObject, "metrics",
                      error) == nullptr) {
      return false;
    }
  }
  // Optional sections, type-checked when present.
  for (const char* section : {"stages", "rates"}) {
    const JsonValue* opt = root.Find(section);
    if (opt != nullptr && !opt->IsArray()) {
      return Fail(error, std::string("bench report: \"") + section +
                             "\" must be an array");
    }
  }
  return true;
}

bool ValidateTelemetryJson(const std::string& text, std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (!root.IsObject()) {
    return Fail(error, "telemetry: top level is not an object");
  }
  const JsonValue* schema = RequireMember(root, "schema",
                                          JsonValue::Kind::kString,
                                          "telemetry", error);
  if (schema == nullptr) return false;
  if (schema->string != "wym-telemetry/v1") {
    return Fail(error, "telemetry: unknown schema \"" + schema->string +
                           "\" (expected wym-telemetry/v1)");
  }
  for (const char* key : {"now_ns", "samples"}) {
    const JsonValue* member = RequireMember(root, key,
                                            JsonValue::Kind::kNumber,
                                            "telemetry", error);
    if (member == nullptr) return false;
    if (member->number < 0) {
      return Fail(error, std::string("telemetry: negative \"") + key + "\"");
    }
  }
  const JsonValue* windows = RequireMember(root, "windows",
                                           JsonValue::Kind::kObject,
                                           "telemetry", error);
  if (windows == nullptr) return false;
  if (windows->object.empty()) {
    return Fail(error, "telemetry: \"windows\" has no entries");
  }
  for (const auto& [label, window] : windows->object) {
    const std::string w = "windows[\"" + label + "\"]";
    if (!window.IsObject()) return Fail(error, w + ": not an object");
    for (const char* key :
         {"window_ns", "requests", "qps", "shed", "shed_rate", "cache_hits",
          "cache_misses", "cache_hit_rate", "p50_ns", "p95_ns", "p99_ns"}) {
      const JsonValue* member = RequireMember(window, key,
                                              JsonValue::Kind::kNumber,
                                              w.c_str(), error);
      if (member == nullptr) return false;
      if (member->number < 0) {
        return Fail(error, w + ": negative \"" + key + "\"");
      }
    }
  }
  return true;
}

}  // namespace wym::obs
