#include "obs/event_log.h"

#include <cinttypes>
#include <cstring>
#include <set>

#include "obs/json.h"

namespace wym::obs {

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kCacheHit:
      return "cache_hit";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kDeadline:
      return "deadline";
    case RequestOutcome::kWedged:
      return "wedged";
    case RequestOutcome::kError:
      return "error";
  }
  return "error";
}

void SetRecordField(char* dst, std::size_t cap, const std::string& src) {
  if (cap == 0) return;
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(src[i]);
    dst[i] = (c == '"' || c == '\\' || c < 0x20) ? '_'
                                                 : static_cast<char>(c);
  }
  dst[n] = '\0';
}

const char* RenderRequestId(std::uint64_t sequence, char* buf,
                            std::size_t cap) {
  std::snprintf(buf, cap, "q%08" PRIu64, sequence);
  return buf;
}

std::size_t RenderRequestRecord(const RequestRecord& record, char* buf,
                                std::size_t cap) {
  char id[RequestRecord::kIdBytes];
  RenderRequestId(record.sequence, id, sizeof(id));
  const int n = std::snprintf(
      buf, cap,
      "{\"schema\":\"wym-journal/v1\",\"seq\":%" PRIu64
      ",\"id\":\"%s\",\"client_id\":\"%s\",\"op\":\"%s\",\"model\":\"%s\""
      ",\"outcome\":\"%s\",\"admit_ns\":%" PRIu64 ",\"queue_ns\":%" PRIu64
      ",\"run_ns\":%" PRIu64 ",\"total_ns\":%" PRIu64
      ",\"pairs\":%u,\"batches\":%u,\"cached\":%u}",
      record.sequence, id, record.client_id, record.op, record.model,
      RequestOutcomeName(record.outcome), record.admit_ns, record.queue_ns,
      record.run_ns, record.total_ns, record.pairs, record.batches,
      record.cached);
  if (n < 0) {
    if (cap > 0) buf[0] = '\0';
    return 0;
  }
  return static_cast<std::size_t>(n) < cap ? static_cast<std::size_t>(n)
                                           : cap - 1;
}

EventLog::EventLog(Options options) : options_(std::move(options)) {}

EventLog::~EventLog() { Close(); }

bool EventLog::Open(std::string* error) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return true;
  file_ = std::fopen(options_.path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open journal: " + options_.path;
    return false;
  }
  active_bytes_ = 0;
  return true;
}

void EventLog::RotateLocked() {
  // Single rotation slot: the previous <path>.1 (if any) is replaced,
  // so the journal never holds more than ~2x max_bytes on disk.
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = options_.path + ".1";
  std::remove(rotated.c_str());
  std::rename(options_.path.c_str(), rotated.c_str());
  file_ = std::fopen(options_.path.c_str(), "wb");
  active_bytes_ = 0;
  ++rotations_;
}

void EventLog::Append(const RequestRecord& record) {
  char line[kMaxJournalLine + 1];
  const std::size_t n = RenderRequestRecord(record, line, sizeof(line) - 1);
  line[n] = '\n';

  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (options_.max_bytes != 0 && active_bytes_ != 0 &&
      active_bytes_ + n + 1 > options_.max_bytes) {
    RotateLocked();
    if (file_ == nullptr) return;  // Rotation reopen failed; drop quietly.
  }
  if (std::fwrite(line, 1, n + 1, file_) == n + 1) {
    active_bytes_ += n + 1;
    ++lines_written_;
  }
  // Flushed per line so followers (wym_cli tail --follow, an operator's
  // tail -f) see the record as soon as the request is answered.
  std::fflush(file_);
}

void EventLog::Close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

std::uint64_t EventLog::lines_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

std::uint64_t EventLog::rotations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

bool ValidateJournalRecord(const JsonValue& record, const std::string& where,
                           std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!record.IsObject()) return fail(where + ": not an object");

  const JsonValue* schema = record.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->string != "wym-journal/v1") {
    return fail(where + ": missing schema tag wym-journal/v1");
  }
  for (const char* key : {"id", "client_id", "op", "model", "outcome"}) {
    const JsonValue* member = record.Find(key);
    if (member == nullptr || !member->IsString()) {
      return fail(where + ": missing string member \"" + std::string(key) +
                  "\"");
    }
  }
  for (const char* key : {"seq", "admit_ns", "queue_ns", "run_ns", "total_ns",
                          "pairs", "batches", "cached"}) {
    const JsonValue* member = record.Find(key);
    if (member == nullptr || !member->IsNumber() || member->number < 0) {
      return fail(where + ": missing non-negative number \"" +
                  std::string(key) + "\"");
    }
  }
  const std::string& outcome = record.Find("outcome")->string;
  for (const char* name :
       {"ok", "cache_hit", "shed", "deadline", "wedged", "error"}) {
    if (outcome == name) return true;
  }
  return fail(where + ": unknown outcome \"" + outcome + "\"");
}

bool ValidateJournalJson(const std::string& text, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  std::set<std::uint64_t> seen_seq;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string line =
        text.substr(start, end == std::string::npos ? std::string::npos
                                                    : end - start);
    start = end == std::string::npos ? text.size() + 1 : end + 1;
    ++line_number;
    if (line.empty()) continue;
    const std::string where = "journal line " + std::to_string(line_number);

    JsonValue record;
    std::string parse_error;
    if (!ParseJson(line, &record, &parse_error)) {
      return fail(where + ": " + parse_error);
    }
    if (!ValidateJournalRecord(record, where, error)) return false;
    const std::uint64_t seq =
        static_cast<std::uint64_t>(record.Find("seq")->number);
    if (!seen_seq.insert(seq).second) {
      return fail(where + ": duplicate seq " + std::to_string(seq));
    }
  }
  if (seen_seq.empty()) return fail("journal: no records");
  return true;
}

}  // namespace wym::obs
