#ifndef WYM_DATA_WORD_POOLS_H_
#define WYM_DATA_WORD_POOLS_H_

#include <span>
#include <string_view>

/// \file
/// Static word pools backing the synthetic catalog generators. Using
/// fixed, realistic vocabularies (instead of random strings) matters: the
/// decision-unit pipeline relies on tokens recurring across records (brand
/// names shared by non-matching products — challenge R1 — venue names,
/// cities, ...), exactly as in the Magellan datasets.

namespace wym::data::pools {

std::span<const std::string_view> FirstNames();
std::span<const std::string_view> LastNames();

/// Research-paper topic vocabulary (bibliographic titles).
std::span<const std::string_view> ResearchTopics();
std::span<const std::string_view> ResearchQualifiers();
std::span<const std::string_view> Venues();
/// Long-form synonyms for venues ("very large data bases" for "vldb").
std::string_view VenueLongForm(std::string_view venue);

/// Consumer-product vocabulary.
std::span<const std::string_view> ProductCategories();
std::span<const std::string_view> ProductAdjectives();
std::span<const std::string_view> Brands();
std::span<const std::string_view> ProductUnits();

/// Beer vocabulary.
std::span<const std::string_view> BeerStyles();
std::span<const std::string_view> BeerAdjectives();
std::span<const std::string_view> BreweryNouns();

/// Music vocabulary.
std::span<const std::string_view> SongNouns();
std::span<const std::string_view> SongAdjectives();
std::span<const std::string_view> Genres();

/// Restaurant vocabulary.
std::span<const std::string_view> Cuisines();
std::span<const std::string_view> RestaurantNouns();
std::span<const std::string_view> Cities();
std::span<const std::string_view> StreetNames();

/// Filler words for long textual descriptions (the T-AB periphrasis).
std::span<const std::string_view> DescriptionFillers();

/// Abbreviation table used by the corruption model: returns the short
/// form of a word ("proceedings" -> "proc") or empty when none exists.
std::string_view AbbreviationOf(std::string_view word);

}  // namespace wym::data::pools

#endif  // WYM_DATA_WORD_POOLS_H_
