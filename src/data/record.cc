#include "data/record.h"

#include "util/logging.h"

namespace wym::data {

size_t Dataset::MatchCount() const {
  size_t count = 0;
  for (const auto& record : records) count += record.label == 1;
  return count;
}

double Dataset::MatchPercent() const {
  if (records.empty()) return 0.0;
  return 100.0 * static_cast<double>(MatchCount()) /
         static_cast<double>(records.size());
}

std::vector<int> Dataset::Labels() const {
  std::vector<int> labels;
  labels.reserve(records.size());
  for (const auto& record : records) labels.push_back(record.label);
  return labels;
}

Dataset Subset(const Dataset& dataset, const std::vector<size_t>& indices,
               const std::string& suffix) {
  Dataset out;
  out.name = dataset.name + suffix;
  out.schema = dataset.schema;
  out.records.reserve(indices.size());
  for (size_t idx : indices) {
    WYM_CHECK_LT(idx, dataset.records.size());
    out.records.push_back(dataset.records[idx]);
  }
  return out;
}

}  // namespace wym::data
