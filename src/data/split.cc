#include "data/split.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace wym::data {

Split TrainValTestSplit(const Dataset& dataset, double train_fraction,
                        double validation_fraction, uint64_t seed) {
  WYM_CHECK_GE(train_fraction, 0.0);
  WYM_CHECK_GE(validation_fraction, 0.0);
  WYM_CHECK_LE(train_fraction + validation_fraction, 1.0 + 1e-9);

  // Stratify: shuffle positives and negatives independently, then cut
  // each class with the same fractions.
  std::vector<size_t> positive, negative;
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    (dataset.records[i].label == 1 ? positive : negative).push_back(i);
  }
  Rng rng(seed);
  rng.Shuffle(&positive);
  rng.Shuffle(&negative);

  std::vector<size_t> train_idx, val_idx, test_idx;
  auto cut = [&](const std::vector<size_t>& pool) {
    const size_t n = pool.size();
    const size_t n_train = static_cast<size_t>(train_fraction * n + 0.5);
    const size_t n_val = std::min(
        n - n_train,
        static_cast<size_t>(validation_fraction * n + 0.5));
    for (size_t i = 0; i < n; ++i) {
      if (i < n_train) {
        train_idx.push_back(pool[i]);
      } else if (i < n_train + n_val) {
        val_idx.push_back(pool[i]);
      } else {
        test_idx.push_back(pool[i]);
      }
    }
  };
  cut(positive);
  cut(negative);

  // Keep original record order inside each partition (stable pipelines).
  std::sort(train_idx.begin(), train_idx.end());
  std::sort(val_idx.begin(), val_idx.end());
  std::sort(test_idx.begin(), test_idx.end());

  Split split;
  split.train = Subset(dataset, train_idx, "/train");
  split.validation = Subset(dataset, val_idx, "/val");
  split.test = Subset(dataset, test_idx, "/test");
  return split;
}

}  // namespace wym::data
