#include "data/statistics.h"

#include <set>
#include <sstream>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace wym::data {

namespace {

double Jaccard(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t shared = 0;
  for (const auto& token : a) shared += b.count(token);
  const size_t unioned = a.size() + b.size() - shared;
  return unioned == 0 ? 1.0
                      : static_cast<double>(shared) /
                            static_cast<double>(unioned);
}

}  // namespace

DatasetProfile ProfileDataset(const Dataset& dataset) {
  const text::Tokenizer tokenizer;
  DatasetProfile profile;
  profile.records = dataset.size();
  profile.matches = dataset.MatchCount();
  profile.match_percent = dataset.MatchPercent();
  profile.attributes.assign(dataset.schema.size(), AttributeProfile{});

  std::vector<size_t> value_count(dataset.schema.size(), 0);
  std::vector<size_t> match_count(dataset.schema.size(), 0);
  std::vector<size_t> non_match_count(dataset.schema.size(), 0);
  for (size_t a = 0; a < dataset.schema.size(); ++a) {
    profile.attributes[a].name = dataset.schema.attributes[a];
  }

  for (const auto& record : dataset.records) {
    for (size_t a = 0; a < dataset.schema.size(); ++a) {
      AttributeProfile& attr = profile.attributes[a];
      const std::string& left = record.left.values[a];
      const std::string& right = record.right.values[a];
      if (left.empty() || right.empty()) {
        attr.missing_rate += 1.0;
      }
      const auto lt = tokenizer.Tokenize(left);
      const auto rt = tokenizer.Tokenize(right);
      if (!lt.empty()) {
        attr.mean_tokens += static_cast<double>(lt.size());
        ++value_count[a];
      }
      if (!rt.empty()) {
        attr.mean_tokens += static_cast<double>(rt.size());
        ++value_count[a];
      }
      const double overlap =
          Jaccard({lt.begin(), lt.end()}, {rt.begin(), rt.end()});
      if (record.label == 1) {
        attr.match_overlap += overlap;
        ++match_count[a];
      } else {
        attr.non_match_overlap += overlap;
        ++non_match_count[a];
      }
    }
  }

  for (size_t a = 0; a < profile.attributes.size(); ++a) {
    AttributeProfile& attr = profile.attributes[a];
    if (profile.records > 0) {
      attr.missing_rate /= static_cast<double>(profile.records);
    }
    if (value_count[a] > 0) {
      attr.mean_tokens /= static_cast<double>(value_count[a]);
    }
    if (match_count[a] > 0) {
      attr.match_overlap /= static_cast<double>(match_count[a]);
    }
    if (non_match_count[a] > 0) {
      attr.non_match_overlap /= static_cast<double>(non_match_count[a]);
    }
    attr.overlap_gap = attr.match_overlap - attr.non_match_overlap;
  }
  return profile;
}

std::string RenderProfile(const DatasetProfile& profile) {
  std::ostringstream out;
  out << profile.records << " records, " << profile.matches << " matches ("
      << strings::FormatDouble(profile.match_percent, 1) << "%)\n";
  TablePrinter table({"attribute", "missing %", "tokens/value",
                      "overlap(match)", "overlap(non)", "gap"});
  for (const auto& attr : profile.attributes) {
    table.AddRow({attr.name,
                  strings::FormatDouble(100.0 * attr.missing_rate, 1),
                  strings::FormatDouble(attr.mean_tokens, 1),
                  strings::FormatDouble(attr.match_overlap, 3),
                  strings::FormatDouble(attr.non_match_overlap, 3),
                  strings::FormatDouble(attr.overlap_gap, 3)});
  }
  out << table.ToString();
  return out.str();
}

}  // namespace wym::data
