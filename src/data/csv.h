#ifndef WYM_DATA_CSV_H_
#define WYM_DATA_CSV_H_

#include <string>

#include "data/record.h"
#include "util/status.h"

/// \file
/// CSV persistence for EM datasets in the Magellan pair layout:
/// `label,left_<attr1>,...,left_<attrM>,right_<attr1>,...,right_<attrM>`
/// with RFC-4180 quoting. Lets users run the pipeline on their own data
/// and lets the benches cache generated datasets.

namespace wym::data {

/// Serializes a dataset (header + one row per record).
std::string DatasetToCsv(const Dataset& dataset);

/// Parses DatasetToCsv output. The dataset name is taken from `name`.
/// Fails with InvalidArgument/Corruption on malformed headers or rows.
Result<Dataset> DatasetFromCsv(const std::string& csv,
                               const std::string& name);

/// File round-trip helpers.
Status WriteDatasetCsv(const Dataset& dataset, const std::string& path);
Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const std::string& name);

}  // namespace wym::data

#endif  // WYM_DATA_CSV_H_
