#ifndef WYM_DATA_CSV_H_
#define WYM_DATA_CSV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/record.h"
#include "util/status.h"

/// \file
/// CSV persistence for EM datasets in the Magellan pair layout:
/// `label,left_<attr1>,...,left_<attrM>,right_<attr1>,...,right_<attrM>`
/// with RFC-4180 quoting. Lets users run the pipeline on their own data
/// and lets the benches cache generated datasets.
///
/// Ingestion is hardened (see DESIGN.md "Failure model & file-format
/// v2"): every malformed row — ragged arity, unterminated quote,
/// oversized field, bad label — is reported as a `Status` carrying
/// `<name>:<line>`, and a quarantine mode skips and counts bad rows
/// instead of failing the whole file. File reads go through
/// `io::ReadFileToString`, so the fault-injection seam covers the CSV
/// reader too.

namespace wym::data {

/// Ingestion policy.
struct CsvOptions {
  /// Strict (false): the first malformed row fails the parse with a
  /// `<name>:<line>` Status. Quarantine (true): malformed rows are
  /// skipped and counted in the CsvReport; the parse fails only on a
  /// malformed header or when *every* row is bad.
  bool quarantine = false;
  /// A field longer than this is malformed (guards against unterminated
  /// quotes swallowing megabytes and against memory-hostile inputs).
  size_t max_field_bytes = 1 << 20;
};

/// One quarantined row.
struct CsvRowError {
  size_t line = 0;      ///< 1-based line number in the file.
  std::string reason;   ///< e.g. "row has 4 fields, expected 5".
};

/// Per-run ingestion report (quarantine bookkeeping).
struct CsvReport {
  size_t rows_ok = 0;
  size_t rows_quarantined = 0;
  /// First `kMaxRecordedErrors` quarantined rows, in file order.
  std::vector<CsvRowError> errors;

  static constexpr size_t kMaxRecordedErrors = 32;
};

/// Serializes a dataset (header + one row per record).
std::string DatasetToCsv(const Dataset& dataset);

/// Parses DatasetToCsv output. The dataset name is taken from `name`
/// and prefixes every row diagnostic as `<name>:<line>`. `report`
/// (optional) receives the ingestion counts in both modes.
Result<Dataset> DatasetFromCsv(const std::string& csv,
                               const std::string& name,
                               const CsvOptions& options = {},
                               CsvReport* report = nullptr);

/// File round-trip helpers.
[[nodiscard]] Status WriteDatasetCsv(const Dataset& dataset,
                                     const std::string& path);
Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const std::string& name,
                               const CsvOptions& options = {},
                               CsvReport* report = nullptr);

}  // namespace wym::data

#endif  // WYM_DATA_CSV_H_
