#include "data/corruption.h"

#include <algorithm>
#include <cmath>

#include "data/word_pools.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wym::data {

namespace {

/// True for values like "37.63" or "2007" that should get numeric jitter
/// rather than textual noise.
bool IsNumericValue(const std::string& value) {
  if (value.empty()) return false;
  bool has_digit = false;
  int dots = 0;
  for (char c : value) {
    if (c >= '0' && c <= '9') {
      has_digit = true;
    } else if (c == '.') {
      ++dots;
    } else {
      return false;
    }
  }
  return has_digit && dots <= 1;
}

std::string JitterNumeric(const std::string& value, double relative,
                          Rng* rng) {
  const double parsed = std::strtod(value.c_str(), nullptr);
  const bool had_decimals = value.find('.') != std::string::npos;
  // Year-like integers drift by at most one (publication years disagree
  // across bibliographic sources by one, not by 15%).
  if (!had_decimals && parsed >= 1900 && parsed <= 2100) {
    const long long year =
        std::llround(parsed) + (rng->Bernoulli(0.5) ? 1 : -1);
    return std::to_string(year);
  }
  const double jittered =
      parsed * (1.0 + rng->Uniform(-relative, relative));
  return had_decimals ? strings::FormatDouble(jittered, 2)
                      : std::to_string(static_cast<long long>(
                            std::llround(jittered)));
}

}  // namespace

std::string ApplyTypo(const std::string& token, Rng* rng) {
  if (token.empty()) return token;
  std::string out = token;
  static constexpr std::string_view kAlphabet =
      "abcdefghijklmnopqrstuvwxyz";
  const size_t pos = rng->Index(out.size());
  switch (rng->Index(4)) {
    case 0:  // Substitute.
      out[pos] = kAlphabet[rng->Index(kAlphabet.size())];
      break;
    case 1:  // Delete (keep at least one char).
      if (out.size() > 1) out.erase(pos, 1);
      break;
    case 2:  // Transpose with the next char.
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
    case 3:  // Insert.
      out.insert(out.begin() + static_cast<long>(pos),
                 kAlphabet[rng->Index(kAlphabet.size())]);
      break;
  }
  return out;
}

Entity CorruptEntity(const Entity& entity, const Schema& schema,
                     const CorruptionProfile& profile, Rng* rng) {
  WYM_CHECK_EQ(entity.values.size(), schema.size());
  Entity view = entity;

  // Dirty spill: move one non-identity value into attribute 0.
  if (profile.attr_spill > 0.0) {
    for (size_t a = 1; a < view.values.size(); ++a) {
      if (view.values[a].empty()) continue;
      if (!rng->Bernoulli(profile.attr_spill)) continue;
      if (!view.values[0].empty()) view.values[0] += " ";
      view.values[0] += view.values[a];
      view.values[a].clear();
    }
  }

  for (size_t a = 0; a < view.values.size(); ++a) {
    std::string& value = view.values[a];
    if (value.empty()) continue;

    // Whole-value dropout never hits the identity attribute (attribute 0):
    // real sources omit prices or brands, not the product name / title.
    if (a > 0 && rng->Bernoulli(profile.value_missing)) {
      value.clear();
      continue;
    }

    if (IsNumericValue(value)) {
      if (rng->Bernoulli(0.8)) {
        value = JitterNumeric(value, profile.numeric_jitter, rng);
      }
      continue;
    }

    // Whole-value synonym (venue long forms).
    if (rng->Bernoulli(profile.synonym)) {
      const std::string_view long_form = pools::VenueLongForm(value);
      if (!long_form.empty()) {
        value = std::string(long_form);
        continue;
      }
    }

    std::vector<std::string> tokens = strings::SplitWhitespace(value);
    std::vector<std::string> out_tokens;
    out_tokens.reserve(tokens.size());
    for (size_t t = 0; t < tokens.size(); ++t) {
      std::string token = tokens[t];
      // Drop (never empty the attribute entirely).
      if (tokens.size() > 1 && out_tokens.size() + (tokens.size() - t) > 1 &&
          rng->Bernoulli(profile.drop_token)) {
        continue;
      }
      if (rng->Bernoulli(profile.abbreviate)) {
        const std::string_view abbreviation = pools::AbbreviationOf(token);
        if (!abbreviation.empty()) token = std::string(abbreviation);
      }
      if (rng->Bernoulli(profile.typo)) token = ApplyTypo(token, rng);
      out_tokens.push_back(token);
      if (rng->Bernoulli(profile.duplicate_token)) {
        out_tokens.push_back(token);
      }
    }
    if (out_tokens.empty()) out_tokens.push_back(tokens.front());

    if (out_tokens.size() > 1 && rng->Bernoulli(profile.reorder)) {
      const size_t pos = rng->Index(out_tokens.size() - 1);
      std::swap(out_tokens[pos], out_tokens[pos + 1]);
    }
    value = strings::Join(out_tokens, " ");
  }
  return view;
}

}  // namespace wym::data
