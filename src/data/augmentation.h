#ifndef WYM_DATA_AUGMENTATION_H_
#define WYM_DATA_AUGMENTATION_H_

#include <cstdint>

#include "data/record.h"

/// \file
/// Label-preserving training-set augmentation: the technique behind
/// DITTO's data augmentation (Li et al. 2021) and one ingredient of the
/// paper's future-work plan of injecting automatically generated
/// synthetic sentences (§6). Augmented copies keep the label because
/// every operator preserves record identity:
///   - side swap: (left, right) -> (right, left) — EM is symmetric;
///   - token dropout: random tokens removed from attribute values;
///   - token shuffle: adjacent tokens transposed.

namespace wym::data {

/// Options for AugmentDataset.
struct AugmentationOptions {
  /// Augmented copies produced per source record (on top of the
  /// originals).
  size_t copies_per_record = 1;
  /// Probability of swapping the two descriptions in a copy.
  double swap_sides = 0.5;
  /// Per-token dropout probability inside a copy (identity attribute is
  /// capped so records stay resolvable).
  double token_dropout = 0.08;
  /// Per-attribute probability of one adjacent-token transposition.
  double token_shuffle = 0.2;
  uint64_t seed = 0xA46;
};

/// Returns `dataset` plus augmented copies of every record (originals
/// first, copies after, same schema). Deterministic in (dataset, options).
Dataset AugmentDataset(const Dataset& dataset,
                       const AugmentationOptions& options = {});

}  // namespace wym::data

#endif  // WYM_DATA_AUGMENTATION_H_
