#ifndef WYM_DATA_CORRUPTION_H_
#define WYM_DATA_CORRUPTION_H_

#include "data/record.h"
#include "util/random.h"

/// \file
/// The source-view corruption model. Each EM record's two descriptions
/// are independent noisy *views* of (possibly different) catalog
/// entities; this module produces those views. The knobs reproduce the
/// heterogeneity the Magellan datasets exhibit: typos, token drops,
/// abbreviations ("exchange" -> "exch"), word reordering, numeric jitter
/// (prices differ across shops), missing values, venue periphrasis, and —
/// for the *dirty* dataset variants — values leaking into the wrong
/// attribute (challenge R2).

namespace wym::data {

/// Per-view corruption probabilities. All default to a mild profile;
/// dataset specs override them to set dataset difficulty.
struct CorruptionProfile {
  /// Per-token probability of a single-character edit.
  double typo = 0.02;
  /// Per-token probability of deletion (never deletes the last token).
  double drop_token = 0.04;
  /// Per-token probability of replacement with its known abbreviation.
  double abbreviate = 0.10;
  /// Per-token probability of being duplicated in place.
  double duplicate_token = 0.01;
  /// Per-attribute probability of swapping two adjacent tokens.
  double reorder = 0.10;
  /// Per-attribute probability of the whole value going missing.
  double value_missing = 0.02;
  /// Relative jitter applied to numeric values (prices differ per shop).
  double numeric_jitter = 0.15;
  /// Probability of replacing a value with its long-form synonym
  /// (venue names).
  double synonym = 0.10;
  /// Dirty variants: probability of an attribute value being moved into
  /// the identity attribute (value ends up concatenated there, original
  /// attribute emptied).
  double attr_spill = 0.0;
};

/// Applies the profile to every attribute of `entity`, returning the view.
/// `schema` is used only for sizing checks; corruption decisions come from
/// `rng`, so two calls produce two independent views.
Entity CorruptEntity(const Entity& entity, const Schema& schema,
                     const CorruptionProfile& profile, Rng* rng);

/// Applies a single-character edit (substitute / delete / transpose /
/// insert) to a token. Exposed for tests.
std::string ApplyTypo(const std::string& token, Rng* rng);

}  // namespace wym::data

#endif  // WYM_DATA_CORRUPTION_H_
