#ifndef WYM_DATA_RECORD_H_
#define WYM_DATA_RECORD_H_

#include <string>
#include <vector>

/// \file
/// Core EM data model (paper §3.1): an EM record is a pair of entity
/// descriptions over a shared schema plus a 0/1 match label.

namespace wym::data {

/// Attribute names shared by both entity descriptions of a record.
struct Schema {
  std::vector<std::string> attributes;

  size_t size() const { return attributes.size(); }
  bool operator==(const Schema& other) const = default;
};

/// One entity description: one string value per schema attribute
/// (possibly empty — real EM data is full of missing values).
struct Entity {
  std::vector<std::string> values;

  size_t size() const { return values.size(); }
};

/// A labelled pair of entity descriptions.
struct EmRecord {
  Entity left;
  Entity right;
  /// 1 = the descriptions refer to the same real-world entity.
  int label = 0;
};

/// A named EM dataset: schema + labelled records.
struct Dataset {
  std::string name;
  Schema schema;
  std::vector<EmRecord> records;

  size_t size() const { return records.size(); }

  /// Number of records with label 1.
  size_t MatchCount() const;

  /// Percentage of matching records (0..100).
  double MatchPercent() const;

  /// Labels of all records, in order.
  std::vector<int> Labels() const;
};

/// Returns a dataset containing the records at `indices` (shared schema).
Dataset Subset(const Dataset& dataset, const std::vector<size_t>& indices,
               const std::string& suffix);

}  // namespace wym::data

#endif  // WYM_DATA_RECORD_H_
