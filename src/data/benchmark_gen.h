#ifndef WYM_DATA_BENCHMARK_GEN_H_
#define WYM_DATA_BENCHMARK_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/catalog.h"
#include "data/corruption.h"
#include "data/record.h"

/// \file
/// The synthetic Magellan benchmark (see DESIGN.md §1 for the
/// substitution rationale). Twelve dataset specs mirror Table 2 of the
/// paper: ids, domains, relative sizes, match rates, structured / textual
/// / dirty types, and per-dataset difficulty via the corruption profile
/// and the hard-negative share.

namespace wym::data {

/// Dataset category, Table 2's "Type" column.
enum class DatasetType { kStructured, kTextual, kDirty };

/// Printable type name ("Structured" / "Textual" / "Dirty").
const char* DatasetTypeName(DatasetType type);

/// Static description of one benchmark dataset.
struct DatasetSpec {
  std::string id;         ///< "S-DG", "T-AB", "D-WA", ...
  std::string full_name;  ///< "DBLP-GoogleScholar", ...
  DatasetType type = DatasetType::kStructured;
  Domain domain = Domain::kBibliographic;
  /// Size / match rate reported in the paper's Table 2.
  size_t paper_size = 0;
  double paper_match_percent = 0.0;
  /// Generated size at scale 1 (paper sizes scaled to CPU budget; the
  /// small datasets keep their true size).
  size_t default_size = 0;
  /// Fraction of records labelled match.
  double match_fraction = 0.1;
  /// Fraction of the negatives that are confusable siblings
  /// (same brand / venue / city).
  double hard_negative_fraction = 0.5;
  /// Blocking filter: candidate pairs in the Magellan benchmark pass a
  /// cheap similarity blocker before labelling, so records whose
  /// identity-attribute token overlap (Jaccard) falls below this
  /// threshold are re-drawn. 0 disables blocking.
  double blocking_threshold = 0.0;
  /// Per-view corruption (difficulty knob).
  CorruptionProfile corruption;
  /// Textual datasets additionally carry a generated long description.
  bool long_description = false;
};

/// Specs of the full 12-dataset benchmark in Table 2 order.
const std::vector<DatasetSpec>& BenchmarkSpecs();

/// Spec lookup by id; nullptr when unknown.
const DatasetSpec* FindSpec(const std::string& id);

/// Generates a dataset from a spec. `scale` multiplies default_size
/// (minimum 50 records enforced). Deterministic in (spec, seed, scale).
Dataset GenerateDataset(const DatasetSpec& spec, uint64_t seed,
                        double scale = 1.0);

/// Convenience: generate by id. CHECK-fails on unknown ids.
Dataset GenerateById(const std::string& id, uint64_t seed,
                     double scale = 1.0);

}  // namespace wym::data

#endif  // WYM_DATA_BENCHMARK_GEN_H_
