#ifndef WYM_DATA_CATALOG_H_
#define WYM_DATA_CATALOG_H_

#include <string>
#include <vector>

#include "data/record.h"
#include "util/random.h"

/// \file
/// Canonical-entity catalogs for the five Magellan domains. A catalog
/// entity is the clean ground-truth description; the benchmark generator
/// derives the two source *views* of each record from it via the
/// corruption model, and derives hard negatives via MakeSibling.

namespace wym::data {

/// The entity domains of the 12 benchmark datasets.
enum class Domain {
  kBibliographic,  ///< DBLP-GoogleScholar / DBLP-ACM.
  kSoftware,       ///< Amazon-Google (software products).
  kProduct,        ///< Walmart-Amazon / Abt-Buy (electronics).
  kBeer,           ///< BeerAdvo-RateBeer.
  kSong,           ///< iTunes-Amazon.
  kRestaurant,     ///< Fodors-Zagats.
};

/// One clean catalog entry.
struct CatalogEntity {
  /// Canonical attribute values, aligned to the domain schema.
  std::vector<std::string> values;
  /// Grouping key for hard-negative sampling (brand / venue / city index):
  /// siblings keep the group, which plants shared tokens in non-matching
  /// records (challenge R1).
  size_t group = 0;
};

/// Schema of a domain ("title, authors, venue, year" etc.).
Schema DomainSchema(Domain domain);

/// Index of the attribute that carries the distinguishing identity token
/// (model code / title / name). Sibling generation always mutates it.
size_t IdentityAttribute(Domain domain);

/// Generates `n` clean entities for the domain.
std::vector<CatalogEntity> GenerateCatalog(Domain domain, size_t n, Rng* rng);

/// Derives a *different* real-world entity that is deliberately confusable
/// with `entity`: same group (brand/venue/city), overlapping descriptive
/// tokens, but a distinct identity (model code, title core, name).
CatalogEntity MakeSibling(Domain domain, const CatalogEntity& entity,
                          Rng* rng);

}  // namespace wym::data

#endif  // WYM_DATA_CATALOG_H_
