#include "data/csv.h"

#include <sstream>

#include "obs/metrics.h"
#include "util/io.h"
#include "util/string_util.h"

namespace wym::data {

namespace {

/// RFC-4180 quoting: wrap in quotes when the field contains a comma,
/// quote or newline; double embedded quotes.
std::string QuoteField(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honoring quotes. On failure returns false with a
/// human-readable `reason` (unterminated quote, oversized field).
bool ParseCsvLine(const std::string& line, size_t max_field_bytes,
                  std::vector<std::string>* fields, std::string* reason) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  auto flush = [&]() {
    if (current.size() > max_field_bytes) {
      *reason = "field " + std::to_string(fields->size() + 1) + " is " +
                std::to_string(current.size()) + " bytes (limit " +
                std::to_string(max_field_bytes) + ")";
      return false;
    }
    fields->push_back(std::move(current));
    current.clear();
    return true;
  };
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      if (!flush()) return false;
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    *reason = "unterminated quote";
    return false;
  }
  return flush();
}

}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  std::ostringstream out;
  out << "label";
  for (const auto& attr : dataset.schema.attributes) {
    out << ",left_" << attr;
  }
  for (const auto& attr : dataset.schema.attributes) {
    out << ",right_" << attr;
  }
  out << "\n";
  for (const auto& record : dataset.records) {
    out << record.label;
    for (const auto& value : record.left.values) {
      out << ',' << QuoteField(value);
    }
    for (const auto& value : record.right.values) {
      out << ',' << QuoteField(value);
    }
    out << "\n";
  }
  return out.str();
}

Result<Dataset> DatasetFromCsv(const std::string& csv,
                               const std::string& name,
                               const CsvOptions& options, CsvReport* report) {
  if (report != nullptr) *report = CsvReport{};
  std::istringstream in(csv);
  std::string line;
  std::string reason;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: " + name);
  }
  // Header damage is always fatal: without a trusted schema no row can
  // be interpreted, so there is nothing sane to quarantine against.
  std::vector<std::string> header;
  if (!ParseCsvLine(line, options.max_field_bytes, &header, &reason)) {
    return Status::Corruption(name + ":1: " + reason + " in header");
  }
  if (header.empty() || header[0] != "label") {
    return Status::InvalidArgument(name +
                                   ":1: first CSV column must be 'label'");
  }
  const size_t pair_columns = header.size() - 1;
  if (pair_columns == 0 || pair_columns % 2 != 0) {
    return Status::InvalidArgument(
        name + ":1: CSV must have an equal number of left_/right_ columns");
  }
  const size_t width = pair_columns / 2;

  Dataset dataset;
  dataset.name = name;
  for (size_t j = 0; j < width; ++j) {
    const std::string& left_name = header[1 + j];
    const std::string& right_name = header[1 + width + j];
    if (!strings::StartsWith(left_name, "left_") ||
        !strings::StartsWith(right_name, "right_") ||
        left_name.substr(5) != right_name.substr(6)) {
      return Status::InvalidArgument(name +
                                     ":1: misaligned left_/right_ columns at " +
                                     left_name);
    }
    dataset.schema.attributes.push_back(left_name.substr(5));
  }

  size_t line_number = 1;
  size_t rows_seen = 0;
  size_t rows_quarantined = 0;
  std::vector<std::string> fields;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    ++rows_seen;

    reason.clear();
    if (!ParseCsvLine(line, options.max_field_bytes, &fields, &reason)) {
      // `reason` already set.
    } else if (fields.size() != header.size()) {
      reason = "row has " + std::to_string(fields.size()) +
               " field(s), expected " + std::to_string(header.size());
    } else if (fields[0] != "0" && fields[0] != "1") {
      reason = "label must be 0/1, got '" + fields[0] + "'";
    }

    if (!reason.empty()) {
      if (!options.quarantine) {
        return Status::Corruption(name + ":" + std::to_string(line_number) +
                                  ": " + reason);
      }
      ++rows_quarantined;
      static obs::Counter& quarantined =
          obs::Registry::Global().GetCounter("csv.rows_quarantined");
      quarantined.Add(1);
      if (report != nullptr) {
        ++report->rows_quarantined;
        if (report->errors.size() < CsvReport::kMaxRecordedErrors) {
          report->errors.push_back(CsvRowError{line_number, reason});
        }
      }
      continue;
    }

    EmRecord record;
    record.label = fields[0] == "1" ? 1 : 0;
    record.left.values.assign(fields.begin() + 1, fields.begin() + 1 + width);
    record.right.values.assign(fields.begin() + 1 + width, fields.end());
    dataset.records.push_back(std::move(record));
    if (report != nullptr) ++report->rows_ok;
  }
  if (rows_seen > 0 && rows_quarantined == rows_seen) {
    return Status::Corruption(name + ": all " + std::to_string(rows_seen) +
                              " row(s) malformed; refusing to return an "
                              "empty dataset from a damaged file");
  }
  return dataset;
}

Status WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  return io::WriteFileAtomic(path, DatasetToCsv(dataset))
      .Annotate("writing dataset CSV");
}

Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const std::string& name,
                               const CsvOptions& options, CsvReport* report) {
  std::string bytes;
  const Status read = io::ReadFileToString(path, &bytes);
  if (!read.ok()) return read.Annotate("reading dataset CSV");
  return DatasetFromCsv(bytes, name, options, report);
}

}  // namespace wym::data
