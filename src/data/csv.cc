#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace wym::data {

namespace {

/// RFC-4180 quoting: wrap in quotes when the field contains a comma,
/// quote or newline; double embedded quotes.
std::string QuoteField(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV line honoring quotes. Returns false on unbalanced quotes.
bool ParseCsvLine(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else {
      current += c;
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(current));
  return true;
}

}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  std::ostringstream out;
  out << "label";
  for (const auto& attr : dataset.schema.attributes) {
    out << ",left_" << attr;
  }
  for (const auto& attr : dataset.schema.attributes) {
    out << ",right_" << attr;
  }
  out << "\n";
  for (const auto& record : dataset.records) {
    out << record.label;
    for (const auto& value : record.left.values) {
      out << ',' << QuoteField(value);
    }
    for (const auto& value : record.right.values) {
      out << ',' << QuoteField(value);
    }
    out << "\n";
  }
  return out.str();
}

Result<Dataset> DatasetFromCsv(const std::string& csv,
                               const std::string& name) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV");
  }
  std::vector<std::string> header;
  if (!ParseCsvLine(line, &header)) {
    return Status::Corruption("unbalanced quotes in header");
  }
  if (header.empty() || header[0] != "label") {
    return Status::InvalidArgument("first CSV column must be 'label'");
  }
  const size_t pair_columns = header.size() - 1;
  if (pair_columns == 0 || pair_columns % 2 != 0) {
    return Status::InvalidArgument(
        "CSV must have an equal number of left_/right_ columns");
  }
  const size_t width = pair_columns / 2;

  Dataset dataset;
  dataset.name = name;
  for (size_t j = 0; j < width; ++j) {
    const std::string& left_name = header[1 + j];
    const std::string& right_name = header[1 + width + j];
    if (!strings::StartsWith(left_name, "left_") ||
        !strings::StartsWith(right_name, "right_") ||
        left_name.substr(5) != right_name.substr(6)) {
      return Status::InvalidArgument("misaligned left_/right_ columns at " +
                                     left_name);
    }
    dataset.schema.attributes.push_back(left_name.substr(5));
  }

  size_t line_number = 1;
  std::vector<std::string> fields;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!ParseCsvLine(line, &fields)) {
      return Status::Corruption("unbalanced quotes at line " +
                                std::to_string(line_number));
    }
    if (fields.size() != header.size()) {
      return Status::Corruption("wrong field count at line " +
                                std::to_string(line_number));
    }
    EmRecord record;
    if (fields[0] == "1") {
      record.label = 1;
    } else if (fields[0] == "0") {
      record.label = 0;
    } else {
      return Status::Corruption("label must be 0/1 at line " +
                                std::to_string(line_number));
    }
    record.left.values.assign(fields.begin() + 1, fields.begin() + 1 + width);
    record.right.values.assign(fields.begin() + 1 + width, fields.end());
    dataset.records.push_back(std::move(record));
  }
  return dataset;
}

Status WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << DatasetToCsv(dataset);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const std::string& name) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DatasetFromCsv(buffer.str(), name);
}

}  // namespace wym::data
