#ifndef WYM_DATA_SPLIT_H_
#define WYM_DATA_SPLIT_H_

#include <cstdint>

#include "data/record.h"

/// \file
/// Stratified train/validation/test splitting. The paper evaluates every
/// dataset with 60-20-20 proportions (§5, Datasets).

namespace wym::data {

/// The three partitions of a dataset.
struct Split {
  Dataset train;
  Dataset validation;
  Dataset test;
};

/// Splits `dataset` into train/validation/test with the given fractions
/// (must sum to <= 1; the remainder goes to test). Stratifies on the
/// label so each partition keeps the dataset's match rate. Deterministic
/// for a fixed seed.
Split TrainValTestSplit(const Dataset& dataset, double train_fraction,
                        double validation_fraction, uint64_t seed);

/// The paper's default 60-20-20 split.
inline Split DefaultSplit(const Dataset& dataset, uint64_t seed) {
  return TrainValTestSplit(dataset, 0.6, 0.2, seed);
}

}  // namespace wym::data

#endif  // WYM_DATA_SPLIT_H_
