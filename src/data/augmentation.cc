#include "data/augmentation.h"

#include <utility>

#include "util/random.h"
#include "util/string_util.h"

namespace wym::data {

namespace {

/// Token dropout + adjacent transposition on one attribute value.
std::string PerturbValue(const std::string& value, bool is_identity,
                         const AugmentationOptions& options, Rng* rng) {
  std::vector<std::string> tokens = strings::SplitWhitespace(value);
  if (tokens.empty()) return value;

  // Dropout; the identity attribute keeps at least half of its tokens so
  // the record stays resolvable.
  std::vector<std::string> kept;
  const size_t min_keep =
      is_identity ? (tokens.size() + 1) / 2 : 1;
  for (size_t t = 0; t < tokens.size(); ++t) {
    const size_t remaining = tokens.size() - t;
    if (kept.size() + remaining > min_keep &&
        rng->Bernoulli(options.token_dropout)) {
      continue;
    }
    kept.push_back(tokens[t]);
  }
  if (kept.empty()) kept.push_back(tokens.front());

  if (kept.size() > 1 && rng->Bernoulli(options.token_shuffle)) {
    const size_t pos = rng->Index(kept.size() - 1);
    std::swap(kept[pos], kept[pos + 1]);
  }
  return strings::Join(kept, " ");
}

}  // namespace

Dataset AugmentDataset(const Dataset& dataset,
                       const AugmentationOptions& options) {
  Dataset out = dataset;
  out.name = dataset.name + "/augmented";
  Rng rng(options.seed);
  out.records.reserve(dataset.size() * (1 + options.copies_per_record));
  for (const auto& record : dataset.records) {
    for (size_t copy = 0; copy < options.copies_per_record; ++copy) {
      EmRecord augmented = record;
      if (rng.Bernoulli(options.swap_sides)) {
        std::swap(augmented.left, augmented.right);
      }
      for (auto* entity : {&augmented.left, &augmented.right}) {
        for (size_t a = 0; a < entity->values.size(); ++a) {
          entity->values[a] =
              PerturbValue(entity->values[a], a == 0, options, &rng);
        }
      }
      out.records.push_back(std::move(augmented));
    }
  }
  return out;
}

}  // namespace wym::data
