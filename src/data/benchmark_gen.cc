#include "data/benchmark_gen.h"

#include <algorithm>
#include <set>

#include "data/word_pools.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wym::data {

namespace {

/// Difficulty presets. The paper's F1 spread (Table 3: S-FZ/S-IA near 1.0,
/// S-AG/T-AB/D-WA near 0.6) is reproduced by scaling noise and the
/// hard-negative share, not by touching the pipeline.
CorruptionProfile EasyProfile() {
  CorruptionProfile p;
  p.typo = 0.005;
  p.drop_token = 0.02;
  p.abbreviate = 0.05;
  p.reorder = 0.05;
  p.value_missing = 0.01;
  p.numeric_jitter = 0.05;
  p.synonym = 0.05;
  return p;
}

CorruptionProfile MediumProfile() {
  CorruptionProfile p;
  p.typo = 0.02;
  p.drop_token = 0.06;
  p.abbreviate = 0.12;
  p.reorder = 0.10;
  p.value_missing = 0.03;
  p.numeric_jitter = 0.12;
  p.synonym = 0.10;
  p.duplicate_token = 0.02;
  return p;
}

CorruptionProfile HardProfile() {
  CorruptionProfile p;
  p.typo = 0.035;
  p.drop_token = 0.09;
  p.abbreviate = 0.16;
  p.reorder = 0.18;
  p.value_missing = 0.07;
  p.numeric_jitter = 0.12;
  p.synonym = 0.15;
  p.duplicate_token = 0.03;
  return p;
}

CorruptionProfile Dirty(CorruptionProfile p, double spill) {
  p.attr_spill = spill;
  return p;
}

std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs;

  auto add = [&](DatasetSpec spec) { specs.push_back(std::move(spec)); };

  add({.id = "S-DG",
       .full_name = "DBLP-GoogleScholar",
       .type = DatasetType::kStructured,
       .domain = Domain::kBibliographic,
       .paper_size = 28707,
       .paper_match_percent = 18.63,
       .default_size = 1600,
       .match_fraction = 0.1863,
       .hard_negative_fraction = 0.45,
       .blocking_threshold = 0.25,
       .corruption = MediumProfile()});
  add({.id = "S-DA",
       .full_name = "DBLP-ACM",
       .type = DatasetType::kStructured,
       .domain = Domain::kBibliographic,
       .paper_size = 12363,
       .paper_match_percent = 17.96,
       .default_size = 1200,
       .match_fraction = 0.1796,
       .hard_negative_fraction = 0.35,
       .blocking_threshold = 0.25,
       .corruption = EasyProfile()});
  add({.id = "S-AG",
       .full_name = "Amazon-Google",
       .type = DatasetType::kStructured,
       .domain = Domain::kSoftware,
       .paper_size = 11460,
       .paper_match_percent = 10.18,
       .default_size = 1400,
       .match_fraction = 0.1018,
       .hard_negative_fraction = 0.8,
       .blocking_threshold = 0.30,
       .corruption = HardProfile()});
  add({.id = "S-WA",
       .full_name = "Walmart-Amazon",
       .type = DatasetType::kStructured,
       .domain = Domain::kProduct,
       .paper_size = 10242,
       .paper_match_percent = 9.39,
       .default_size = 1400,
       .match_fraction = 0.0939,
       .hard_negative_fraction = 0.5,
       .blocking_threshold = 0.30,
       .corruption = HardProfile()});
  add({.id = "S-BR",
       .full_name = "BeerAdvo-RateBeer",
       .type = DatasetType::kStructured,
       .domain = Domain::kBeer,
       .paper_size = 450,
       .paper_match_percent = 15.11,
       .default_size = 450,
       .match_fraction = 0.1511,
       .hard_negative_fraction = 0.5,
       .blocking_threshold = 0.20,
       .corruption = MediumProfile()});
  add({.id = "S-IA",
       .full_name = "iTunes-Amazon",
       .type = DatasetType::kStructured,
       .domain = Domain::kSong,
       .paper_size = 539,
       .paper_match_percent = 24.49,
       .default_size = 539,
       .match_fraction = 0.2449,
       .hard_negative_fraction = 0.4,
       .blocking_threshold = 0.20,
       .corruption = EasyProfile()});
  add({.id = "S-FZ",
       .full_name = "Fodors-Zagats",
       .type = DatasetType::kStructured,
       .domain = Domain::kRestaurant,
       .paper_size = 946,
       .paper_match_percent = 11.63,
       .default_size = 946,
       .match_fraction = 0.1163,
       .hard_negative_fraction = 0.3,
       .blocking_threshold = 0.20,
       .corruption = EasyProfile()});
  add({.id = "T-AB",
       .full_name = "Abt-Buy",
       .type = DatasetType::kTextual,
       .domain = Domain::kProduct,
       .paper_size = 9575,
       .paper_match_percent = 10.74,
       .default_size = 1300,
       .match_fraction = 0.1074,
       .hard_negative_fraction = 0.55,
       .blocking_threshold = 0.30,
       .corruption = HardProfile(),
       .long_description = true});
  add({.id = "D-IA",
       .full_name = "iTunes-Amazon (dirty)",
       .type = DatasetType::kDirty,
       .domain = Domain::kSong,
       .paper_size = 539,
       .paper_match_percent = 24.49,
       .default_size = 539,
       .match_fraction = 0.2449,
       .hard_negative_fraction = 0.4,
       .blocking_threshold = 0.20,
       .corruption = Dirty(EasyProfile(), 0.25)});
  add({.id = "D-DA",
       .full_name = "DBLP-ACM (dirty)",
       .type = DatasetType::kDirty,
       .domain = Domain::kBibliographic,
       .paper_size = 12363,
       .paper_match_percent = 17.96,
       .default_size = 1200,
       .match_fraction = 0.1796,
       .hard_negative_fraction = 0.35,
       .blocking_threshold = 0.25,
       .corruption = Dirty(EasyProfile(), 0.25)});
  add({.id = "D-DG",
       .full_name = "DBLP-GoogleScholar (dirty)",
       .type = DatasetType::kDirty,
       .domain = Domain::kBibliographic,
       .paper_size = 28707,
       .paper_match_percent = 18.63,
       .default_size = 1600,
       .match_fraction = 0.1863,
       .hard_negative_fraction = 0.45,
       .blocking_threshold = 0.25,
       .corruption = Dirty(MediumProfile(), 0.25)});
  add({.id = "D-WA",
       .full_name = "Walmart-Amazon (dirty)",
       .type = DatasetType::kDirty,
       .domain = Domain::kProduct,
       .paper_size = 10242,
       .paper_match_percent = 9.39,
       .default_size = 1400,
       .match_fraction = 0.0939,
       .hard_negative_fraction = 0.5,
       .blocking_threshold = 0.30,
       .corruption = Dirty(HardProfile(), 0.35)});

  return specs;
}

/// Long-description schema used by the textual dataset.
Schema TextualSchema() { return {{"name", "description", "price"}}; }

/// Builds an independent long-description view of a product entity:
/// content words from the name/manufacturer plus a fresh sample of filler
/// phrasing. Two views of the same entity share content words but almost
/// no filler (the paper's periphrasis: T-AB's outlier unit distribution
/// in Figure 4).
Entity MakeTextualView(const CatalogEntity& entity,
                       const CorruptionProfile& profile, Rng* rng) {
  const Schema product_schema = DomainSchema(Domain::kProduct);
  Entity base;
  base.values = entity.values;
  const Entity corrupted = CorruptEntity(base, product_schema, profile, rng);

  std::vector<std::string> description_words;
  description_words.push_back(corrupted.values[1]);  // Manufacturer.
  for (const auto& word : strings::SplitWhitespace(corrupted.values[0])) {
    if (rng->Bernoulli(0.7)) description_words.push_back(word);
  }
  const auto fillers = pools::DescriptionFillers();
  const size_t n_fillers = 10 + rng->Index(12);
  for (size_t i = 0; i < n_fillers; ++i) {
    description_words.push_back(
        std::string(fillers[rng->Index(fillers.size())]));
  }
  rng->Shuffle(&description_words);

  Entity view;
  view.values = {corrupted.values[0],
                 strings::Join(description_words, " "),
                 corrupted.values[2]};
  return view;
}

}  // namespace

const char* DatasetTypeName(DatasetType type) {
  switch (type) {
    case DatasetType::kStructured:
      return "Structured";
    case DatasetType::kTextual:
      return "Textual";
    case DatasetType::kDirty:
      return "Dirty";
  }
  return "Unknown";
}

const std::vector<DatasetSpec>& BenchmarkSpecs() {
  static const std::vector<DatasetSpec>& specs =
      // wym-lint: allow(no-raw-new-delete): intentional immortal-singleton leak; a static value would die in unspecified order
      *new std::vector<DatasetSpec>(BuildSpecs());
  return specs;
}

const DatasetSpec* FindSpec(const std::string& id) {
  for (const auto& spec : BenchmarkSpecs()) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

Dataset GenerateDataset(const DatasetSpec& spec, uint64_t seed,
                        double scale) {
  WYM_CHECK_GT(scale, 0.0);
  const size_t n_records = std::max<size_t>(
      50, static_cast<size_t>(static_cast<double>(spec.default_size) * scale));
  const size_t n_matches = std::max<size_t>(
      5, static_cast<size_t>(spec.match_fraction *
                             static_cast<double>(n_records) + 0.5));
  WYM_CHECK_LT(n_matches, n_records);

  Rng rng(seed ^ std::hash<std::string>{}(spec.id));
  const size_t catalog_size = std::max<size_t>(64, n_records);
  std::vector<CatalogEntity> catalog =
      GenerateCatalog(spec.domain, catalog_size, &rng);

  Dataset dataset;
  dataset.name = spec.id;
  dataset.schema =
      spec.long_description ? TextualSchema() : DomainSchema(spec.domain);
  const Schema& domain_schema = DomainSchema(spec.domain);

  auto make_view = [&](const CatalogEntity& entity) {
    if (spec.long_description) {
      return MakeTextualView(entity, spec.corruption, &rng);
    }
    Entity base;
    base.values = entity.values;
    return CorruptEntity(base, domain_schema, spec.corruption, &rng);
  };

  // Blocking filter: identity-attribute token Jaccard. Matching pairs
  // whose two views diverge below the threshold are re-drawn: such pairs
  // never make it into a Magellan-style labelled set (the blocker drops
  // them before annotation). Negatives are kept as drawn — the sibling
  // generator already models the confusable pairs that survive blocking.
  auto passes_blocking = [&](const EmRecord& record) {
    if (spec.blocking_threshold <= 0.0) return true;
    const auto lt = strings::SplitWhitespace(record.left.values[0]);
    const auto rt = strings::SplitWhitespace(record.right.values[0]);
    const std::set<std::string> ls(lt.begin(), lt.end());
    const std::set<std::string> rs(rt.begin(), rt.end());
    if (ls.empty() && rs.empty()) return false;
    size_t shared = 0;
    for (const auto& t : ls) shared += rs.count(t);
    const double jaccard =
        static_cast<double>(shared) /
        static_cast<double>(ls.size() + rs.size() - shared);
    return jaccard >= spec.blocking_threshold;
  };

  constexpr size_t kMaxRedraws = 8;
  dataset.records.reserve(n_records);
  for (size_t r = 0; r < n_records; ++r) {
    EmRecord record;
    for (size_t attempt = 0; attempt < kMaxRedraws; ++attempt) {
      if (r < n_matches) {
        // Two independent noisy views of the same entity.
        const CatalogEntity& entity = catalog[rng.Index(catalog.size())];
        record.left = make_view(entity);
        record.right = make_view(entity);
        record.label = 1;
      } else if (rng.Bernoulli(spec.hard_negative_fraction)) {
        // Confusable sibling: same brand/venue/city, different identity.
        const CatalogEntity& entity = catalog[rng.Index(catalog.size())];
        const CatalogEntity sibling = MakeSibling(spec.domain, entity, &rng);
        record.left = make_view(entity);
        record.right = make_view(sibling);
        record.label = 0;
      } else {
        // Random non-match.
        const size_t i = rng.Index(catalog.size());
        size_t j = rng.Index(catalog.size());
        while (j == i) j = rng.Index(catalog.size());
        record.left = make_view(catalog[i]);
        record.right = make_view(catalog[j]);
        record.label = 0;
      }
      if (record.label == 0 || passes_blocking(record)) break;
    }
    dataset.records.push_back(std::move(record));
  }
  rng.Shuffle(&dataset.records);
  return dataset;
}

Dataset GenerateById(const std::string& id, uint64_t seed, double scale) {
  const DatasetSpec* spec = FindSpec(id);
  WYM_CHECK(spec != nullptr) << "unknown dataset id " << id;
  return GenerateDataset(*spec, seed, scale);
}

}  // namespace wym::data
