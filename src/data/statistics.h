#ifndef WYM_DATA_STATISTICS_H_
#define WYM_DATA_STATISTICS_H_

#include <string>
#include <vector>

#include "data/record.h"

/// \file
/// Dataset profiling: per-attribute quality statistics (missing rates,
/// token counts, cross-description token overlap split by label). Used
/// by `wym_cli profile` and useful before training to judge which
/// attributes carry signal — the same statistics the paper reads off
/// Table 2 and Figure 4.

namespace wym::data {

/// Per-attribute profile.
struct AttributeProfile {
  std::string name;
  /// Fraction of records where the value is empty on either side.
  double missing_rate = 0.0;
  /// Mean tokens per (non-empty) value.
  double mean_tokens = 0.0;
  /// Mean token Jaccard between the two descriptions, matching records.
  double match_overlap = 0.0;
  /// Same for non-matching records.
  double non_match_overlap = 0.0;
  /// match_overlap - non_match_overlap: a quick signal-strength proxy.
  double overlap_gap = 0.0;
};

/// Whole-dataset profile.
struct DatasetProfile {
  size_t records = 0;
  size_t matches = 0;
  double match_percent = 0.0;
  std::vector<AttributeProfile> attributes;
};

/// Computes the profile (tokenization follows the pipeline's tokenizer).
DatasetProfile ProfileDataset(const Dataset& dataset);

/// Renders the profile as an aligned text table.
std::string RenderProfile(const DatasetProfile& profile);

}  // namespace wym::data

#endif  // WYM_DATA_STATISTICS_H_
