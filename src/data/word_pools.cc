#include "data/word_pools.h"

#include <array>

namespace wym::data::pools {

namespace {

constexpr std::array<std::string_view, 48> kFirstNames = {
    "james",  "mary",    "robert",  "patricia", "john",    "jennifer",
    "michael", "linda",  "david",   "elizabeth", "william", "barbara",
    "richard", "susan",  "joseph",  "jessica",  "thomas",  "sarah",
    "carlos",  "karen",  "daniel",  "nancy",    "matthew", "lisa",
    "anthony", "betty",  "marco",   "sandra",   "paolo",   "ashley",
    "andrea",  "laura",  "stefan",  "emily",    "wei",     "mei",
    "hiroshi", "yuki",   "rajesh",  "priya",    "olga",    "elena",
    "pierre",  "claire", "hans",    "greta",    "diego",   "lucia"};

constexpr std::array<std::string_view, 48> kLastNames = {
    "smith",    "johnson",  "williams", "brown",    "jones",   "garcia",
    "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson",   "anderson", "thomas",   "taylor",  "moore",
    "jackson",  "martin",   "lee",      "perez",    "thompson", "white",
    "harris",   "sanchez",  "clark",    "ramirez",  "lewis",   "robinson",
    "walker",   "young",    "allen",    "king",     "wright",  "scott",
    "torres",   "nguyen",   "hill",     "flores",   "green",   "adams",
    "nelson",   "baker",    "hall",     "rivera",   "campbell", "mitchell"};

constexpr std::array<std::string_view, 56> kResearchTopics = {
    "query",       "optimization", "database",    "indexing",
    "transaction", "concurrency",  "distributed", "parallel",
    "stream",      "processing",   "mining",      "clustering",
    "classification", "learning",  "neural",      "networks",
    "semantic",    "integration",  "schema",      "matching",
    "entity",      "resolution",   "deduplication", "linkage",
    "knowledge",   "graphs",       "embedding",   "retrieval",
    "ranking",     "recommendation", "privacy",   "security",
    "crowdsourcing", "provenance",  "workflow",   "storage",
    "compression", "sampling",     "approximate", "aggregation",
    "spatial",     "temporal",     "probabilistic", "uncertain",
    "relational",  "nosql",        "benchmark",   "evaluation",
    "scalable",    "efficient",    "adaptive",    "incremental",
    "federated",   "cloud",        "memory",      "hardware"};

constexpr std::array<std::string_view, 20> kResearchQualifiers = {
    "novel",     "effective", "robust",     "practical", "unified",
    "general",   "fast",      "interactive", "automatic", "hybrid",
    "online",    "dynamic",   "flexible",   "modular",   "principled",
    "lightweight", "end-to-end", "holistic", "declarative", "cost-based"};

constexpr std::array<std::string_view, 14> kVenues = {
    "sigmod", "vldb",  "icde",  "edbt",  "kdd",   "cikm",  "www",
    "sigir",  "icml",  "nips",  "aaai",  "acl",   "tkde",  "pods"};

constexpr std::array<std::string_view, 40> kProductCategories = {
    "camera",    "laptop",    "printer",  "monitor",  "keyboard",
    "speaker",   "headphones", "router",  "tablet",   "phone",
    "projector", "scanner",   "microphone", "webcam", "charger",
    "adapter",   "cable",     "battery",  "drive",    "memory",
    "software",  "antivirus", "suite",    "server",   "license",
    "toner",     "cartridge", "lens",     "tripod",   "flash",
    "case",      "bag",       "stand",    "mount",    "dock",
    "hub",       "switch",    "modem",    "console",  "controller"};

constexpr std::array<std::string_view, 24> kProductAdjectives = {
    "digital",  "wireless", "portable", "compact",     "professional",
    "premium",  "ultra",    "slim",     "external",    "internal",
    "optical",  "thermal",  "laser",    "inkjet",      "bluetooth",
    "ergonomic", "gaming",  "business", "home",        "advanced",
    "standard", "deluxe",   "classic",  "rechargeable"};

constexpr std::array<std::string_view, 28> kBrands = {
    "sony",      "canon",   "nikon",    "microsoft", "apple",
    "samsung",   "logitech", "epson",   "brother",   "lenovo",
    "dell",      "asus",    "acer",     "panasonic", "toshiba",
    "philips",   "lg",      "netgear",  "linksys",   "kingston",
    "sandisk",   "seagate", "adobe",    "symantec",  "mcafee",
    "intuit",    "corel",   "belkin"};

constexpr std::array<std::string_view, 10> kProductUnits = {
    "gb", "tb", "mb", "inch", "mp", "ghz", "watt", "dpi", "mah", "pack"};

constexpr std::array<std::string_view, 20> kBeerStyles = {
    "ipa",    "stout",   "porter", "lager",   "pilsner",
    "ale",    "saison",  "wheat",  "dubbel",  "tripel",
    "amber",  "brown",   "pale",   "imperial", "barleywine",
    "kolsch", "bock",    "gose",   "lambic",  "dunkel"};

constexpr std::array<std::string_view, 24> kBeerAdjectives = {
    "hoppy",   "roasted", "golden",  "dark",    "smoked",
    "barrel",  "aged",    "sour",    "crisp",   "velvet",
    "midnight", "harvest", "winter", "summer",  "wild",
    "old",     "double",  "single",  "grand",   "rustic",
    "noble",   "cosmic",  "raging",  "lazy"};

constexpr std::array<std::string_view, 20> kBreweryNouns = {
    "creek",    "mountain", "river",   "valley",  "harbor",
    "anchor",   "eagle",    "fox",     "bear",    "wolf",
    "mill",     "forge",    "stone",   "oak",     "cedar",
    "lighthouse", "prairie", "canyon", "summit",  "meadow"};

constexpr std::array<std::string_view, 28> kSongNouns = {
    "love",   "night",  "heart",  "dream",   "fire",
    "rain",   "summer", "road",   "river",   "sky",
    "dance",  "light",  "shadow", "memory",  "story",
    "ocean",  "city",   "train",  "freedom", "home",
    "moon",   "star",   "wind",   "thunder", "angel",
    "ghost",  "mirror", "echo"};

constexpr std::array<std::string_view, 20> kSongAdjectives = {
    "blue",   "wild",    "broken", "golden", "lonely",
    "sweet",  "crazy",   "silent", "endless", "burning",
    "lost",   "fading",  "bright", "heavy",  "tender",
    "restless", "distant", "hollow", "electric", "velvet"};

constexpr std::array<std::string_view, 14> kGenres = {
    "rock",  "pop",    "jazz",   "blues",   "country", "folk", "metal",
    "indie", "hip-hop", "electronic", "classical", "soul", "reggae", "punk"};

constexpr std::array<std::string_view, 20> kCuisines = {
    "italian",  "french",   "chinese",  "japanese", "mexican",
    "thai",     "indian",   "greek",    "spanish",  "korean",
    "american", "cajun",    "seafood",  "steakhouse", "vegetarian",
    "mediterranean", "vietnamese", "bbq", "fusion", "continental"};

constexpr std::array<std::string_view, 20> kRestaurantNouns = {
    "garden",  "palace",  "kitchen", "bistro",  "grill",
    "tavern",  "corner",  "house",   "table",   "terrace",
    "olive",   "dragon",  "lotus",   "sunset",  "harvest",
    "copper",  "willow",  "saffron", "basil",   "ember"};

constexpr std::array<std::string_view, 24> kCities = {
    "new york",     "los angeles", "chicago",  "houston",  "phoenix",
    "philadelphia", "san antonio", "san diego", "dallas",  "austin",
    "seattle",      "denver",      "boston",   "portland", "atlanta",
    "miami",        "oakland",     "memphis",  "baltimore", "tucson",
    "fresno",       "mesa",        "omaha",    "raleigh"};

constexpr std::array<std::string_view, 20> kStreetNames = {
    "main",    "oak",     "maple",   "cedar",    "pine",
    "elm",     "washington", "lake", "hill",     "park",
    "sunset",  "river",   "church",  "market",   "union",
    "broadway", "highland", "franklin", "jefferson", "madison"};

constexpr std::array<std::string_view, 32> kDescriptionFillers = {
    "features",   "includes",  "designed",  "perfect",   "ideal",
    "quality",    "durable",   "easy",      "use",       "provides",
    "delivers",   "offers",    "built",     "great",     "performance",
    "reliable",   "versatile", "convenient", "stylish",  "powerful",
    "lightweight", "warranty", "compatible", "supports", "technology",
    "innovative", "comfort",   "value",     "everyday",  "superior",
    "enhanced",   "seamless"};

struct AbbreviationEntry {
  std::string_view long_form;
  std::string_view short_form;
};

constexpr std::array<AbbreviationEntry, 30> kAbbreviations = {{
    {"proceedings", "proc"},   {"international", "intl"},
    {"conference", "conf"},    {"journal", "jrnl"},
    {"database", "db"},        {"databases", "dbs"},
    {"management", "mgmt"},    {"system", "sys"},
    {"systems", "sys"},        {"optimization", "optim"},
    {"distributed", "distr"},  {"professional", "pro"},
    {"deluxe", "dlx"},         {"standard", "std"},
    {"wireless", "wless"},     {"external", "ext"},
    {"internal", "int"},       {"exchange", "exch"},
    {"server", "svr"},         {"software", "sw"},
    {"microphone", "mic"},     {"keyboard", "kbd"},
    {"memory", "mem"},         {"battery", "batt"},
    {"department", "dept"},    {"street", "st"},
    {"avenue", "ave"},         {"boulevard", "blvd"},
    {"restaurant", "rest"},    {"imperial", "imp"},
}};

struct VenueLongFormEntry {
  std::string_view venue;
  std::string_view long_form;
};

constexpr std::array<VenueLongFormEntry, 6> kVenueLongForms = {{
    {"vldb", "very large data bases"},
    {"sigmod", "management of data"},
    {"icde", "data engineering"},
    {"edbt", "extending database technology"},
    {"kdd", "knowledge discovery and data mining"},
    {"cikm", "information and knowledge management"},
}};

}  // namespace

std::span<const std::string_view> FirstNames() { return kFirstNames; }
std::span<const std::string_view> LastNames() { return kLastNames; }
std::span<const std::string_view> ResearchTopics() { return kResearchTopics; }
std::span<const std::string_view> ResearchQualifiers() {
  return kResearchQualifiers;
}
std::span<const std::string_view> Venues() { return kVenues; }
std::span<const std::string_view> ProductCategories() {
  return kProductCategories;
}
std::span<const std::string_view> ProductAdjectives() {
  return kProductAdjectives;
}
std::span<const std::string_view> Brands() { return kBrands; }
std::span<const std::string_view> ProductUnits() { return kProductUnits; }
std::span<const std::string_view> BeerStyles() { return kBeerStyles; }
std::span<const std::string_view> BeerAdjectives() { return kBeerAdjectives; }
std::span<const std::string_view> BreweryNouns() { return kBreweryNouns; }
std::span<const std::string_view> SongNouns() { return kSongNouns; }
std::span<const std::string_view> SongAdjectives() { return kSongAdjectives; }
std::span<const std::string_view> Genres() { return kGenres; }
std::span<const std::string_view> Cuisines() { return kCuisines; }
std::span<const std::string_view> RestaurantNouns() {
  return kRestaurantNouns;
}
std::span<const std::string_view> Cities() { return kCities; }
std::span<const std::string_view> StreetNames() { return kStreetNames; }
std::span<const std::string_view> DescriptionFillers() {
  return kDescriptionFillers;
}

std::string_view AbbreviationOf(std::string_view word) {
  for (const auto& entry : kAbbreviations) {
    if (entry.long_form == word) return entry.short_form;
  }
  return {};
}

std::string_view VenueLongForm(std::string_view venue) {
  for (const auto& entry : kVenueLongForms) {
    if (entry.venue == venue) return entry.long_form;
  }
  return {};
}

}  // namespace wym::data::pools
