#include "data/catalog.h"

#include <span>
#include <string_view>

#include "data/word_pools.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wym::data {

namespace {

using pools::Brands;
using pools::Cities;
using pools::Cuisines;
using pools::FirstNames;
using pools::Genres;
using pools::LastNames;
using pools::ProductAdjectives;
using pools::ProductCategories;
using pools::ProductUnits;
using pools::ResearchQualifiers;
using pools::ResearchTopics;
using pools::RestaurantNouns;
using pools::SongAdjectives;
using pools::SongNouns;
using pools::StreetNames;
using pools::Venues;

std::string Pick(std::span<const std::string_view> pool, Rng* rng) {
  WYM_CHECK(!pool.empty());
  return std::string(pool[rng->Index(pool.size())]);
}

std::string PersonName(Rng* rng) {
  return Pick(FirstNames(), rng) + " " + Pick(LastNames(), rng);
}

/// Alphanumeric model / product code, e.g. "dx4520a" — the token shape
/// the paper's error analysis singles out (§5.1.1).
std::string ModelCode(Rng* rng) {
  static constexpr std::string_view kLetters = "abcdefghijklmnopqrstuvwxyz";
  std::string code;
  const size_t n_letters = 1 + rng->Index(3);
  for (size_t i = 0; i < n_letters; ++i) {
    code += kLetters[rng->Index(kLetters.size())];
  }
  const size_t n_digits = 3 + rng->Index(3);
  for (size_t i = 0; i < n_digits; ++i) {
    code += static_cast<char>('0' + rng->Index(10));
  }
  if (rng->Bernoulli(0.4)) code += kLetters[rng->Index(kLetters.size())];
  return code;
}

/// A different code of the same product family: shared letter prefix,
/// fresh digits/suffix (e.g. "dslra200w" -> "dslra467k").
std::string SiblingCode(const std::string& code, Rng* rng) {
  std::string out = code;
  bool changed = false;
  for (char& c : out) {
    if (c >= '0' && c <= '9') {
      const char fresh = static_cast<char>('0' + rng->Index(10));
      changed = changed || fresh != c;
      c = fresh;
    }
  }
  if (!changed && !out.empty()) {
    out.back() = static_cast<char>('a' + rng->Index(26));
  }
  return out;
}

std::string Price(double lo, double hi, Rng* rng) {
  return strings::FormatDouble(rng->Uniform(lo, hi), 2);
}

std::string ResearchTitle(Rng* rng) {
  std::string title = Pick(ResearchQualifiers(), rng);
  const size_t n_words = 3 + rng->Index(4);
  for (size_t i = 0; i < n_words; ++i) {
    title += " " + Pick(ResearchTopics(), rng);
  }
  return title;
}

CatalogEntity BibliographicEntity(Rng* rng) {
  CatalogEntity entity;
  const size_t venue = rng->Index(Venues().size());
  std::string authors = PersonName(rng);
  const size_t extra_authors = rng->Index(3);
  for (size_t i = 0; i < extra_authors; ++i) {
    authors += ", " + PersonName(rng);
  }
  entity.values = {ResearchTitle(rng), authors,
                   std::string(Venues()[venue]),
                   std::to_string(1995 + rng->Index(28))};
  entity.group = venue;
  return entity;
}

CatalogEntity SoftwareEntity(Rng* rng) {
  // Software vendors only (a slice of the brand pool).
  static constexpr std::string_view kVendors[] = {
      "microsoft", "adobe", "symantec", "mcafee", "intuit", "corel", "apple"};
  static constexpr std::string_view kKinds[] = {
      "office",   "antivirus", "studio",  "exchange", "photoshop",
      "quickbooks", "windows", "acrobat", "norton",   "painter"};
  static constexpr std::string_view kEditions[] = {
      "professional", "standard", "deluxe", "premium", "home", "academic"};
  CatalogEntity entity;
  const size_t vendor = rng->Index(std::size(kVendors));
  std::string name = std::string(kKinds[rng->Index(std::size(kKinds))]);
  name += " " + std::string(kKinds[rng->Index(std::size(kKinds))]);
  name += " " + std::to_string(2000 + rng->Index(10));
  name += " " + std::string(kEditions[rng->Index(std::size(kEditions))]);
  // License / SKU code: the identity token.
  std::string code;
  for (int i = 0; i < 8; ++i) code += static_cast<char>('0' + rng->Index(10));
  name += " " + code;
  entity.values = {name, std::string(kVendors[vendor]), Price(20, 900, rng)};
  entity.group = vendor;
  return entity;
}

CatalogEntity ProductEntity(Rng* rng) {
  CatalogEntity entity;
  const size_t brand = rng->Index(Brands().size());
  std::string name = Pick(ProductAdjectives(), rng);
  if (rng->Bernoulli(0.5)) name += " " + Pick(ProductAdjectives(), rng);
  name += " " + Pick(ProductCategories(), rng);
  if (rng->Bernoulli(0.5)) {
    name += " " + std::to_string(1 + rng->Index(64)) + " " +
            Pick(ProductUnits(), rng);
  }
  name += " " + ModelCode(rng);
  entity.values = {name, std::string(Brands()[brand]), Price(5, 1500, rng)};
  entity.group = brand;
  return entity;
}

CatalogEntity BeerEntity(Rng* rng) {
  CatalogEntity entity;
  const size_t brewery = rng->Index(pools::BreweryNouns().size());
  std::string beer = Pick(pools::BeerAdjectives(), rng) + " " +
                     Pick(pools::BeerAdjectives(), rng) + " " +
                     Pick(pools::BeerStyles(), rng);
  std::string factory = std::string(pools::BreweryNouns()[brewery]) +
                        " brewing company";
  entity.values = {beer, factory, Pick(pools::BeerStyles(), rng),
                   strings::FormatDouble(rng->Uniform(4.0, 12.0), 1)};
  entity.group = brewery;
  return entity;
}

CatalogEntity SongEntity(Rng* rng) {
  CatalogEntity entity;
  const size_t artist_seed = rng->Index(LastNames().size());
  std::string artist;
  if (rng->Bernoulli(0.5)) {
    artist = std::string(FirstNames()[rng->Index(FirstNames().size())]) +
             " " + std::string(LastNames()[artist_seed]);
  } else {
    artist = "the " + Pick(SongAdjectives(), rng) + " " +
             Pick(SongNouns(), rng) + "s";
  }
  std::string song = Pick(SongAdjectives(), rng) + " " +
                     Pick(SongNouns(), rng);
  if (rng->Bernoulli(0.3)) song += " " + Pick(SongNouns(), rng);
  std::string album = Pick(SongAdjectives(), rng) + " " +
                      Pick(SongNouns(), rng);
  std::string time = std::to_string(2 + rng->Index(4)) + ":" +
                     std::to_string(10 + rng->Index(50));
  entity.values = {song,
                   artist,
                   album,
                   Pick(Genres(), rng),
                   rng->Bernoulli(0.5) ? "0.99" : "1.29",
                   time};
  entity.group = artist_seed;
  return entity;
}

CatalogEntity RestaurantEntity(Rng* rng) {
  CatalogEntity entity;
  const size_t city = rng->Index(Cities().size());
  std::string name = rng->Bernoulli(0.5)
                         ? Pick(RestaurantNouns(), rng) + " " +
                               Pick(RestaurantNouns(), rng)
                         : "the " + Pick(Cuisines(), rng) + " " +
                               Pick(RestaurantNouns(), rng);
  std::string addr = std::to_string(100 + rng->Index(9900)) + " " +
                     Pick(StreetNames(), rng) +
                     (rng->Bernoulli(0.5) ? " street" : " avenue");
  std::string phone = std::to_string(200 + rng->Index(800)) + "-555-" +
                      std::to_string(1000 + rng->Index(9000));
  entity.values = {name, addr, std::string(Cities()[city]), phone,
                   Pick(Cuisines(), rng)};
  entity.group = city;
  return entity;
}

/// Replaces roughly `fraction` of the whitespace-separated words of
/// `value` with fresh draws from `pool` (keeps word count).
std::string MutateWords(const std::string& value,
                        std::span<const std::string_view> pool,
                        double fraction, Rng* rng) {
  std::vector<std::string> words = strings::SplitWhitespace(value);
  bool changed = false;
  for (auto& word : words) {
    if (rng->Bernoulli(fraction)) {
      word = Pick(pool, rng);
      changed = true;
    }
  }
  if (!changed && !words.empty()) {
    words[rng->Index(words.size())] = Pick(pool, rng);
  }
  return strings::Join(words, " ");
}

}  // namespace

Schema DomainSchema(Domain domain) {
  switch (domain) {
    case Domain::kBibliographic:
      return {{"title", "authors", "venue", "year"}};
    case Domain::kSoftware:
    case Domain::kProduct:
      return {{"name", "manufacturer", "price"}};
    case Domain::kBeer:
      return {{"beer_name", "factory_name", "style", "abv"}};
    case Domain::kSong:
      return {{"song_name", "artist_name", "album_name", "genre", "price",
               "time"}};
    case Domain::kRestaurant:
      return {{"name", "addr", "city", "phone", "type"}};
  }
  WYM_CHECK(false) << "unknown domain";
  return {};
}

size_t IdentityAttribute(Domain domain) {
  // All domain schemas carry identity in attribute 0 (title / name).
  (void)domain;
  return 0;
}

std::vector<CatalogEntity> GenerateCatalog(Domain domain, size_t n,
                                           Rng* rng) {
  std::vector<CatalogEntity> catalog;
  catalog.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (domain) {
      case Domain::kBibliographic:
        catalog.push_back(BibliographicEntity(rng));
        break;
      case Domain::kSoftware:
        catalog.push_back(SoftwareEntity(rng));
        break;
      case Domain::kProduct:
        catalog.push_back(ProductEntity(rng));
        break;
      case Domain::kBeer:
        catalog.push_back(BeerEntity(rng));
        break;
      case Domain::kSong:
        catalog.push_back(SongEntity(rng));
        break;
      case Domain::kRestaurant:
        catalog.push_back(RestaurantEntity(rng));
        break;
    }
  }
  return catalog;
}

CatalogEntity MakeSibling(Domain domain, const CatalogEntity& entity,
                          Rng* rng) {
  CatalogEntity sibling = entity;  // Keeps the group and shared tokens.
  switch (domain) {
    case Domain::kBibliographic: {
      // Same venue, overlapping topic words, different paper.
      sibling.values[0] =
          MutateWords(entity.values[0], ResearchTopics(), 0.45, rng);
      sibling.values[1] = PersonName(rng);
      if (rng->Bernoulli(0.5)) {
        sibling.values[3] = std::to_string(1995 + rng->Index(28));
      }
      break;
    }
    case Domain::kSoftware: {
      // Same vendor; change the SKU digits and an edition word.
      std::vector<std::string> words =
          strings::SplitWhitespace(entity.values[0]);
      for (auto& word : words) {
        if (strings::IsNumeric(word) && word.size() >= 6) {
          // Sibling SKU: keep the leading digits, vary the tail.
          for (size_t i = word.size() / 2; i < word.size(); ++i) {
            word[i] = static_cast<char>('0' + rng->Index(10));
          }
        }
      }
      if (words.size() > 1) {
        static constexpr std::string_view kEditions[] = {
            "professional", "standard", "deluxe", "premium", "home"};
        words[words.size() - 2] =
            std::string(kEditions[rng->Index(std::size(kEditions))]);
      }
      sibling.values[0] = strings::Join(words, " ");
      sibling.values[2] = Price(20, 900, rng);
      break;
    }
    case Domain::kProduct: {
      // Same brand and category family; a *sibling* model code sharing
      // the family prefix ("dslra200w" -> "dslra350k"): the confusable
      // token shape behind the paper's §5.1.1 error analysis.
      std::vector<std::string> words =
          strings::SplitWhitespace(entity.values[0]);
      for (auto& word : words) {
        if (strings::IsAlphanumericCode(word)) word = SiblingCode(word, rng);
      }
      if (!words.empty() && rng->Bernoulli(0.6)) {
        words[0] = Pick(ProductAdjectives(), rng);
      }
      sibling.values[0] = strings::Join(words, " ");
      sibling.values[2] = Price(5, 1500, rng);
      break;
    }
    case Domain::kBeer: {
      sibling.values[0] =
          MutateWords(entity.values[0], pools::BeerAdjectives(), 0.6, rng);
      sibling.values[3] = strings::FormatDouble(rng->Uniform(4.0, 12.0), 1);
      break;
    }
    case Domain::kSong: {
      // Same artist, different song of theirs.
      sibling.values[0] = Pick(SongAdjectives(), rng) + " " +
                          Pick(SongNouns(), rng);
      sibling.values[5] = std::to_string(2 + rng->Index(4)) + ":" +
                          std::to_string(10 + rng->Index(50));
      break;
    }
    case Domain::kRestaurant: {
      // Same city and cuisine, different venue.
      sibling.values[0] =
          MutateWords(entity.values[0], RestaurantNouns(), 0.7, rng);
      sibling.values[1] = std::to_string(100 + rng->Index(9900)) + " " +
                          Pick(StreetNames(), rng) +
                          (rng->Bernoulli(0.5) ? " street" : " avenue");
      sibling.values[3] = std::to_string(200 + rng->Index(800)) + "-555-" +
                          std::to_string(1000 + rng->Index(9000));
      break;
    }
  }
  return sibling;
}

}  // namespace wym::data
