#include "analysis/findings.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace wym::analysis {

Severity SeverityOf(const std::string& check) {
  if (check == "todo-issue") return Severity::kWarning;
  return Severity::kError;
}

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

int Report::StaleCount() const {
  int count = 0;
  for (const lint::Finding& f : findings) {
    if (f.check == "stale-suppression") ++count;
  }
  return count;
}

int Report::ExitCode() const {
  if (StaleCount() > 0) return 6;
  if (!findings.empty()) return 5;
  return 0;
}

void SortFindings(std::vector<lint::Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const lint::Finding& a, const lint::Finding& b) {
              return std::tie(a.path, a.line, a.check, a.message) <
                     std::tie(b.path, b.line, b.check, b.message);
            });
}

std::string RenderText(const Report& report) {
  std::ostringstream os;
  for (const lint::Finding& f : report.findings) {
    os << lint::FormatFinding(f) << "\n";
  }
  if (report.findings.empty()) {
    os << "wym-lint " << report.pass << ": clean (" << report.files_scanned
       << " files, " << report.suppressions_honored
       << " suppressions honored)\n";
  } else {
    os << "wym-lint " << report.pass << ": " << report.findings.size()
       << " finding(s) in " << report.files_scanned << " file(s), "
       << report.suppressions_honored << " suppression(s) honored, "
       << report.StaleCount() << " stale\n";
  }
  return os.str();
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const Report& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"wym-analysis-report/v1\",\n";
  os << "  \"pass\": \"" << EscapeJson(report.pass) << "\",\n";
  os << "  \"files_scanned\": " << report.files_scanned << ",\n";
  os << "  \"suppressions_honored\": " << report.suppressions_honored
     << ",\n";
  os << "  \"stale_suppressions\": " << report.StaleCount() << ",\n";
  os << "  \"exit_code\": " << report.ExitCode() << ",\n";
  os << "  \"findings\": [";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const lint::Finding& f = report.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"path\": \"" << EscapeJson(f.path) << "\", "
       << "\"line\": " << f.line << ", "
       << "\"check\": \"" << EscapeJson(f.check) << "\", "
       << "\"severity\": \"" << SeverityName(SeverityOf(f.check)) << "\", "
       << "\"message\": \"" << EscapeJson(f.message) << "\"}";
  }
  os << (report.findings.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace wym::analysis
