#include "analysis/taint.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace wym::analysis {

namespace {

/// One live nondeterminism source inside a definition body.
struct Seed {
  size_t def = 0;  ///< Index into CallGraph::defs.
  int line = 0;    ///< 1-based seed line.
  std::string what;
};

/// Classifies one code line as a seed. Returns the description, or ""
/// when clean; `*token_check` gets the token-level check id whose
/// suppression also clears this seed ("" when only `allow(taint-flow)`
/// applies).
std::string ClassifySeed(const std::string& code,
                         std::string* token_check) {
  token_check->clear();
  if (lint::HasWord(code, "std::rand") || lint::HasCall(code, "rand") ||
      lint::HasCall(code, "srand") ||
      lint::HasWord(code, "random_device") || lint::HasCall(code, "time")) {
    *token_check = "no-rand";
    return "draws raw randomness (rand/random_device/time)";
  }
  for (const char* clock :
       {"steady_clock", "system_clock", "high_resolution_clock"}) {
    if (lint::HasWord(code, clock)) {
      *token_check = "no-raw-clock";
      return std::string("reads a raw std::chrono clock (") + clock + ")";
    }
  }
  {
    size_t p = code.find("::now");
    while (p != std::string::npos) {
      size_t e = p + 5;
      while (e < code.size() && code[e] == ' ') ++e;
      if (e < code.size() && code[e] == '(') {
        *token_check = "no-raw-clock";
        return "reads a raw clock via ::now()";
      }
      p = code.find("::now", p + 1);
    }
  }
  if (lint::FindWord(code, "for") != std::string::npos &&
      (lint::HasWord(code, "unordered_map") ||
       lint::HasWord(code, "unordered_set"))) {
    *token_check = "unordered-iteration";
    return "iterates a hash container (hash order is nondeterministic)";
  }
  if (lint::HasCall(code, "get_id")) {
    return "reads a thread id";
  }
  if (lint::HasWord(code, "uintptr_t")) {
    return "converts a pointer to an integer (addresses vary per run)";
  }
  return std::string();
}

/// Qualified-name sink patterns: exact names and prefixes.
bool IsSinkName(const std::string& name) {
  if (name == "Fit" || name == "SaveToFile") return true;
  for (const char* prefix : {"Predict", "Explain", "Save", "Serialize"}) {
    if (strings::StartsWith(name, prefix)) return true;
  }
  return false;
}

}  // namespace

bool IsTaintSink(const FunctionDef& def, const std::string& path) {
  if (!strings::StartsWith(path, "src/")) return false;
  // The serving layer adds the response-serialization path to the
  // bit-identical promise: what goes on the wire for a given Response
  // value must be a pure function of that value, so no clock,
  // randomness, or hash-order source may reach the Render* functions
  // of src/serve (protocol serializers).
  if (strings::StartsWith(path, "src/serve/") &&
      strings::StartsWith(def.Name(), "Render")) {
    return true;
  }
  // Telemetry artifacts carry the same promise: a journal line,
  // flight-recorder dump, or telemetry export must be a pure function
  // of the record/window values it serializes (the injectable clock is
  // the only time source), so the src/obs Render*/Dump* entry points
  // are sinks too.
  if (strings::StartsWith(path, "src/obs/") &&
      (strings::StartsWith(def.Name(), "Render") ||
       strings::StartsWith(def.Name(), "Dump"))) {
    return true;
  }
  return IsSinkName(def.Name());
}

Report RunTaintPass(const SourceTree& tree) {
  Report report;
  report.pass = "taint";
  report.files_scanned = static_cast<int>(tree.files.size());

  const CallGraph graph = BuildCallGraph(tree);

  // --- Seed, honoring suppressions at the seed line. ---
  std::vector<Seed> seeds;
  // (file index, marker line) of every allow(taint-flow) marker that
  // cleared a seed; anything left over is stale. Markers of *token*
  // checks that clear a seed are honored here too, but their stale
  // accounting belongs to the lint pass.
  std::set<std::pair<size_t, int>> used_taint_markers;
  for (size_t d = 0; d < graph.defs.size(); ++d) {
    const FunctionDef& def = graph.defs[d];
    const SourceFile& file = tree.files[def.file];
    if (strings::StartsWith(file.path, "src/util/")) continue;
    for (int line = def.body_begin; line <= def.body_end; ++line) {
      const size_t i = static_cast<size_t>(line - 1);
      if (i >= file.lines.size() || file.lines[i].preprocessor) continue;
      std::string token_check;
      const std::string what = ClassifySeed(file.lines[i].code,
                                            &token_check);
      if (what.empty()) continue;
      const lint::SuppressionMarker* marker =
          FindSuppression(file, "taint-flow", line);
      if (marker == nullptr && !token_check.empty()) {
        marker = FindSuppression(file, token_check, line);
      }
      if (marker != nullptr) {
        if (marker->check == "taint-flow") {
          used_taint_markers.insert({def.file, marker->line});
        }
        ++report.suppressions_honored;
        continue;
      }
      seeds.push_back(Seed{d, line, what});
    }
  }

  // --- Propagate: shortest chain from each sink to a seeded callee. ---
  std::map<size_t, const Seed*> seeded_defs;
  for (const Seed& seed : seeds) {
    if (seeded_defs.count(seed.def) == 0) seeded_defs[seed.def] = &seed;
  }
  for (size_t d = 0; d < graph.defs.size(); ++d) {
    const FunctionDef& sink = graph.defs[d];
    const std::string& sink_path = tree.files[sink.file].path;
    if (!IsTaintSink(sink, sink_path)) continue;
    // BFS over callees. Parent links reconstruct the chain; visiting in
    // ascending def order per level keeps it deterministic.
    std::map<size_t, size_t> parent;
    std::deque<size_t> queue{d};
    std::set<size_t> visited{d};
    size_t hit = SourceTree::npos;
    while (!queue.empty() && hit == SourceTree::npos) {
      const size_t at = queue.front();
      queue.pop_front();
      if (seeded_defs.count(at) != 0) {
        hit = at;
        break;
      }
      for (const size_t callee : graph.CalleesOf(at)) {
        if (!visited.insert(callee).second) continue;
        parent[callee] = at;
        queue.push_back(callee);
      }
    }
    if (hit == SourceTree::npos) continue;
    std::vector<size_t> chain{hit};
    while (chain.back() != d) chain.push_back(parent[chain.back()]);
    std::reverse(chain.begin(), chain.end());
    const Seed& seed = *seeded_defs[hit];
    std::string chain_text;
    for (const size_t step : chain) {
      if (!chain_text.empty()) chain_text += " -> ";
      chain_text += graph.defs[step].qualified_name;
    }
    report.findings.push_back(lint::Finding{
        sink_path, sink.line, "taint-flow",
        "nondeterminism reaches entry point '" + sink.qualified_name +
            "': " + chain_text + "; " +
            graph.defs[seed.def].qualified_name + " (" +
            tree.files[graph.defs[seed.def].file].path + ":" +
            std::to_string(seed.line) + ") " + seed.what +
            "; make the source deterministic or add a reasoned "
            "wym-lint: allow(taint-flow) at the seed line"});
  }

  // --- Stale allow(taint-flow) markers. ---
  for (size_t f = 0; f < tree.files.size(); ++f) {
    for (const lint::SuppressionMarker& marker : tree.files[f].suppressions) {
      if (marker.check != "taint-flow") continue;
      if (used_taint_markers.count({f, marker.line}) != 0) continue;
      report.findings.push_back(lint::Finding{
          tree.files[f].path, marker.line, "stale-suppression",
          "allow(taint-flow) cleared no nondeterminism seed on this or "
          "the next line; delete the stale suppression (it belongs at "
          "the seed, not the sink)"});
    }
  }

  SortFindings(&report.findings);
  return report;
}

}  // namespace wym::analysis
