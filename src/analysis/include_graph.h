#ifndef WYM_ANALYSIS_INCLUDE_GRAPH_H_
#define WYM_ANALYSIS_INCLUDE_GRAPH_H_

#include <string>
#include <vector>

#include "analysis/findings.h"
#include "analysis/source_model.h"

/// \file
/// Include-graph extractor and architecture checks (`wym_lint graph`).
///
/// Edges are quoted `#include "..."` directives resolved against the
/// scanned tree (includer-relative first, then `src/`-relative, then
/// repo-root-relative — mirroring the build's `-I src` plus the
/// compiler's includer-directory rule). Unresolved includes (system and
/// third-party headers) are ignored. Two checks run over the graph:
///
///  * `layer-order`: every edge must point sideways or downward in the
///    declared layer DAG (see `LayerOf`). An upward include is an
///    architecture violation reported at the `#include` line; a
///    sanctioned exception carries a reasoned `allow(layer-order)`
///    marker on that line.
///  * `include-cycle`: the file-level include graph must be acyclic.
///    Every strongly-connected component with more than one file (or a
///    self-include) is reported once, at its lexicographically smallest
///    member, with the full cycle path in the message.

namespace wym::analysis {

/// One resolved include edge.
struct IncludeEdge {
  size_t from = 0;  ///< Index into SourceTree::files.
  size_t to = 0;    ///< Index into SourceTree::files.
  int line = 0;     ///< 1-based line of the #include directive.
};

struct IncludeGraph {
  /// All resolved edges, in (file, line) order.
  std::vector<IncludeEdge> edges;
};

/// The layer rank of a repo-relative path in the declared DAG, bottom
/// (0) to top; `kLayerUnknown` for paths outside the declared layout.
///
///   0  src/util
///   1  src/obs
///   2  src/text, src/la, src/analysis
///   3  src/data, src/embedding, src/ml, src/nn, src/matching
///   4  src/core
///   5  src/blocking, src/explain, src/baselines, src/serve
///   6  tools, bench, tests, examples
///
/// Note one deliberate divergence from a naive reading of the module
/// list: `src/matching` (stable marriage) is an algorithm library that
/// depends only on `la`/`util` and is *consumed by* `core`, so it sits
/// in the algorithms tier below core, not beside blocking/explain.
int LayerOf(const std::string& path);

inline constexpr int kLayerUnknown = -1;

/// Human-readable name of the layer containing `path` ("src/core",
/// "tools/bench/tests/examples", ...), for messages.
std::string LayerName(int layer);

/// Extracts the resolved include graph of `tree`.
IncludeGraph BuildIncludeGraph(const SourceTree& tree);

/// Runs the `layer-order` check. Honors `allow(layer-order)` markers on
/// the include line (counting them in `*suppressions_honored` when
/// non-null) and reports stale ones under `stale-suppression`.
std::vector<lint::Finding> CheckLayering(const SourceTree& tree,
                                         const IncludeGraph& graph,
                                         int* suppressions_honored);

/// Runs the `include-cycle` check (no suppression: an include cycle is
/// never sanctioned — break it instead; an `allow(include-cycle)`
/// marker is therefore stale by definition and reported as such).
std::vector<lint::Finding> CheckCycles(const SourceTree& tree,
                                       const IncludeGraph& graph);

/// The whole `wym_lint graph` pass: build graph, run both checks,
/// account for this pass's suppressions (used and stale), sort.
/// Malformed markers are NOT re-reported here — the token lint pass
/// owns those findings.
Report RunGraphPass(const SourceTree& tree);

}  // namespace wym::analysis

#endif  // WYM_ANALYSIS_INCLUDE_GRAPH_H_
