#include "analysis/source_model.h"

#include <algorithm>

namespace wym::analysis {

void SourceTree::Add(const std::string& path, const std::string& text) {
  SourceFile file;
  file.path = path;
  file.text = text;
  file.lines = lint::LexLines(text);
  file.suppressions =
      lint::CollectSuppressionMarkers(path, file.lines, &file.marker_findings);
  const auto at = std::lower_bound(
      files.begin(), files.end(), path,
      [](const SourceFile& f, const std::string& p) { return f.path < p; });
  files.insert(at, std::move(file));
}

size_t SourceTree::IndexOf(const std::string& path) const {
  const auto at = std::lower_bound(
      files.begin(), files.end(), path,
      [](const SourceFile& f, const std::string& p) { return f.path < p; });
  if (at == files.end() || at->path != path) return npos;
  return static_cast<size_t>(at - files.begin());
}

const lint::SuppressionMarker* FindSuppression(const SourceFile& file,
                                               const std::string& check,
                                               int line) {
  for (const lint::SuppressionMarker& marker : file.suppressions) {
    if (marker.check != check) continue;
    if (marker.line == line || marker.line + 1 == line) return &marker;
  }
  return nullptr;
}

}  // namespace wym::analysis
