#ifndef WYM_ANALYSIS_SOURCE_MODEL_H_
#define WYM_ANALYSIS_SOURCE_MODEL_H_

#include <string>
#include <vector>

#include "util/source_scan.h"

/// \file
/// In-memory model of the repository's source text for the cross-TU
/// analyzers (`wym_lint graph` / `wym_lint taint`, DESIGN.md "Static
/// analysis v2"). A `SourceTree` is just the scanned files in sorted
/// path order, each pre-lexed once with the `wym::lint` lexer and its
/// suppression markers pre-parsed — so the include-graph, call-graph
/// and taint passes share one lexing pass and so tests can assemble
/// fixture trees from string literals without touching a filesystem.

namespace wym::analysis {

/// One scanned file: repo-relative '/'-separated path, raw text, and
/// the derived per-line views the passes consume.
struct SourceFile {
  std::string path;
  std::string text;
  std::vector<lint::LexedLine> lines;
  std::vector<lint::SuppressionMarker> suppressions;
  /// Malformed-marker findings surfaced during parsing. The token lint
  /// pass owns reporting these (ScanSource re-derives them); they are
  /// kept here so fixture tests can assert a broken marker never lands
  /// in `suppressions` — fail-safe: it suppresses nothing.
  std::vector<lint::Finding> marker_findings;
};

/// The scanned tree. Files are kept sorted by path so every pass
/// iterates — and therefore reports — in one deterministic order
/// regardless of how the files were discovered.
struct SourceTree {
  std::vector<SourceFile> files;

  /// Lexes `text` and appends it under `path`. Keeps `files` sorted.
  void Add(const std::string& path, const std::string& text);

  /// Index of `path` in `files`, or npos.
  size_t IndexOf(const std::string& path) const;

  static constexpr size_t npos = static_cast<size_t>(-1);
};

/// True when a marker for `check` sits on `line` or the line directly
/// above it — the same two-line coverage rule the token-level scanner
/// applies (a standalone marker comment excuses the line below it).
const lint::SuppressionMarker* FindSuppression(const SourceFile& file,
                                               const std::string& check,
                                               int line);

}  // namespace wym::analysis

#endif  // WYM_ANALYSIS_SOURCE_MODEL_H_
