#ifndef WYM_ANALYSIS_CALL_GRAPH_H_
#define WYM_ANALYSIS_CALL_GRAPH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/source_model.h"

/// \file
/// Approximate cross-TU call graph recovered from the token stream
/// (`wym_lint taint`'s substrate). Like the rest of wym-lint this is
/// lexical, not semantic: no templates are instantiated, no overloads
/// are resolved, no macros are expanded. The recovery rules:
///
///  * A **definition** is an identifier sequence (`name` or
///    `Class::name`) directly followed by a balanced parameter list and
///    a `{` body at namespace/class scope. Namespace and class scopes
///    are tracked through the brace structure, so out-of-line members
///    and nested-namespace definitions get their full qualified name
///    (`wym::core::WymModel::Fit`).
///  * A **call site** is an identifier followed by `(` inside a
///    definition's body (excluding control-flow keywords).
///  * **Resolution** over-approximates real name lookup: qualified
///    calls match definitions by qualifier suffix; plain calls walk the
///    caller's enclosing scopes, then fall back to same-file and then
///    same-domain (src|tools|tests|bench|examples) name matches; member
///    calls (`x.Foo(...)`) match every same-domain definition of `Foo`.
///    Over-approximation is the right failure mode for a taint pass:
///    a spurious edge can only make the analysis more conservative.
///
/// Anything unresolved (std::, macros, external libraries) simply has
/// no edge. Everything is processed in sorted file order, so the graph
/// — and every diagnostic derived from it — is deterministic.

namespace wym::analysis {

/// One recovered function definition.
struct FunctionDef {
  std::string qualified_name;  ///< Scope-joined, e.g. "wym::la::Dot".
  size_t file = 0;             ///< Index into SourceTree::files.
  int line = 0;                ///< 1-based line of the signature.
  int body_begin = 0;          ///< 1-based line of the opening '{'.
  int body_end = 0;            ///< 1-based line of the closing '}'.

  /// Last '::' component ("Fit" for "wym::core::WymModel::Fit").
  std::string Name() const;
};

/// One resolved call edge.
struct CallEdge {
  size_t caller = 0;  ///< Index into CallGraph::defs.
  size_t callee = 0;  ///< Index into CallGraph::defs.
  int line = 0;       ///< 1-based call-site line.
};

struct CallGraph {
  std::vector<FunctionDef> defs;
  /// Sorted by (caller, callee, line), deduplicated per (caller,
  /// callee) pair keeping the first line.
  std::vector<CallEdge> edges;
  /// defs indices by unqualified name, for the passes' own lookups.
  std::map<std::string, std::vector<size_t>> by_name;

  /// Callee def indices of `def`, sorted ascending (deduplicated).
  std::vector<size_t> CalleesOf(size_t def) const;
};

/// Builds the call graph for the whole tree.
CallGraph BuildCallGraph(const SourceTree& tree);

/// The coarse ownership domain used as the resolution fallback
/// boundary: "src", "tools", "tests", "bench", "examples" or "" when
/// the path matches none.
std::string DomainOf(const std::string& path);

}  // namespace wym::analysis

#endif  // WYM_ANALYSIS_CALL_GRAPH_H_
