#ifndef WYM_ANALYSIS_TAINT_H_
#define WYM_ANALYSIS_TAINT_H_

#include <string>

#include "analysis/call_graph.h"
#include "analysis/findings.h"
#include "analysis/source_model.h"

/// \file
/// Determinism taint pass (`wym_lint taint`). The repo's north-star
/// guarantee is bit-identical artifacts and explanations; the token
/// lint enforces that per line, this pass enforces it per *flow*:
///
///  * **Seeds** are nondeterminism sources found in function bodies —
///    raw randomness (`rand`, `std::random_device`, `time()`), raw
///    clocks (`std::chrono` clock types, `::now()`), hash-container
///    iteration in a `for`, thread ids (`get_id`) and pointer-as-key
///    arithmetic (`uintptr_t`). `src/util/` is exempt: it is the
///    sanctioned home of the deterministic wrappers (`wym::Rng`,
///    `util::Stopwatch`) whose internals must touch the raw sources.
///  * **Sinks** are the entry points whose output is promised
///    bit-identical: `src/` definitions named `Fit`, `SaveToFile`,
///    `Predict*`, `Explain*`, `Save*` or `Serialize*`; plus, in
///    `src/serve/`, the `Render*` protocol serializers — the wire
///    bytes of a response must be a pure function of its value.
///  * Taint propagates from callees to callers along the approximate
///    call graph. A sink whose transitive callees include a live seed
///    is a `taint-flow` finding, reported at the sink's definition with
///    the shortest call chain in the message.
///
/// A seed is cleared by a reasoned `allow(taint-flow)` marker on the
/// seed line (or the line above), or by the marker of the
/// corresponding token check (`no-rand`, `no-raw-clock`,
/// `unordered-iteration`) — one reasoned exemption should not need
/// restating for two passes. An `allow(taint-flow)` marker that clears
/// no seed is reported under `stale-suppression` (exit 6): suppressions
/// live at the source of nondeterminism, not at the sink.

namespace wym::analysis {

/// True when `def` (defined in the file at `path`) is a determinism
/// sink: a `src/` model-serialization or predict/explain entry point.
bool IsTaintSink(const FunctionDef& def, const std::string& path);

/// The whole `wym_lint taint` pass: build the call graph, seed, clear
/// suppressed seeds, propagate, report tainted sinks and stale
/// `allow(taint-flow)` markers, sort. Deterministic: same tree in,
/// byte-identical report out.
Report RunTaintPass(const SourceTree& tree);

}  // namespace wym::analysis

#endif  // WYM_ANALYSIS_TAINT_H_
