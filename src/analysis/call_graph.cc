#include "analysis/call_graph.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "util/string_util.h"

namespace wym::analysis {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

struct Token {
  std::string text;
  int line = 0;  ///< 1-based.
  bool ident = false;
};

/// Tokenizes the code views of all non-preprocessor lines. Identifiers
/// and numbers become ident/number tokens; `::` and `->` stay joined;
/// every other non-space character is its own token. Preprocessor lines
/// are skipped entirely (macro bodies are not code the compiler sees at
/// the definition site).
std::vector<Token> Tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  for (size_t i = 0; i < file.lines.size(); ++i) {
    if (file.lines[i].preprocessor) continue;
    const std::string& code = file.lines[i].code;
    const int line = static_cast<int>(i + 1);
    size_t k = 0;
    while (k < code.size()) {
      const char c = code[k];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++k;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t e = k;
        while (e < code.size() && IsIdentChar(code[e])) ++e;
        tokens.push_back(Token{code.substr(k, e - k), line, true});
        k = e;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t e = k;
        while (e < code.size() &&
               (IsIdentChar(code[e]) || code[e] == '\'' || code[e] == '.')) {
          ++e;
        }
        tokens.push_back(Token{code.substr(k, e - k), line, false});
        k = e;
        continue;
      }
      if (c == ':' && k + 1 < code.size() && code[k + 1] == ':') {
        tokens.push_back(Token{"::", line, false});
        k += 2;
        continue;
      }
      if (c == '-' && k + 1 < code.size() && code[k + 1] == '>') {
        tokens.push_back(Token{"->", line, false});
        k += 2;
        continue;
      }
      tokens.push_back(Token{std::string(1, c), line, false});
      ++k;
    }
  }
  return tokens;
}

bool IsControlKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",   "switch", "return", "sizeof",
      "alignof", "decltype", "catch",  "throw",  "new",    "delete",
      "static_assert", "defined", "alignas", "noexcept", "assert",
  };
  return kKeywords.count(text) != 0;
}

/// Index of the token after the balanced group opened at `open`
/// (tokens[open] must be the opener). Returns tokens.size() when
/// unbalanced.
size_t SkipBalanced(const std::vector<Token>& tokens, size_t open,
                    const char* opener, const char* closer) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == opener) ++depth;
    if (tokens[i].text == closer && --depth == 0) return i + 1;
  }
  return tokens.size();
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kPlain };
  Kind kind = Kind::kPlain;
  std::string name;     ///< Empty for plain blocks / anonymous namespaces.
  size_t def_index = 0; ///< For kFunction: the FunctionDef being built.
};

struct PendingCall {
  size_t def_index;
  std::string name;  ///< "Foo" or "A::B::Foo" as written.
  bool member = false;
  int line = 0;
};

/// Parses one file's token stream: recovers definitions and raw call
/// sites (resolution happens later, across files).
void ParseFile(const SourceTree& tree, size_t file_index,
               std::vector<FunctionDef>* defs,
               std::vector<PendingCall>* calls) {
  const SourceFile& file = tree.files[file_index];
  const std::vector<Token> tokens = Tokenize(file);
  std::vector<Scope> scopes;

  const auto in_function = [&]() {
    for (const Scope& scope : scopes) {
      if (scope.kind == Scope::Kind::kFunction) return true;
    }
    return false;
  };
  const auto innermost_function = [&]() -> size_t {
    for (size_t i = scopes.size(); i-- > 0;) {
      if (scopes[i].kind == Scope::Kind::kFunction) {
        return scopes[i].def_index;
      }
    }
    return 0;  // Unreachable when in_function().
  };
  const auto scope_prefix = [&]() {
    std::string prefix;
    for (const Scope& scope : scopes) {
      if (scope.name.empty()) continue;
      if (!prefix.empty()) prefix += "::";
      prefix += scope.name;
    }
    return prefix;
  };

  // Collects the identifier sequence `A::B::name` ending at `i`
  // (inclusive); returns its first token index and writes the joined
  // text.
  const auto qualified_at = [&](size_t i, std::string* text) {
    size_t begin = i;
    *text = tokens[i].text;
    while (begin >= 2 && tokens[begin - 1].text == "::" &&
           tokens[begin - 2].ident) {
      begin -= 2;
      *text = tokens[begin].text + "::" + *text;
    }
    return begin;
  };

  size_t i = 0;
  while (i < tokens.size()) {
    const Token& token = tokens[i];

    if (token.text == "}") {
      if (!scopes.empty()) {
        if (scopes.back().kind == Scope::Kind::kFunction) {
          (*defs)[scopes.back().def_index].body_end = token.line;
        }
        scopes.pop_back();
      }
      ++i;
      continue;
    }

    if (in_function()) {
      if (token.text == "{") {
        scopes.push_back(Scope{Scope::Kind::kPlain, "", 0});
        ++i;
        continue;
      }
      if (token.ident && i + 1 < tokens.size() &&
          tokens[i + 1].text == "(" && !IsControlKeyword(token.text)) {
        std::string name;
        const size_t begin = qualified_at(i, &name);
        const bool member =
            begin >= 1 && (tokens[begin - 1].text == "." ||
                           tokens[begin - 1].text == "->");
        calls->push_back(
            PendingCall{innermost_function(), name, member, token.line});
      }
      ++i;
      continue;
    }

    // --- namespace / class / global scope ---

    if (token.text == "{") {
      scopes.push_back(Scope{Scope::Kind::kPlain, "", 0});
      ++i;
      continue;
    }

    if (token.text == "namespace") {
      // `namespace A::B {`, `namespace {`, or an alias `namespace X =`.
      std::string name;
      size_t j = i + 1;
      while (j < tokens.size() && tokens[j].ident) {
        if (!name.empty()) name += "::";
        name += tokens[j].text;
        ++j;
        if (j < tokens.size() && tokens[j].text == "::") ++j;
      }
      if (j < tokens.size() && tokens[j].text == "{") {
        scopes.push_back(Scope{Scope::Kind::kNamespace, name, 0});
        i = j + 1;
      } else {
        ++i;  // Alias or using-directive; no scope opens here.
      }
      continue;
    }

    if ((token.text == "class" || token.text == "struct") &&
        !(i > 0 && tokens[i - 1].text == "enum")) {
      // Find the tag name, then whether a body opens before the next ';'.
      std::string name;
      size_t j = i + 1;
      if (j < tokens.size() && tokens[j].ident) {
        name = tokens[j].text;
        ++j;
      }
      while (j < tokens.size() && tokens[j].text != "{" &&
             tokens[j].text != ";") {
        ++j;
      }
      if (j < tokens.size() && tokens[j].text == "{") {
        scopes.push_back(Scope{Scope::Kind::kClass, name, 0});
        i = j + 1;
      } else {
        i = j;  // Forward declaration.
      }
      continue;
    }

    if (token.ident && !IsControlKeyword(token.text)) {
      // Candidate definition head: `name (...)` or `A::B::name (...)`.
      std::string name;
      qualified_at(i, &name);
      size_t j = i + 1;
      while (j < tokens.size() && tokens[j].text == "::" &&
             j + 1 < tokens.size() && tokens[j + 1].ident) {
        name += "::" + tokens[j + 1].text;
        j += 2;
      }
      if (j >= tokens.size() || tokens[j].text != "(") {
        ++i;
        continue;
      }
      const int def_line = tokens[i].line;
      size_t k = SkipBalanced(tokens, j, "(", ")");
      // Trailer: cv/ref qualifiers, noexcept(...), override/final,
      // trailing return type, constructor initializer list.
      bool is_def = false;
      while (k < tokens.size()) {
        const std::string& t = tokens[k].text;
        if (t == "{") {
          is_def = true;
          break;
        }
        if (t == ";" || t == "=" || t == "," || t == ")") break;
        if (t == ":") {
          // Constructor initializer list: `: member(init), base{init} {`.
          ++k;
          while (k < tokens.size()) {
            while (k < tokens.size() && (tokens[k].ident ||
                                         tokens[k].text == "::")) {
              ++k;
            }
            if (k < tokens.size() && tokens[k].text == "<") {
              k = SkipBalanced(tokens, k, "<", ">");
            }
            if (k >= tokens.size()) break;
            if (tokens[k].text == "(") {
              k = SkipBalanced(tokens, k, "(", ")");
            } else if (tokens[k].text == "{") {
              k = SkipBalanced(tokens, k, "{", "}");
            } else {
              break;
            }
            if (k < tokens.size() && tokens[k].text == ",") {
              ++k;
              continue;
            }
            break;
          }
          if (k < tokens.size() && tokens[k].text == "{") {
            is_def = true;
          }
          break;
        }
        if (t == "noexcept" && k + 1 < tokens.size() &&
            tokens[k + 1].text == "(") {
          k = SkipBalanced(tokens, k + 1, "(", ")");
          continue;
        }
        ++k;
      }
      if (!is_def) {
        ++i;
        continue;
      }
      FunctionDef def;
      const std::string prefix = scope_prefix();
      def.qualified_name = prefix.empty() ? name : prefix + "::" + name;
      def.file = file_index;
      def.line = def_line;
      def.body_begin = tokens[k].line;
      def.body_end = tokens[k].line;  // Fixed when the scope closes.
      defs->push_back(def);
      scopes.push_back(
          Scope{Scope::Kind::kFunction, "", defs->size() - 1});
      i = k + 1;
      continue;
    }

    ++i;
  }
  // Unbalanced file (shouldn't happen on real code): close any dangling
  // function extents at the last line.
  for (const Scope& scope : scopes) {
    if (scope.kind == Scope::Kind::kFunction &&
        (*defs)[scope.def_index].body_end <
            (*defs)[scope.def_index].body_begin) {
      (*defs)[scope.def_index].body_end =
          static_cast<int>(file.lines.size());
    }
  }
}

/// True when `qualified` ends with `suffix` at a '::' component
/// boundary ("wym::la::kernels::Dot" ends with "kernels::Dot" but not
/// with "els::Dot").
bool EndsWithComponents(const std::string& qualified,
                        const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size()) return false;
  if (!strings::EndsWith(qualified, suffix)) return false;
  const size_t at = qualified.size() - suffix.size();
  return at >= 2 && qualified.compare(at - 2, 2, "::") == 0;
}

}  // namespace

std::string FunctionDef::Name() const {
  const size_t sep = qualified_name.rfind("::");
  return sep == std::string::npos ? qualified_name
                                  : qualified_name.substr(sep + 2);
}

std::string DomainOf(const std::string& path) {
  for (const char* domain : {"src", "tools", "tests", "bench", "examples"}) {
    if (strings::StartsWith(path, std::string(domain) + "/")) return domain;
  }
  return "";
}

std::vector<size_t> CallGraph::CalleesOf(size_t def) const {
  std::vector<size_t> out;
  for (const CallEdge& edge : edges) {
    if (edge.caller == def) out.push_back(edge.callee);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CallGraph BuildCallGraph(const SourceTree& tree) {
  CallGraph graph;
  std::vector<PendingCall> calls;
  for (size_t f = 0; f < tree.files.size(); ++f) {
    ParseFile(tree, f, &graph.defs, &calls);
  }
  for (size_t d = 0; d < graph.defs.size(); ++d) {
    graph.by_name[graph.defs[d].Name()].push_back(d);
  }

  // Resolution. Candidate tiers, first non-empty wins:
  //   qualified call:  definitions whose qualified name ends with the
  //                    written qualifier chain (component-aligned).
  //   plain call:      caller-scope walk (wym::core::Foo, wym::Foo,
  //                    Foo), narrowed to the caller's file when that
  //                    subset is non-empty; then same-file name match;
  //                    then same-domain name match.
  //   member call:     same-domain name match (receiver types are
  //                    unknown, so every definition of the method in
  //                    the caller's domain is a possible callee).
  std::set<std::pair<size_t, size_t>> edge_set;
  for (const PendingCall& call : calls) {
    const FunctionDef& caller = graph.defs[call.def_index];
    const std::string caller_path = tree.files[caller.file].path;
    const std::string caller_domain = DomainOf(caller_path);
    const size_t sep = call.name.rfind("::");
    const std::string last =
        sep == std::string::npos ? call.name : call.name.substr(sep + 2);
    const auto named = graph.by_name.find(last);
    if (named == graph.by_name.end()) continue;

    std::vector<size_t> resolved;
    if (sep != std::string::npos) {
      for (const size_t d : named->second) {
        if (EndsWithComponents(graph.defs[d].qualified_name, call.name)) {
          resolved.push_back(d);
        }
      }
    } else if (!call.member) {
      // Scope walk: strip trailing components off the caller's own
      // qualified name (its innermost scopes first).
      std::string scope = caller.qualified_name;
      while (resolved.empty()) {
        const size_t cut = scope.rfind("::");
        scope = cut == std::string::npos ? "" : scope.substr(0, cut);
        const std::string want =
            scope.empty() ? last : scope + "::" + last;
        for (const size_t d : named->second) {
          if (graph.defs[d].qualified_name == want) resolved.push_back(d);
        }
        if (scope.empty()) break;
      }
      if (!resolved.empty()) {
        std::vector<size_t> same_file;
        for (const size_t d : resolved) {
          if (graph.defs[d].file == caller.file) same_file.push_back(d);
        }
        if (!same_file.empty()) resolved = std::move(same_file);
      }
      if (resolved.empty()) {
        for (const size_t d : named->second) {
          if (graph.defs[d].file == caller.file) resolved.push_back(d);
        }
      }
    }
    if (resolved.empty()) {
      // Domain-wide fallback (and the member-call rule).
      for (const size_t d : named->second) {
        if (DomainOf(tree.files[graph.defs[d].file].path) ==
            caller_domain) {
          resolved.push_back(d);
        }
      }
    }
    for (const size_t callee : resolved) {
      if (callee == call.def_index) continue;  // Self-recursion: no edge.
      if (edge_set.insert({call.def_index, callee}).second) {
        graph.edges.push_back(
            CallEdge{call.def_index, callee, call.line});
      }
    }
  }
  std::sort(graph.edges.begin(), graph.edges.end(),
            [](const CallEdge& a, const CallEdge& b) {
              if (a.caller != b.caller) return a.caller < b.caller;
              if (a.callee != b.callee) return a.callee < b.callee;
              return a.line < b.line;
            });
  return graph;
}

}  // namespace wym::analysis
