#ifndef WYM_ANALYSIS_FINDINGS_H_
#define WYM_ANALYSIS_FINDINGS_H_

#include <string>
#include <vector>

#include "util/source_scan.h"

/// \file
/// The findings model shared by every `wym_lint` pass (token lint,
/// include-graph, taint). One pass produces one `Report`: its findings
/// in a deterministic order, the suppression accounting, and a stale
/// count. The drivers render a report as text or as schema-stable JSON
/// (`wym-analysis-report/v1`, parseable by `obs::json`) and map it to
/// the shared exit-code contract:
///
///   0  clean
///   5  unsuppressed findings
///   6  stale suppressions (a marker that excuses nothing)
///
/// Stale wins over findings: a stale marker means the suppression
/// inventory itself is wrong, which gates harder than any one finding.

namespace wym::analysis {

/// Severity attached to a check id in the machine-readable output.
/// Every finding fails the gate regardless; severity tells a consumer
/// what kind of contract broke.
enum class Severity { kError, kWarning };

/// Severity for `check`: hygiene checks (todo-issue) are warnings,
/// everything else — determinism, safety, layering, taint, suppression
/// accounting — is an error.
Severity SeverityOf(const std::string& check);

const char* SeverityName(Severity severity);

/// One pass's complete result.
struct Report {
  /// Pass id: "lint", "graph" or "taint".
  std::string pass;
  std::vector<lint::Finding> findings;
  int files_scanned = 0;
  int suppressions_honored = 0;

  /// Number of findings with check == "stale-suppression".
  int StaleCount() const;
  /// 0 / 5 / 6 per the contract above.
  int ExitCode() const;
};

/// Sorts findings by (path, line, check, message) — the one order every
/// renderer uses, so two runs over the same tree are byte-identical.
void SortFindings(std::vector<lint::Finding>* findings);

/// Text rendering: one `path:line: [check] message` per finding plus
/// the one-line summary the ctest gates grep for.
std::string RenderText(const Report& report);

/// JSON rendering (schema `wym-analysis-report/v1`). Key order, spacing
/// and field set are fixed; the output contains no timestamps, floats
/// or environment-dependent values, so repeated runs over the same tree
/// produce byte-identical bytes at any WYM_THREADS / WYM_SIMD setting.
std::string RenderJson(const Report& report);

/// JSON string escaping used by RenderJson; exported for the report
/// tests.
std::string EscapeJson(const std::string& text);

}  // namespace wym::analysis

#endif  // WYM_ANALYSIS_FINDINGS_H_
