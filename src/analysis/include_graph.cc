#include "analysis/include_graph.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace wym::analysis {

namespace {

/// Directory part of `path` ('' for a bare filename), '/'-separated.
std::string Dirname(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Collapses `.` and `..` segments ("src/la/../util/io.h" →
/// "src/util/io.h"). Purely lexical; scanned paths have no symlinks.
std::string Normalize(const std::string& path) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    const std::string part = path.substr(start, end - start);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    start = end + 1;
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += '/';
    out += part;
  }
  return out;
}

struct LayerEntry {
  const char* prefix;
  int rank;
};

/// The declared layer DAG, bottom to top (see the header comment).
constexpr LayerEntry kLayers[] = {
    {"src/util/", 0},
    {"src/obs/", 1},
    {"src/text/", 2},     {"src/la/", 2},        {"src/analysis/", 2},
    {"src/data/", 3},     {"src/embedding/", 3}, {"src/ml/", 3},
    {"src/nn/", 3},       {"src/matching/", 3},
    {"src/core/", 4},
    {"src/blocking/", 5}, {"src/explain/", 5},   {"src/baselines/", 5},
    {"src/serve/", 5},
    {"tools/", 6},        {"bench/", 6},         {"tests/", 6},
    {"examples/", 6},
};

}  // namespace

int LayerOf(const std::string& path) {
  for (const LayerEntry& entry : kLayers) {
    if (strings::StartsWith(path, entry.prefix)) return entry.rank;
  }
  return kLayerUnknown;
}

std::string LayerName(int layer) {
  std::string name;
  for (const LayerEntry& entry : kLayers) {
    if (entry.rank != layer) continue;
    std::string prefix(entry.prefix);
    prefix.pop_back();  // Trailing '/'.
    if (!name.empty()) name += '|';
    name += prefix;
  }
  return name.empty() ? "unlayered" : name;
}

IncludeGraph BuildIncludeGraph(const SourceTree& tree) {
  IncludeGraph graph;
  for (size_t from = 0; from < tree.files.size(); ++from) {
    const SourceFile& file = tree.files[from];
    const std::string dir = Dirname(file.path);
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const lint::LexedLine& line = file.lines[i];
      if (!line.preprocessor) continue;
      if (lint::FindWord(line.code, "include") == std::string::npos) continue;
      const size_t open = line.code.find('"');
      if (open == std::string::npos) continue;
      const size_t close = line.code.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string target =
          line.code.substr(open + 1, close - open - 1);
      if (target.empty()) continue;
      // Resolution mirrors the compiler: includer's directory first,
      // then the build's -I src, then the repo root (tests and tools
      // spell project includes src-relative, bench uses same-dir ones).
      size_t to = SourceTree::npos;
      for (const std::string& candidate :
           {Normalize(dir.empty() ? target : dir + "/" + target),
            Normalize("src/" + target), Normalize(target)}) {
        to = tree.IndexOf(candidate);
        if (to != SourceTree::npos) break;
      }
      if (to == SourceTree::npos) continue;  // System / external header.
      graph.edges.push_back(
          IncludeEdge{from, to, static_cast<int>(i + 1)});
    }
  }
  return graph;
}

std::vector<lint::Finding> CheckLayering(const SourceTree& tree,
                                         const IncludeGraph& graph,
                                         int* suppressions_honored) {
  std::vector<lint::Finding> findings;
  // (file index, marker line) pairs consumed by a suppressed violation.
  std::set<std::pair<size_t, int>> used;
  for (const IncludeEdge& edge : graph.edges) {
    const SourceFile& from = tree.files[edge.from];
    const SourceFile& to = tree.files[edge.to];
    const int from_layer = LayerOf(from.path);
    const int to_layer = LayerOf(to.path);
    if (from_layer == kLayerUnknown || to_layer == kLayerUnknown) continue;
    if (to_layer <= from_layer) continue;
    const lint::SuppressionMarker* marker =
        FindSuppression(from, "layer-order", edge.line);
    if (marker != nullptr) {
      used.insert({edge.from, marker->line});
      if (suppressions_honored != nullptr) ++*suppressions_honored;
      continue;
    }
    findings.push_back(lint::Finding{
        from.path, edge.line, "layer-order",
        "#include \"" + to.path + "\" reaches up from layer " +
            std::to_string(from_layer) + " (" + LayerName(from_layer) +
            ") to layer " + std::to_string(to_layer) + " (" +
            LayerName(to_layer) +
            "); dependencies must point down the declared DAG"});
  }
  for (size_t f = 0; f < tree.files.size(); ++f) {
    for (const lint::SuppressionMarker& marker : tree.files[f].suppressions) {
      if (marker.check != "layer-order") continue;
      if (used.count({f, marker.line}) != 0) continue;
      findings.push_back(lint::Finding{
          tree.files[f].path, marker.line, "stale-suppression",
          "allow(layer-order) never matched an upward include on this or "
          "the next line; delete the stale suppression"});
    }
  }
  return findings;
}

std::vector<lint::Finding> CheckCycles(const SourceTree& tree,
                                       const IncludeGraph& graph) {
  const size_t n = tree.files.size();
  // Adjacency (deduplicated, sorted) plus the line of the first edge
  // for each (from, to) pair, for pinpointing the report.
  std::vector<std::vector<size_t>> adjacent(n);
  std::set<std::pair<size_t, size_t>> seen;
  std::vector<std::vector<std::pair<size_t, int>>> edge_line(n);
  for (const IncludeEdge& edge : graph.edges) {
    if (seen.insert({edge.from, edge.to}).second) {
      adjacent[edge.from].push_back(edge.to);
      edge_line[edge.from].push_back({edge.to, edge.line});
    }
  }
  const auto line_of = [&](size_t from, size_t to) {
    for (const auto& [t, line] : edge_line[from]) {
      if (t == to) return line;
    }
    return 0;
  };

  // Iterative Tarjan SCC.
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> components;
  int next_index = 0;
  struct Frame {
    size_t node;
    size_t child = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.child < adjacent[frame.node].size()) {
        const size_t next = adjacent[frame.node][frame.child++];
        if (index[next] == -1) {
          index[next] = low[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back(Frame{next});
        } else if (on_stack[next]) {
          low[frame.node] = std::min(low[frame.node], index[next]);
        }
      } else {
        if (low[frame.node] == index[frame.node]) {
          std::vector<size_t> component;
          while (true) {
            const size_t member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            component.push_back(member);
            if (member == frame.node) break;
          }
          if (component.size() > 1) {
            components.push_back(std::move(component));
          }
        }
        const size_t node = frame.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node],
                                             low[node]);
        }
      }
    }
  }
  // Self-includes are their own (size-1) cycles.
  for (size_t node = 0; node < n; ++node) {
    if (seen.count({node, node}) != 0) components.push_back({node});
  }

  std::vector<lint::Finding> findings;
  for (std::vector<size_t>& component : components) {
    std::sort(component.begin(), component.end());
    const size_t head = component[0];
    // Walk a concrete cycle from the smallest member for the message:
    // always step to the smallest in-component successor not yet
    // visited (or back to the head), which is deterministic.
    std::string path_text = tree.files[head].path;
    std::set<size_t> in_component(component.begin(), component.end());
    std::set<size_t> visited{head};
    size_t at = head;
    int report_line = 0;
    while (true) {
      size_t next = SourceTree::npos;
      for (const size_t candidate : adjacent[at]) {
        if (in_component.count(candidate) == 0) continue;
        if (candidate == head) {
          next = candidate;
          break;
        }
        if (visited.count(candidate) == 0 &&
            (next == SourceTree::npos || candidate < next)) {
          next = candidate;
        }
      }
      if (next == SourceTree::npos) break;
      if (at == head) report_line = line_of(at, next);
      path_text += " -> " + tree.files[next].path;
      if (next == head) break;
      visited.insert(next);
      at = next;
    }
    findings.push_back(lint::Finding{
        tree.files[head].path, report_line == 0 ? 1 : report_line,
        "include-cycle",
        "include cycle: " + path_text + "; break the cycle (forward-declare "
        "or split the header)"});
  }
  return findings;
}

Report RunGraphPass(const SourceTree& tree) {
  Report report;
  report.pass = "graph";
  report.files_scanned = static_cast<int>(tree.files.size());
  const IncludeGraph graph = BuildIncludeGraph(tree);
  report.findings = CheckLayering(tree, graph, &report.suppressions_honored);
  std::vector<lint::Finding> cycles = CheckCycles(tree, graph);
  report.findings.insert(report.findings.end(),
                         std::make_move_iterator(cycles.begin()),
                         std::make_move_iterator(cycles.end()));
  for (const SourceFile& file : tree.files) {
    for (const lint::SuppressionMarker& marker : file.suppressions) {
      if (marker.check != "include-cycle") continue;
      report.findings.push_back(lint::Finding{
          file.path, marker.line, "stale-suppression",
          "allow(include-cycle) is never honored — include cycles must be "
          "broken, not suppressed; delete the marker"});
    }
  }
  SortFindings(&report.findings);
  return report;
}

}  // namespace wym::analysis
