#include "blocking/fingerprint.h"

#include <algorithm>

namespace wym::blocking {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void HashBytes(const std::string& s, uint64_t* h) {
  for (const char c : s) {
    *h ^= static_cast<unsigned char>(c);
    *h *= kFnvPrime;
  }
}

}  // namespace

uint64_t FingerprintTokens(const std::vector<std::string>& sorted_tokens) {
  uint64_t h = kFnvOffset;
  for (const std::string& token : sorted_tokens) {
    HashBytes(token, &h);
    h ^= 0x1F;
    h *= kFnvPrime;
  }
  return h;
}

void FingerprintIndex::Build(const ShardedInvertedIndex& index) {
  const size_t n = index.rows();
  entries_.clear();
  entries_.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    size_t count = 0;
    const uint32_t* ids = index.RowTokens(r, &count);
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < count; ++k) {
      HashBytes(index.Token(ids[k]), &h);
      h ^= 0x1F;
      h *= kFnvPrime;
    }
    entries_.emplace_back(h, static_cast<uint32_t>(r));
  }
  std::sort(entries_.begin(), entries_.end());
}

void FingerprintIndex::Lookup(uint64_t fingerprint,
                              std::vector<uint32_t>* rows) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(),
      std::make_pair(fingerprint, static_cast<uint32_t>(0)));
  for (; it != entries_.end() && it->first == fingerprint; ++it) {
    rows->push_back(it->second);
  }
}

}  // namespace wym::blocking
