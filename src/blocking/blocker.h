#ifndef WYM_BLOCKING_BLOCKER_H_
#define WYM_BLOCKING_BLOCKER_H_

#include <cstddef>
#include <vector>

#include "data/record.h"
#include "embedding/semantic_encoder.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

/// \file
/// Candidate generation (blocking): the step upstream of matching in a
/// real ER deployment. The Magellan benchmark datasets the paper
/// evaluates on are *outputs* of such blockers — labelled candidate
/// pairs — so this module closes the loop for users who start from two
/// raw entity tables instead of a pre-paired dataset (see
/// examples/end_to_end_er.cpp).
///
/// The blockers here are the batch convenience layer; large tables
/// should use the streaming tier in candidate_stream.h, which these
/// classes delegate to.

namespace wym::blocking {

/// A table of entity descriptions over one schema.
struct EntityTable {
  data::Schema schema;
  std::vector<data::Entity> rows;

  size_t size() const { return rows.size(); }
};

/// One candidate produced by a blocker.
struct CandidatePair {
  size_t left_row = 0;
  size_t right_row = 0;
  double score = 0.0;
};

/// Options for TokenBlocker.
struct TokenBlockerOptions {
  /// Minimum number of shared tokens for a pair to be scored at all.
  size_t min_shared_tokens = 1;
  /// Minimum token Jaccard over the full descriptions.
  double min_jaccard = 0.15;
  /// Keep at most this many candidates per left row (best first);
  /// 0 = unlimited.
  size_t max_candidates_per_row = 10;
  /// Tokens occurring in more than this fraction of the right table are
  /// skipped when probing the index (stop-token pruning); 1 disables.
  double max_token_frequency = 0.25;
};

/// Inverted-index token blocker: pairs sharing enough rare tokens are
/// scored with whole-record token Jaccard. Backed by the sharded
/// inverted index + skip-pruned probe of candidate_stream.h; the
/// candidate set is identical to the original exhaustive-probe blocker,
/// produced with prefix filtering instead of a full posting walk.
class TokenBlocker {
 public:
  using Options = TokenBlockerOptions;

  explicit TokenBlocker(Options options = {});

  /// Generates candidates between two tables with the same schema.
  /// Deterministic at every WYM_THREADS setting; candidates are sorted
  /// by (left_row, -score, right_row).
  std::vector<CandidatePair> Candidates(const EntityTable& left,
                                        const EntityTable& right,
                                        util::ThreadPool* pool = nullptr) const;

 private:
  Options options_;
};

/// Options for EmbeddingBlocker.
struct EmbeddingBlockerOptions {
  /// Keep the k best right rows per left row.
  size_t k = 5;
  /// Discard candidates below this pooled-embedding cosine.
  double min_cosine = 0.5;
};

/// Dense blocker: pools the semantic encoder's token embeddings per row
/// and keeps the top-k nearest right rows per left row. Catches
/// candidates token blocking misses (abbreviations, heavy typos).
///
/// Deprecated: this class now routes through the random-hyperplane LSH
/// index (lsh.h) instead of its original brute-force O(|L| x |R|)
/// cosine scan. `k` and `min_cosine` keep their meaning; candidates are
/// still cosine-verified, but only rows colliding with the probe in at
/// least one hash table are considered, so pairs below ~0.5 cosine may
/// no longer surface (they were filtered by min_cosine anyway at the
/// default). New code should use CandidateStream / EmbeddingLsh
/// directly.
class EmbeddingBlocker {
 public:
  using Options = EmbeddingBlockerOptions;

  /// The encoder must be fitted; it is borrowed (not owned) and must
  /// outlive the blocker.
  EmbeddingBlocker(const embedding::SemanticEncoder* encoder,
                   Options options = {});

  std::vector<CandidatePair> Candidates(const EntityTable& left,
                                        const EntityTable& right,
                                        util::ThreadPool* pool = nullptr) const;

 private:
  const embedding::SemanticEncoder* encoder_;
  Options options_;
  text::Tokenizer tokenizer_;
};

/// Merges candidate lists (union, best score per pair; sorted).
std::vector<CandidatePair> MergeCandidates(
    const std::vector<CandidatePair>& a,
    const std::vector<CandidatePair>& b);

/// Builds an EM dataset from blocked candidates: each candidate becomes
/// a record; `left_identity[i]` / `right_identity[j]` give the
/// ground-truth entity id of the rows (records are labelled match when
/// they agree). Used by the end-to-end example and the blocking tests.
data::Dataset BuildCandidateDataset(const EntityTable& left,
                                    const EntityTable& right,
                                    const std::vector<CandidatePair>& pairs,
                                    const std::vector<size_t>& left_identity,
                                    const std::vector<size_t>& right_identity,
                                    const std::string& name);

/// Blocking recall: the fraction of true matches (same identity) that
/// survive into the candidate set.
double BlockingRecall(const std::vector<CandidatePair>& pairs,
                      const std::vector<size_t>& left_identity,
                      const std::vector<size_t>& right_identity);

}  // namespace wym::blocking

#endif  // WYM_BLOCKING_BLOCKER_H_
