#include "blocking/blocker.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "blocking/candidate_stream.h"
#include "blocking/lsh.h"
#include "util/logging.h"

namespace wym::blocking {

TokenBlocker::TokenBlocker(Options options) : options_(options) {}

std::vector<CandidatePair> TokenBlocker::Candidates(
    const EntityTable& left, const EntityTable& right,
    util::ThreadPool* pool) const {
  CandidateStreamOptions options;
  options.token = options_;
  options.encoder = nullptr;  // Token stage only.
  // The short-circuit changes scores for exact duplicates (1.0 instead
  // of Jaccard 1.0 — identical) but also bypasses max_candidates_per_row
  // semantics; keep the classic contract here.
  options.exact_short_circuit = false;
  CandidateStream stream(left, right, options, pool);
  return stream.Drain();
}

EmbeddingBlocker::EmbeddingBlocker(const embedding::SemanticEncoder* encoder,
                                   Options options)
    : encoder_(encoder), options_(options) {
  WYM_CHECK(encoder_ != nullptr);
}

std::vector<CandidatePair> EmbeddingBlocker::Candidates(
    const EntityTable& left, const EntityTable& right,
    util::ThreadPool* pool) const {
  WYM_CHECK(encoder_->fitted()) << "encoder must be fitted before blocking";

  EmbeddingLshOptions lsh_options;
  lsh_options.k = options_.k;
  lsh_options.min_cosine = options_.min_cosine;
  EmbeddingLsh lsh(encoder_, lsh_options);
  lsh.Build(right, tokenizer_, pool);

  std::vector<CandidatePair> out;
  for (size_t l = 0; l < left.size(); ++l) {
    const la::Vec pooled = lsh.PoolRow(left.rows[l], tokenizer_);
    if (pooled.empty()) continue;
    lsh.Probe(l, pooled, &out);
  }
  return out;
}

std::vector<CandidatePair> MergeCandidates(
    const std::vector<CandidatePair>& a,
    const std::vector<CandidatePair>& b) {
  std::map<std::pair<size_t, size_t>, double> best;
  for (const auto& list : {a, b}) {
    for (const auto& pair : list) {
      auto key = std::make_pair(pair.left_row, pair.right_row);
      auto it = best.find(key);
      if (it == best.end() || it->second < pair.score) {
        best[key] = pair.score;
      }
    }
  }
  std::vector<CandidatePair> out;
  out.reserve(best.size());
  for (const auto& [key, score] : best) {
    out.push_back({key.first, key.second, score});
  }
  return out;
}

data::Dataset BuildCandidateDataset(const EntityTable& left,
                                    const EntityTable& right,
                                    const std::vector<CandidatePair>& pairs,
                                    const std::vector<size_t>& left_identity,
                                    const std::vector<size_t>& right_identity,
                                    const std::string& name) {
  WYM_CHECK_EQ(left_identity.size(), left.size());
  WYM_CHECK_EQ(right_identity.size(), right.size());
  data::Dataset dataset;
  dataset.name = name;
  dataset.schema = left.schema;
  dataset.records.reserve(pairs.size());
  for (const auto& pair : pairs) {
    WYM_CHECK_LT(pair.left_row, left.size());
    WYM_CHECK_LT(pair.right_row, right.size());
    data::EmRecord record;
    record.left = left.rows[pair.left_row];
    record.right = right.rows[pair.right_row];
    record.label = left_identity[pair.left_row] ==
                           right_identity[pair.right_row]
                       ? 1
                       : 0;
    dataset.records.push_back(std::move(record));
  }
  return dataset;
}

double BlockingRecall(const std::vector<CandidatePair>& pairs,
                      const std::vector<size_t>& left_identity,
                      const std::vector<size_t>& right_identity) {
  // True matches: (l, r) with equal identities.
  std::map<size_t, std::vector<size_t>> right_by_identity;
  for (size_t r = 0; r < right_identity.size(); ++r) {
    right_by_identity[right_identity[r]].push_back(r);
  }
  size_t total = 0;
  std::set<std::pair<size_t, size_t>> truth;
  for (size_t l = 0; l < left_identity.size(); ++l) {
    auto it = right_by_identity.find(left_identity[l]);
    if (it == right_by_identity.end()) continue;
    for (size_t r : it->second) {
      truth.emplace(l, r);
      ++total;
    }
  }
  if (total == 0) return 1.0;
  size_t found = 0;
  for (const auto& pair : pairs) {
    found += truth.count({pair.left_row, pair.right_row});
  }
  return static_cast<double>(found) / static_cast<double>(total);
}

}  // namespace wym::blocking
