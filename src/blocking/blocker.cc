#include "blocking/blocker.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "la/vector_ops.h"
#include "util/logging.h"

namespace wym::blocking {

namespace {

std::set<std::string> RowTokens(const data::Entity& row,
                                const text::Tokenizer& tokenizer) {
  std::set<std::string> tokens;
  for (const auto& value : row.values) {
    for (auto& token : tokenizer.Tokenize(value)) {
      tokens.insert(std::move(token));
    }
  }
  return tokens;
}

}  // namespace

TokenBlocker::TokenBlocker(Options options) : options_(options) {}

std::vector<CandidatePair> TokenBlocker::Candidates(
    const EntityTable& left, const EntityTable& right) const {
  WYM_CHECK(left.schema == right.schema) << "schema mismatch in blocker";

  // Token sets + inverted index over the right table.
  std::vector<std::set<std::string>> right_tokens(right.size());
  std::unordered_map<std::string, std::vector<size_t>> index;
  for (size_t r = 0; r < right.size(); ++r) {
    right_tokens[r] = RowTokens(right.rows[r], tokenizer_);
    for (const auto& token : right_tokens[r]) {
      index[token].push_back(r);
    }
  }
  const size_t stop_count = static_cast<size_t>(
      options_.max_token_frequency * static_cast<double>(right.size()));

  std::vector<CandidatePair> out;
  std::unordered_map<size_t, size_t> shared_counts;
  for (size_t l = 0; l < left.size(); ++l) {
    const std::set<std::string> tokens = RowTokens(left.rows[l], tokenizer_);
    shared_counts.clear();
    for (const auto& token : tokens) {
      auto it = index.find(token);
      if (it == index.end()) continue;
      if (stop_count > 0 && it->second.size() > stop_count) continue;
      for (size_t r : it->second) ++shared_counts[r];
    }

    std::vector<CandidatePair> row_candidates;
    for (const auto& [r, shared] : shared_counts) {
      if (shared < options_.min_shared_tokens) continue;
      // Exact shared count over the *full* token sets for Jaccard (the
      // probe above skipped stop tokens).
      size_t full_shared = 0;
      for (const auto& token : tokens) full_shared += right_tokens[r].count(token);
      const size_t unioned =
          tokens.size() + right_tokens[r].size() - full_shared;
      const double jaccard =
          unioned == 0 ? 0.0
                       : static_cast<double>(full_shared) /
                             static_cast<double>(unioned);
      if (jaccard < options_.min_jaccard) continue;
      row_candidates.push_back({l, r, jaccard});
    }
    std::sort(row_candidates.begin(), row_candidates.end(),
              [](const CandidatePair& a, const CandidatePair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.right_row < b.right_row;
              });
    if (options_.max_candidates_per_row > 0 &&
        row_candidates.size() > options_.max_candidates_per_row) {
      row_candidates.resize(options_.max_candidates_per_row);
    }
    out.insert(out.end(), row_candidates.begin(), row_candidates.end());
  }
  return out;
}

EmbeddingBlocker::EmbeddingBlocker(const embedding::SemanticEncoder* encoder,
                                   Options options)
    : encoder_(encoder), options_(options) {
  WYM_CHECK(encoder_ != nullptr);
}

std::vector<CandidatePair> EmbeddingBlocker::Candidates(
    const EntityTable& left, const EntityTable& right) const {
  WYM_CHECK(encoder_->fitted()) << "encoder must be fitted before blocking";

  auto pool_row = [&](const data::Entity& row) {
    std::vector<std::string> tokens;
    for (const auto& value : row.values) {
      for (auto& token : tokenizer_.Tokenize(value)) {
        tokens.push_back(std::move(token));
      }
    }
    if (tokens.empty()) return la::Vec();
    return embedding::SemanticEncoder::PoolTokens(
        encoder_->EncodeTokens(tokens));
  };

  std::vector<la::Vec> right_pool(right.size());
  for (size_t r = 0; r < right.size(); ++r) {
    right_pool[r] = pool_row(right.rows[r]);
  }

  std::vector<CandidatePair> out;
  for (size_t l = 0; l < left.size(); ++l) {
    const la::Vec pooled = pool_row(left.rows[l]);
    if (pooled.empty()) continue;
    std::vector<CandidatePair> row_candidates;
    for (size_t r = 0; r < right.size(); ++r) {
      if (right_pool[r].empty()) continue;
      const double cosine = la::Cosine(pooled, right_pool[r]);
      if (cosine < options_.min_cosine) continue;
      row_candidates.push_back({l, r, cosine});
    }
    std::sort(row_candidates.begin(), row_candidates.end(),
              [](const CandidatePair& a, const CandidatePair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.right_row < b.right_row;
              });
    if (row_candidates.size() > options_.k) {
      row_candidates.resize(options_.k);
    }
    out.insert(out.end(), row_candidates.begin(), row_candidates.end());
  }
  return out;
}

std::vector<CandidatePair> MergeCandidates(
    const std::vector<CandidatePair>& a,
    const std::vector<CandidatePair>& b) {
  std::map<std::pair<size_t, size_t>, double> best;
  for (const auto& list : {a, b}) {
    for (const auto& pair : list) {
      auto key = std::make_pair(pair.left_row, pair.right_row);
      auto it = best.find(key);
      if (it == best.end() || it->second < pair.score) {
        best[key] = pair.score;
      }
    }
  }
  std::vector<CandidatePair> out;
  out.reserve(best.size());
  for (const auto& [key, score] : best) {
    out.push_back({key.first, key.second, score});
  }
  return out;
}

data::Dataset BuildCandidateDataset(const EntityTable& left,
                                    const EntityTable& right,
                                    const std::vector<CandidatePair>& pairs,
                                    const std::vector<size_t>& left_identity,
                                    const std::vector<size_t>& right_identity,
                                    const std::string& name) {
  WYM_CHECK_EQ(left_identity.size(), left.size());
  WYM_CHECK_EQ(right_identity.size(), right.size());
  data::Dataset dataset;
  dataset.name = name;
  dataset.schema = left.schema;
  dataset.records.reserve(pairs.size());
  for (const auto& pair : pairs) {
    WYM_CHECK_LT(pair.left_row, left.size());
    WYM_CHECK_LT(pair.right_row, right.size());
    data::EmRecord record;
    record.left = left.rows[pair.left_row];
    record.right = right.rows[pair.right_row];
    record.label = left_identity[pair.left_row] ==
                           right_identity[pair.right_row]
                       ? 1
                       : 0;
    dataset.records.push_back(std::move(record));
  }
  return dataset;
}

double BlockingRecall(const std::vector<CandidatePair>& pairs,
                      const std::vector<size_t>& left_identity,
                      const std::vector<size_t>& right_identity) {
  // True matches: (l, r) with equal identities.
  std::map<size_t, std::vector<size_t>> right_by_identity;
  for (size_t r = 0; r < right_identity.size(); ++r) {
    right_by_identity[right_identity[r]].push_back(r);
  }
  size_t total = 0;
  std::set<std::pair<size_t, size_t>> truth;
  for (size_t l = 0; l < left_identity.size(); ++l) {
    auto it = right_by_identity.find(left_identity[l]);
    if (it == right_by_identity.end()) continue;
    for (size_t r : it->second) {
      truth.emplace(l, r);
      ++total;
    }
  }
  if (total == 0) return 1.0;
  size_t found = 0;
  for (const auto& pair : pairs) {
    found += truth.count({pair.left_row, pair.right_row});
  }
  return static_cast<double>(found) / static_cast<double>(total);
}

}  // namespace wym::blocking
