#ifndef WYM_BLOCKING_INVERTED_INDEX_H_
#define WYM_BLOCKING_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

/// \file
/// The sharded inverted index behind the candidate-generation tier: a
/// CSR (flat pool + offset array) token -> row index over one entity
/// table, built in parallel on the deterministic runtime.
///
/// Build contract (same shape as the cooc pass): tokenization fans out
/// over fixed row chunks, tokens shard by a thread-count-independent
/// hash, shards sort/unique in parallel, and the final vocabulary is the
/// globally sorted merge — so the index bytes are identical at every
/// WYM_THREADS setting. The vocabulary is lexicographically sorted,
/// which gives two load-bearing invariants:
///
///  * token ids ascend with token strings, so a row's sorted id list is
///    exactly its sorted unique token list (the fingerprint module
///    hashes either representation interchangeably);
///  * posting lists store ascending row indices, so probe-side
///    intersections are ordered merges with early exit.
///
/// Document frequency is the posting-list length; probes order a row's
/// tokens rarest-first and apply prefix pruning against the caller's
/// min_shared_tokens / min_jaccard bounds (see candidate_stream.cc).

namespace wym::blocking {

/// CSR inverted index over the token sets of one EntityTable.
class ShardedInvertedIndex {
 public:
  /// Sentinel for "token not in the vocabulary".
  static constexpr uint32_t kNoToken = UINT32_MAX;

  ShardedInvertedIndex() = default;

  /// Indexes `table` (typically the right/larger side). `stop_fraction`
  /// mirrors TokenBlockerOptions::max_token_frequency: tokens occurring
  /// in more than floor(stop_fraction * rows) rows are flagged as stop
  /// tokens for probing (a floor of 0 disables stop pruning, matching
  /// the seed blocker's semantics). Runs on `pool` (global when null).
  void Build(const EntityTable& table, const text::Tokenizer& tokenizer,
             double stop_fraction, util::ThreadPool* pool = nullptr);

  bool built() const { return built_; }
  size_t rows() const { return row_offsets_.empty() ? 0 : row_offsets_.size() - 1; }
  size_t vocab_size() const { return vocab_.size(); }

  /// Document-frequency threshold above which a token is a stop token
  /// (0 = stop pruning disabled).
  size_t stop_df() const { return stop_df_; }

  /// Id of `token`, or kNoToken. O(log V) binary search over the sorted
  /// vocabulary.
  uint32_t TokenId(const std::string& token) const;

  /// Token string of an id (ids ascend lexicographically).
  const std::string& Token(uint32_t id) const { return vocab_[id]; }

  /// Document frequency (posting-list length) of a token id.
  size_t Df(uint32_t id) const {
    return token_offsets_[id + 1] - token_offsets_[id];
  }

  /// True when the token is probed (present and not a stop token).
  bool IsStop(uint32_t id) const {
    return stop_df_ > 0 && Df(id) > stop_df_;
  }

  /// Posting list of a token id: ascending row indices.
  const uint32_t* Postings(uint32_t id, size_t* count) const {
    *count = Df(id);
    return postings_.data() + token_offsets_[id];
  }

  /// Sorted unique token ids of a row.
  const uint32_t* RowTokens(size_t row, size_t* count) const {
    *count = row_offsets_[row + 1] - row_offsets_[row];
    return row_tokens_.data() + row_offsets_[row];
  }

  /// Unique-token count of a row (|R| in the Jaccard bound).
  size_t RowTokenCount(size_t row) const {
    return row_offsets_[row + 1] - row_offsets_[row];
  }

  /// Full consistency pass over the CSR arrays: offsets monotonic and
  /// in-bounds, posting rows ascending and < rows(), row token ids
  /// ascending and < vocab_size(), df symmetry between the two CSR
  /// views. Returns false on the first violation. Build() runs this
  /// under WYM_DEBUG_CHECKS; tests call it directly.
  bool DebugValidate() const;

 private:
  bool built_ = false;
  size_t stop_df_ = 0;
  /// Lexicographically sorted vocabulary; index = token id.
  std::vector<std::string> vocab_;
  /// CSR row -> sorted unique token ids.
  std::vector<uint32_t> row_tokens_;
  std::vector<size_t> row_offsets_;
  /// CSR token id -> ascending row indices.
  std::vector<uint32_t> postings_;
  std::vector<size_t> token_offsets_;
};

}  // namespace wym::blocking

#endif  // WYM_BLOCKING_INVERTED_INDEX_H_
