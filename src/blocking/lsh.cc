#include "blocking/lsh.h"

#include <algorithm>

#include "la/kernels.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace wym::blocking {

namespace {

constexpr size_t kRowGrain = 256;

size_t AdaptiveBits(size_t rows, const EmbeddingLshOptions& options) {
  const size_t target = std::max<size_t>(options.rows_per_bucket, 1);
  size_t bits = 0;
  size_t buckets = 1;
  // Smallest bit count with rows / 2^bits <= target (i.e. expected
  // bucket occupancy at or below the target), capped.
  while (bits < options.max_bits && buckets * target < rows) {
    ++bits;
    buckets <<= 1;
  }
  return std::max<size_t>(bits, 1);
}

}  // namespace

EmbeddingLsh::EmbeddingLsh(const embedding::SemanticEncoder* encoder,
                           Options options)
    : encoder_(encoder), options_(options) {
  WYM_CHECK(encoder_ != nullptr);
}

la::Vec EmbeddingLsh::PoolRow(const data::Entity& row,
                              const text::Tokenizer& tokenizer) const {
  std::vector<std::string> tokens;
  for (const auto& value : row.values) {
    for (auto& token : tokenizer.Tokenize(value)) {
      tokens.push_back(std::move(token));
    }
  }
  if (tokens.empty()) return la::Vec();
  return embedding::SemanticEncoder::PoolTokens(encoder_->EncodeTokens(tokens));
}

uint32_t EmbeddingLsh::Signature(const la::Vec& pooled, size_t table) const {
  const la::Vec* planes = hyperplanes_.data() + table * bits_;
  uint32_t sig = 0;
  for (size_t b = 0; b < bits_; ++b) {
    // kernels::Dot is bit-identical across SIMD paths, so the sign —
    // and with it the whole signature — is too.
    const double dot =
        la::kernels::Dot(pooled.data(), planes[b].data(), pooled.size());
    sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return sig;
}

void EmbeddingLsh::Build(const EntityTable& table,
                         const text::Tokenizer& tokenizer,
                         util::ThreadPool* pool) {
  obs::SpanScope span("blocking.lsh");
  WYM_CHECK(encoder_->fitted()) << "encoder must be fitted before LSH build";
  const size_t n = table.size();
  built_ = true;
  bits_ = AdaptiveBits(n, options_);

  // Hyperplanes: one seeded sequential stream, deterministic in
  // (seed, table count, bit count, encoder dim).
  const size_t dim = encoder_->dim();
  Rng rng(options_.seed);
  hyperplanes_.assign(options_.num_tables * bits_, la::Vec(dim, 0.0f));
  for (auto& plane : hyperplanes_) {
    for (size_t d = 0; d < dim; ++d) {
      plane[d] = static_cast<float>(rng.Normal());
    }
  }

  // Pool + sign every row in parallel; results land by row index, so
  // the arrays are identical at any thread count.
  pooled_.assign(n, la::Vec());
  if (options_.quantized_verify) {
    quantized_pooled_.assign(n * dim, 0);
    quantized_scales_.assign(n, 0.0f);
  } else {
    quantized_pooled_.clear();
    quantized_scales_.clear();
  }
  std::vector<std::vector<uint32_t>> signatures(
      options_.num_tables, std::vector<uint32_t>(n, 0));
  util::ParallelFor(
      n, kRowGrain,
      [&](size_t begin, size_t end, size_t) {
        for (size_t r = begin; r < end; ++r) {
          pooled_[r] = PoolRow(table.rows[r], tokenizer);
          if (pooled_[r].empty()) continue;
          if (options_.quantized_verify) {
            la::kernels::QuantizeRowsI8(pooled_[r].data(), 1, dim,
                                        quantized_pooled_.data() + r * dim,
                                        quantized_scales_.data() + r);
          }
          for (size_t t = 0; t < options_.num_tables; ++t) {
            signatures[t][r] = Signature(pooled_[r], t);
          }
        }
      },
      pool);

  // Bucket tables: sorted (signature, row) pairs, rows ascending within
  // a bucket by the stable ordering of the sort key.
  tables_.assign(options_.num_tables, {});
  util::ParallelFor(
      options_.num_tables, /*grain=*/1,
      [&](size_t begin, size_t end, size_t) {
        for (size_t t = begin; t < end; ++t) {
          auto& entries = tables_[t];
          entries.reserve(n);
          for (size_t r = 0; r < n; ++r) {
            if (pooled_[r].empty()) continue;
            entries.emplace_back(signatures[t][r], static_cast<uint32_t>(r));
          }
          std::sort(entries.begin(), entries.end());
        }
      },
      pool);
}

void EmbeddingLsh::Probe(size_t left_row, const la::Vec& pooled,
                         std::vector<CandidatePair>* out) const {
  WYM_CHECK(built_);
  if (pooled.empty()) return;

  // Union of the probe's buckets across tables.
  std::vector<uint32_t> rows;
  for (size_t t = 0; t < options_.num_tables; ++t) {
    const uint32_t sig = Signature(pooled, t);
    const auto& entries = tables_[t];
    auto it = std::lower_bound(
        entries.begin(), entries.end(),
        std::make_pair(sig, static_cast<uint32_t>(0)));
    for (; it != entries.end() && it->first == sig; ++it) {
      rows.push_back(it->second);
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  // Verify: cosine via the kernel layer (both vectors are unit from
  // PoolTokens, so the dot *is* the cosine). The quantized_verify
  // option swaps the exact float dot for the int8 approximation over
  // the Build-time quantized rows.
  std::vector<int8_t> probe_q;
  float probe_scale = 0.0f;
  if (options_.quantized_verify) {
    probe_q.resize(pooled.size());
    la::kernels::QuantizeRowsI8(pooled.data(), 1, pooled.size(),
                                probe_q.data(), &probe_scale);
  }
  std::vector<CandidatePair> scored;
  scored.reserve(rows.size());
  for (const uint32_t r : rows) {
    const la::Vec& right = pooled_[r];
    WYM_DCHECK(!right.empty());
    WYM_DCHECK_EQ(right.size(), pooled.size());
    const double cosine =
        options_.quantized_verify
            ? la::kernels::DotI8(probe_q.data(),
                                 quantized_pooled_.data() + r * pooled.size(),
                                 pooled.size(), probe_scale,
                                 quantized_scales_[r])
            : la::kernels::Dot(pooled.data(), right.data(), pooled.size());
    if (cosine < options_.min_cosine) continue;
    scored.push_back({left_row, r, cosine});
  }
  std::sort(scored.begin(), scored.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.right_row < b.right_row;
            });
  if (options_.k > 0 && scored.size() > options_.k) {
    scored.resize(options_.k);
  }
  out->insert(out->end(), scored.begin(), scored.end());
}

}  // namespace wym::blocking
