#ifndef WYM_BLOCKING_LSH_H_
#define WYM_BLOCKING_LSH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "blocking/blocker.h"
#include "embedding/semantic_encoder.h"
#include "la/vector_ops.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

/// \file
/// Embedding-LSH second stage of candidate generation: random-
/// hyperplane signatures over the semantic encoder's pooled token
/// vectors recover matches that share no surface token (abbreviations,
/// heavy typos — WYM's semantic-pairing advantage, PAPER.md decision
/// units), replacing the brute-force O(|L| x |R|) cosine scan of the
/// seed EmbeddingBlocker with O(tables x bucket) probes.
///
/// Determinism contract: hyperplanes are drawn from a seeded wym::Rng
/// (deterministic in seed, table size and encoder dimension); signature
/// bits come from la::kernels::Dot, which is bit-identical across
/// scalar/SSE2/AVX2 dispatch; bucket tables are sorted flat arrays.
/// Candidate lists are therefore byte-identical at every WYM_THREADS
/// and WYM_SIMD setting.

namespace wym::blocking {

/// Options for EmbeddingLsh.
struct EmbeddingLshOptions {
  /// Independent hash tables (bands). More tables = higher recall,
  /// linearly more probe work. At the defaults a pair at the cosine
  /// floor 0.5 collides with probability ~1-(1-(2/3)^bits)^24, i.e.
  /// >= 0.99 for the bucket sizes the adaptive bit count targets.
  size_t num_tables = 24;
  /// Cap on hyperplane bits per table. The effective bit count adapts
  /// to the indexed table so buckets hold ~`rows_per_bucket` rows:
  /// bits = clamp(floor(log2(rows / rows_per_bucket)), 1, max_bits).
  size_t max_bits = 12;
  /// Target bucket occupancy driving the adaptive bit count.
  size_t rows_per_bucket = 8;
  /// Keep the k best verified right rows per probe.
  size_t k = 5;
  /// Discard candidates below this pooled-embedding cosine.
  double min_cosine = 0.5;
  /// Hyperplane seed.
  uint64_t seed = 0x15A9E11;
  /// Verify candidate cosines on int8-quantized pooled rows
  /// (la::kernels::DotI8) instead of the exact float dot. Quantizes
  /// each indexed row once at Build and each probe vector once per
  /// Probe; scores become approximate (per-row quantization error), so
  /// ranking near min_cosine can differ from the exact path. Off by
  /// default to keep the exact-verify candidate lists byte-stable.
  bool quantized_verify = false;
};

/// Random-hyperplane LSH over pooled row embeddings of one table.
class EmbeddingLsh {
 public:
  using Options = EmbeddingLshOptions;

  /// The encoder must be fitted; borrowed, must outlive the index.
  explicit EmbeddingLsh(const embedding::SemanticEncoder* encoder,
                        Options options = {});

  /// Pools + signs every row of `table` and fills the bucket tables.
  /// Runs on `pool` (global when null). Rows with no tokens get no
  /// signatures and are never returned as candidates.
  void Build(const EntityTable& table, const text::Tokenizer& tokenizer,
             util::ThreadPool* pool = nullptr);

  /// Pooled unit embedding of one row (empty vector for a token-less
  /// row). Pooling follows the seed EmbeddingBlocker: tokens in
  /// document order through EncodeTokens, then PoolTokens.
  la::Vec PoolRow(const data::Entity& row,
                  const text::Tokenizer& tokenizer) const;

  /// Candidates for one left row given its pooled embedding: union of
  /// the row's buckets across tables, cosine-verified through
  /// la::kernels, filtered by min_cosine, top-k by (score desc, row
  /// asc). Appends to `out` with left_row as given.
  void Probe(size_t left_row, const la::Vec& pooled,
             std::vector<CandidatePair>* out) const;

  bool built() const { return built_; }
  size_t bits() const { return bits_; }
  size_t rows() const { return pooled_.size(); }

 private:
  uint32_t Signature(const la::Vec& pooled, size_t table) const;

  const embedding::SemanticEncoder* encoder_;
  Options options_;
  bool built_ = false;
  size_t bits_ = 0;
  /// num_tables * bits_ hyperplanes, row-major by table.
  std::vector<la::Vec> hyperplanes_;
  /// Pooled unit embeddings of the indexed rows (empty = token-less).
  std::vector<la::Vec> pooled_;
  /// Int8 codes + per-row scales of the pooled rows (rows * encoder
  /// dim, token-less rows all-zero with scale 0). Filled at Build only
  /// when options_.quantized_verify is set.
  std::vector<int8_t> quantized_pooled_;
  std::vector<float> quantized_scales_;
  /// Per table: (signature, row) sorted — one bucket is an equal_range.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> tables_;
};

}  // namespace wym::blocking

#endif  // WYM_BLOCKING_LSH_H_
