#include "blocking/candidate_stream.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace wym::blocking {

namespace {

/// Rows per parallel probe chunk: amortizes the right-table-sized
/// scratch allocation without starving an 8-thread pool on small
/// chunks.
constexpr size_t kProbeGrain = 256;

/// Conservative integer ceiling of a float bound: the smallest integer
/// s with s >= x, nudged so float rounding can only lengthen a probe
/// prefix, never skip a qualifying pair.
size_t CeilBound(double x) {
  if (x <= 0.0) return 0;
  return static_cast<size_t>(std::ceil(x - 1e-9));
}

void SortRowCandidates(std::vector<CandidatePair>* row) {
  std::sort(row->begin(), row->end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.right_row < b.right_row;
            });
}

}  // namespace

/// Per-probe-chunk scratch: the generation-stamped touched-row set and
/// the reusable small vectors. One instance per ParallelFor chunk, so
/// the right-table-sized `seen` array is allocated once per
/// kProbeGrain rows, not per row.
struct CandidateStream::ProbeScratch {
  explicit ProbeScratch(size_t right_rows)
      : seen(right_rows, 0), counts(right_rows, 0) {}

  std::vector<uint32_t> seen;    ///< seen[r] == generation -> touched.
  std::vector<uint32_t> counts;  ///< Shared probeable tokens with row r.
  uint32_t generation = 0;
  std::vector<uint32_t> touched;
  std::vector<uint32_t> stop_ids;  ///< Present stop-token ids.
  std::vector<std::string> doc_tokens;   ///< Document-order tokens.
  std::vector<std::string> uniq_tokens;  ///< Sorted unique tokens.
  std::vector<uint32_t> present_ids;     ///< Ascending ids found in the index.
  std::vector<uint32_t> probe_ids;       ///< Non-stop ids, df-ascending.
  std::vector<uint32_t> dup_rows;
  std::vector<CandidatePair> row_out;
  std::vector<CandidatePair> lsh_out;
  /// Deferred counter deltas (flushed once per row).
  uint64_t pairs_pruned = 0;
  uint64_t exact_dupes = 0;
  uint64_t candidates = 0;
};

CandidateStream::CandidateStream(const EntityTable& left,
                                 const EntityTable& right, Options options,
                                 util::ThreadPool* pool)
    : left_(left), right_(right), options_(options), pool_(pool) {
  WYM_CHECK(left_.schema == right_.schema)
      << "schema mismatch in candidate stream";
  if (options_.encoder != nullptr) {
    WYM_CHECK(options_.encoder->fitted())
        << "encoder must be fitted before LSH blocking";
  }
  options_.chunk_left_rows = std::max<size_t>(options_.chunk_left_rows, 1);
}

CandidateStream::~CandidateStream() = default;

void CandidateStream::EnsureBuilt() {
  if (built_) return;
  built_ = true;
  index_.Build(right_, tokenizer_, options_.token.max_token_frequency, pool_);
  if (options_.exact_short_circuit) {
    fingerprints_.Build(index_);
  }
  if (options_.encoder != nullptr) {
    lsh_ = std::make_unique<EmbeddingLsh>(options_.encoder, options_.lsh);
    lsh_->Build(right_, tokenizer_, pool_);
  }
}

void CandidateStream::ProbeRow(size_t left_row, ProbeScratch* s,
                               std::vector<CandidatePair>* out) const {
  // 1. Tokenize: document order (LSH pooling is contextual) and the
  // sorted unique set (Jaccard universe |L|).
  s->doc_tokens.clear();
  for (const auto& value : left_.rows[left_row].values) {
    for (auto& token : tokenizer_.Tokenize(value)) {
      s->doc_tokens.push_back(std::move(token));
    }
  }
  s->uniq_tokens = s->doc_tokens;
  std::sort(s->uniq_tokens.begin(), s->uniq_tokens.end());
  s->uniq_tokens.erase(
      std::unique(s->uniq_tokens.begin(), s->uniq_tokens.end()),
      s->uniq_tokens.end());
  const size_t l_full = s->uniq_tokens.size();
  if (l_full == 0) return;

  // 2. Map onto the right vocabulary. uniq_tokens is sorted and the
  // vocabulary order is the string order, so present_ids ascends.
  s->present_ids.clear();
  size_t n_stop = 0;
  for (const std::string& token : s->uniq_tokens) {
    const uint32_t id = index_.TokenId(token);
    if (id == ShardedInvertedIndex::kNoToken) continue;
    s->present_ids.push_back(id);
    if (index_.IsStop(id)) ++n_stop;
  }

  // 3. Exact-duplicate short-circuit: same normalized token set as a
  // right row -> emit at score 1.0 and skip the probes. Fingerprint
  // hits are verified against the indexed id lists, so collisions
  // cannot fabricate duplicates.
  if (options_.exact_short_circuit) {
    s->dup_rows.clear();
    fingerprints_.Lookup(FingerprintTokens(s->uniq_tokens), &s->dup_rows);
    bool emitted = false;
    for (const uint32_t r : s->dup_rows) {
      if (s->present_ids.size() != l_full) break;  // Unindexed token: no dup.
      size_t count = 0;
      const uint32_t* ids = index_.RowTokens(r, &count);
      if (count != l_full ||
          !std::equal(ids, ids + count, s->present_ids.begin())) {
        continue;
      }
      out->push_back({left_row, r, 1.0});
      emitted = true;
    }
    if (emitted) {
      ++s->exact_dupes;
      s->candidates += s->dup_rows.size();
      return;
    }
  }

  s->row_out.clear();

  // 4. Token-index probe, rare-token-first with skip pruning. A pair
  // passing the caller's bounds needs
  //   shared_full >= ceil(min_jaccard * |L|)        (since |R| >= shared)
  //   shared_probe >= shared_full - n_stop          (stop tokens are
  //                                                  shared at most n_stop times)
  //   shared_probe >= min_shared_tokens             (seed blocker contract)
  // so it must share a token within the first
  // |probeable| - required + 1 rarest probeable tokens (the prefix).
  // The walk counts exact shared-token totals as it goes; posting lists
  // past the prefix are walked in update-only mode — they can no longer
  // qualify a new row, so rows first seen there are skipped, which is
  // what keeps the touched set (and all downstream work) small.
  const TokenBlockerOptions& topt = options_.token;
  const size_t required_full = CeilBound(topt.min_jaccard * l_full);
  size_t required_probe =
      std::max<size_t>(topt.min_shared_tokens,
                       required_full > n_stop ? required_full - n_stop : 0);
  required_probe = std::max<size_t>(required_probe, 1);

  s->probe_ids.clear();
  s->stop_ids.clear();
  for (const uint32_t id : s->present_ids) {
    if (index_.IsStop(id)) {
      s->stop_ids.push_back(id);
    } else {
      s->probe_ids.push_back(id);
    }
  }
  if (s->probe_ids.size() >= required_probe) {
    std::sort(s->probe_ids.begin(), s->probe_ids.end(),
              [&](uint32_t a, uint32_t b) {
                const size_t da = index_.Df(a), db = index_.Df(b);
                if (da != db) return da < db;
                return a < b;
              });
    const size_t prefix = s->probe_ids.size() - required_probe + 1;

    ++s->generation;
    s->touched.clear();
    for (size_t k = 0; k < s->probe_ids.size(); ++k) {
      size_t count = 0;
      const uint32_t* rows = index_.Postings(s->probe_ids[k], &count);
      const bool discover = k < prefix;
      for (size_t i = 0; i < count; ++i) {
        const uint32_t r = rows[i];
        WYM_DCHECK_LT(r, s->seen.size());
        if (s->seen[r] == s->generation) {
          ++s->counts[r];
        } else if (discover) {
          s->seen[r] = s->generation;
          s->counts[r] = 1;
          s->touched.push_back(r);
        }
        // else: first shared token is past the prefix, so the row can
        // reach at most required_probe - 1 shared tokens — skip it.
      }
    }

    // Score the touched rows. `counts` is the exact non-stop shared
    // count for rows discovered in the prefix, so no per-pair
    // intersection is needed; the (few) stop tokens are resolved by
    // binary search in the row's sorted id list. Iteration follows the
    // deterministic discovery order — the per-row sort below fixes the
    // output order.
    const size_t n_present = s->present_ids.size();
    for (const uint32_t r : s->touched) {
      const size_t shared_probe = s->counts[r];
      if (shared_probe < required_probe) {
        ++s->pairs_pruned;
        continue;
      }
      const size_t r_size = index_.RowTokenCount(r);
      const size_t required_pair = std::max<size_t>(
          topt.min_shared_tokens,
          CeilBound(topt.min_jaccard * static_cast<double>(l_full + r_size) /
                    (1.0 + topt.min_jaccard)));
      if (std::min(n_present, r_size) < required_pair) {
        ++s->pairs_pruned;
        continue;
      }
      size_t shared_full = shared_probe;
      if (!s->stop_ids.empty()) {
        size_t count = 0;
        const uint32_t* rids = index_.RowTokens(r, &count);
        for (const uint32_t id : s->stop_ids) {
          shared_full += std::binary_search(rids, rids + count, id);
        }
      }
      if (shared_full < required_pair) {
        ++s->pairs_pruned;
        continue;
      }
      const size_t unioned = l_full + r_size - shared_full;
      const double jaccard =
          unioned == 0
              ? 0.0
              : static_cast<double>(shared_full) / static_cast<double>(unioned);
      if (jaccard < topt.min_jaccard) continue;
      s->row_out.push_back({left_row, r, jaccard});
    }
    SortRowCandidates(&s->row_out);
    if (topt.max_candidates_per_row > 0 &&
        s->row_out.size() > topt.max_candidates_per_row) {
      s->row_out.resize(topt.max_candidates_per_row);
    }
  }

  // 5. Embedding-LSH second stage: recovers matches sharing no surface
  // token; merged best-score-per-pair with the token candidates.
  if (lsh_ != nullptr && !s->doc_tokens.empty()) {
    const la::Vec pooled = embedding::SemanticEncoder::PoolTokens(
        options_.encoder->EncodeTokens(s->doc_tokens));
    s->lsh_out.clear();
    lsh_->Probe(left_row, pooled, &s->lsh_out);
    for (const CandidatePair& cand : s->lsh_out) {
      bool merged = false;
      for (CandidatePair& existing : s->row_out) {
        if (existing.right_row == cand.right_row) {
          existing.score = std::max(existing.score, cand.score);
          merged = true;
          break;
        }
      }
      if (!merged) s->row_out.push_back(cand);
    }
    SortRowCandidates(&s->row_out);
  }

  s->candidates += s->row_out.size();
  out->insert(out->end(), s->row_out.begin(), s->row_out.end());
}

bool CandidateStream::Next(std::vector<CandidatePair>* chunk) {
  chunk->clear();
  EnsureBuilt();
  if (next_left_row_ >= left_.size()) return false;
  obs::SpanScope span("blocking.probe");

  const size_t begin = next_left_row_;
  const size_t end =
      std::min(begin + options_.chunk_left_rows, left_.size());
  next_left_row_ = end;
  const size_t n = end - begin;

  static obs::Counter& candidates_emitted =
      obs::Registry::Global().GetCounter("blocking.candidates_emitted");
  static obs::Counter& pairs_pruned =
      obs::Registry::Global().GetCounter("blocking.pairs_pruned");
  static obs::Counter& exact_dupes =
      obs::Registry::Global().GetCounter("blocking.exact_dupes");
  static obs::Histogram& probe_ns =
      obs::Registry::Global().GetHistogram("blocking.probe_ns");
  const bool metrics = obs::MetricsEnabled();

  // Per-row output slots merged in row order: byte-identical chunks at
  // every thread count.
  std::vector<std::vector<CandidatePair>> rows(n);
  util::ParallelFor(
      n, kProbeGrain,
      [&](size_t chunk_begin, size_t chunk_end, size_t) {
        ProbeScratch scratch(right_.size());
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          const std::uint64_t t0 = metrics ? obs::NowNanos() : 0;
          ProbeRow(begin + i, &scratch, &rows[i]);
          if (metrics) probe_ns.Record(obs::NowNanos() - t0);
        }
        if (metrics) {
          candidates_emitted.Add(scratch.candidates);
          pairs_pruned.Add(scratch.pairs_pruned);
          exact_dupes.Add(scratch.exact_dupes);
        }
      },
      pool_);

  size_t total = 0;
  for (const auto& row : rows) total += row.size();
  chunk->reserve(total);
  for (const auto& row : rows) {
    chunk->insert(chunk->end(), row.begin(), row.end());
  }
  return true;
}

std::vector<CandidatePair> CandidateStream::Drain() {
  std::vector<CandidatePair> all, chunk;
  while (Next(&chunk)) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

std::vector<TableMatch> MatchTables(const core::WymModel& model,
                                    const EntityTable& left,
                                    const EntityTable& right,
                                    const MatchTablesOptions& options,
                                    util::ThreadPool* pool,
                                    MatchTablesStats* stats) {
  WYM_CHECK(model.fitted()) << "MatchTables requires a fitted model";
  WYM_CHECK_EQ(model.num_attributes(), left.schema.size())
      << "model was trained on a different schema";

  CandidateStreamOptions stream_options = options.stream;
  stream_options.encoder = options.use_lsh ? &model.encoder() : nullptr;
  CandidateStream stream(left, right, stream_options, pool);

  if (stats != nullptr) *stats = MatchTablesStats{};
  const size_t batch = std::max<size_t>(options.batch_candidates, 1);

  std::vector<TableMatch> matches;
  std::vector<CandidatePair> pending, chunk;
  std::vector<data::EmRecord> records;

  // Scores `count` pending candidates through the batch predictor and
  // keeps the matches; pending memory stays bounded by ~2 batches.
  const auto flush = [&](size_t count) {
    records.clear();
    records.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      data::EmRecord record;
      record.left = left.rows[pending[i].left_row];
      record.right = right.rows[pending[i].right_row];
      records.push_back(std::move(record));
    }
    core::PredictionReport report;
    const std::vector<double> probas =
        model.PredictProbaBatch(records, &report, pool);
    for (size_t i = 0; i < count; ++i) {
      if (probas[i] < options.min_probability) continue;
      matches.push_back({pending[i].left_row, pending[i].right_row, probas[i],
                         pending[i].score});
    }
    if (stats != nullptr) {
      stats->candidates_scored += count;
      stats->records_quarantined += report.quarantined.size();
    }
    pending.erase(pending.begin(), pending.begin() + count);
  };

  while (stream.Next(&chunk)) {
    pending.insert(pending.end(), chunk.begin(), chunk.end());
    while (pending.size() >= batch) flush(batch);
  }
  if (!pending.empty()) flush(pending.size());

  std::sort(matches.begin(), matches.end(),
            [](const TableMatch& a, const TableMatch& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              if (a.left_row != b.left_row) return a.left_row < b.left_row;
              return a.right_row < b.right_row;
            });
  return matches;
}

}  // namespace wym::blocking
