#ifndef WYM_BLOCKING_CANDIDATE_STREAM_H_
#define WYM_BLOCKING_CANDIDATE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "blocking/blocker.h"
#include "blocking/fingerprint.h"
#include "blocking/inverted_index.h"
#include "blocking/lsh.h"
#include "core/wym.h"
#include "embedding/semantic_encoder.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

/// \file
/// The streaming candidate-generation tier: two raw entity tables in,
/// bounded-memory chunks of scored candidate pairs out, ranked matches
/// at the end (see DESIGN.md "Candidate generation").
///
/// A CandidateStream owns the per-run indexes (sharded inverted index,
/// fingerprint table, optional embedding LSH) over the right table and
/// probes the left table chunk by chunk; at no point do all candidates
/// for two large tables have to coexist in memory. MatchTables() pipes
/// those chunks straight into WymModel::PredictProbaBatch, which is how
/// two 10^6-row tables become ranked matches without an O(n^2) pass.
///
/// Determinism: probes fan out over util::ParallelFor with per-row
/// output slots merged in row order; every score goes through
/// la::kernels or integer Jaccard. Candidate chunks are byte-identical
/// at every WYM_THREADS and WYM_SIMD setting.

namespace wym::blocking {

/// Options for CandidateStream.
struct CandidateStreamOptions {
  /// Token-index stage bounds (shared with TokenBlocker).
  TokenBlockerOptions token;
  /// Embedding-LSH second stage; only active when `encoder` is set.
  EmbeddingLshOptions lsh;
  /// Fitted encoder powering the LSH stage (borrowed; must outlive the
  /// stream). nullptr disables LSH.
  const embedding::SemanticEncoder* encoder = nullptr;
  /// Exact-duplicate short-circuit: a left row whose normalized token
  /// set equals some right row's emits those rows at score 1.0 and
  /// skips index + LSH probing entirely.
  bool exact_short_circuit = true;
  /// Left rows consumed per Next() chunk (the memory bound).
  size_t chunk_left_rows = 2048;
};

/// Pull-based stream of candidate chunks over two tables. Tables are
/// borrowed and must outlive the stream. Indexes build lazily on the
/// first Next().
class CandidateStream {
 public:
  using Options = CandidateStreamOptions;

  CandidateStream(const EntityTable& left, const EntityTable& right,
                  Options options = {}, util::ThreadPool* pool = nullptr);
  ~CandidateStream();

  CandidateStream(const CandidateStream&) = delete;
  CandidateStream& operator=(const CandidateStream&) = delete;

  /// Builds the right-table indexes (inverted index, fingerprints,
  /// LSH) now instead of lazily on the first Next(). Idempotent; lets
  /// callers separate one-time build cost from probe throughput.
  void Prepare() { EnsureBuilt(); }

  /// Fills `chunk` with the candidates of the next block of left rows,
  /// sorted by (left_row asc, score desc, right_row asc). Returns false
  /// (leaving `chunk` empty) once every left row has been consumed.
  bool Next(std::vector<CandidatePair>* chunk);

  /// Runs the stream to completion and concatenates every chunk —
  /// the convenience path for tables that fit in memory.
  std::vector<CandidatePair> Drain();

  /// Left rows consumed so far.
  size_t left_rows_consumed() const { return next_left_row_; }

  const ShardedInvertedIndex& index() const { return index_; }
  const EmbeddingLsh* lsh() const { return lsh_.get(); }

 private:
  struct ProbeScratch;  // Per-chunk probe scratch; defined in the .cc.

  void EnsureBuilt();
  /// Probes one left row; appends its merged candidate list.
  void ProbeRow(size_t left_row, ProbeScratch* scratch,
                std::vector<CandidatePair>* out) const;

  const EntityTable& left_;
  const EntityTable& right_;
  Options options_;
  util::ThreadPool* pool_;
  text::Tokenizer tokenizer_;
  bool built_ = false;
  size_t next_left_row_ = 0;
  ShardedInvertedIndex index_;
  FingerprintIndex fingerprints_;
  std::unique_ptr<EmbeddingLsh> lsh_;
};

/// One resolved match from MatchTables.
struct TableMatch {
  size_t left_row = 0;
  size_t right_row = 0;
  /// WYM matching probability.
  double probability = 0.0;
  /// The blocking-stage score that surfaced the pair (Jaccard, cosine
  /// or 1.0 for exact duplicates).
  double blocking_score = 0.0;
};

/// Options for MatchTables.
struct MatchTablesOptions {
  /// Candidate generation; `encoder` is overridden with the model's own
  /// fitted encoder (set `use_lsh` false to opt out of the LSH stage).
  CandidateStreamOptions stream;
  bool use_lsh = true;
  /// Keep matches at or above this probability.
  double min_probability = 0.5;
  /// Candidate pairs per PredictProbaBatch call (the scoring-side
  /// memory bound).
  size_t batch_candidates = 4096;
};

/// Aggregate accounting of one MatchTables run.
struct MatchTablesStats {
  size_t candidates_scored = 0;
  size_t records_quarantined = 0;
};

/// End-to-end two-raw-tables matching: streams blocked candidates into
/// `model.PredictProbaBatch` in bounded chunks and returns the pairs
/// predicted as matches, ranked by (probability desc, left asc, right
/// asc). The model must be fitted on the same schema.
std::vector<TableMatch> MatchTables(const core::WymModel& model,
                                    const EntityTable& left,
                                    const EntityTable& right,
                                    const MatchTablesOptions& options = {},
                                    util::ThreadPool* pool = nullptr,
                                    MatchTablesStats* stats = nullptr);

}  // namespace wym::blocking

#endif  // WYM_BLOCKING_CANDIDATE_STREAM_H_
