#include "blocking/inverted_index.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace wym::blocking {

namespace {

/// Fixed shard count for the vocabulary build. Thread-count-independent
/// (tokens shard by hash, not by worker), so the merged vocabulary is
/// identical at every WYM_THREADS setting.
constexpr size_t kVocabShards = 16;

/// Row-chunk grain for the parallel passes: large enough to amortize
/// task dispatch, small enough to spread 8 threads over small tables.
constexpr size_t kRowGrain = 256;

/// FNV-1a 64 over the token bytes; only used to pick a vocabulary
/// shard, never persisted.
size_t VocabShard(const std::string& token) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<size_t>(h % kVocabShards);
}

}  // namespace

void ShardedInvertedIndex::Build(const EntityTable& table,
                                 const text::Tokenizer& tokenizer,
                                 double stop_fraction,
                                 util::ThreadPool* pool) {
  obs::SpanScope span("blocking.index_build");
  const size_t n = table.size();
  built_ = true;
  stop_df_ = static_cast<size_t>(stop_fraction * static_cast<double>(n));

  // Pass 1 (parallel rows): tokenize every row into its sorted unique
  // token list, and shard each distinct token by hash. Shard contents
  // depend only on the fixed chunk structure, never on scheduling.
  std::vector<std::vector<std::string>> row_strings(n);
  const size_t chunks = util::NumChunks(n, kRowGrain);
  std::vector<std::vector<std::vector<std::string>>> chunk_shards(
      chunks, std::vector<std::vector<std::string>>(kVocabShards));
  util::ParallelFor(
      n, kRowGrain,
      [&](size_t begin, size_t end, size_t chunk) {
        for (size_t r = begin; r < end; ++r) {
          std::vector<std::string>& tokens = row_strings[r];
          for (const auto& value : table.rows[r].values) {
            for (auto& token : tokenizer.Tokenize(value)) {
              tokens.push_back(std::move(token));
            }
          }
          std::sort(tokens.begin(), tokens.end());
          tokens.erase(std::unique(tokens.begin(), tokens.end()),
                       tokens.end());
          for (const std::string& token : tokens) {
            chunk_shards[chunk][VocabShard(token)].push_back(token);
          }
        }
      },
      pool);

  // Pass 2 (parallel shards): concatenate each shard's chunk slices in
  // chunk order, then sort + unique. Shards are disjoint by hash, so
  // the union of shard vocabularies is duplicate-free.
  std::vector<std::vector<std::string>> shard_vocab(kVocabShards);
  util::ParallelFor(
      kVocabShards, /*grain=*/1,
      [&](size_t begin, size_t end, size_t) {
        for (size_t s = begin; s < end; ++s) {
          std::vector<std::string>& out = shard_vocab[s];
          for (size_t c = 0; c < chunks; ++c) {
            auto& slice = chunk_shards[c][s];
            out.insert(out.end(), std::make_move_iterator(slice.begin()),
                       std::make_move_iterator(slice.end()));
            slice.clear();
          }
          std::sort(out.begin(), out.end());
          out.erase(std::unique(out.begin(), out.end()), out.end());
        }
      },
      pool);

  // Ordered merge: the global vocabulary is the sorted union, so token
  // ids ascend lexicographically (the invariant the fingerprint module
  // and the ordered intersections rely on).
  vocab_.clear();
  size_t vocab_total = 0;
  for (const auto& shard : shard_vocab) vocab_total += shard.size();
  vocab_.reserve(vocab_total);
  for (auto& shard : shard_vocab) {
    vocab_.insert(vocab_.end(), std::make_move_iterator(shard.begin()),
                  std::make_move_iterator(shard.end()));
  }
  std::sort(vocab_.begin(), vocab_.end());

  // Pass 3 (parallel rows): map every row's tokens onto ids. The ids
  // stay sorted because the vocabulary order is the string order.
  row_offsets_.assign(n + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    row_offsets_[r + 1] = row_offsets_[r] + row_strings[r].size();
  }
  row_tokens_.assign(row_offsets_[n], 0);
  util::ParallelFor(
      n, kRowGrain,
      [&](size_t begin, size_t end, size_t) {
        for (size_t r = begin; r < end; ++r) {
          size_t cursor = row_offsets_[r];
          for (const std::string& token : row_strings[r]) {
            const auto it =
                std::lower_bound(vocab_.begin(), vocab_.end(), token);
            row_tokens_[cursor++] = static_cast<uint32_t>(it - vocab_.begin());
          }
          row_strings[r].clear();
          row_strings[r].shrink_to_fit();
        }
      },
      pool);

  // Pass 4 (sequential integer work): CSR postings. Rows are visited in
  // ascending order, so every posting list ascends by construction.
  token_offsets_.assign(vocab_.size() + 1, 0);
  for (const uint32_t id : row_tokens_) ++token_offsets_[id + 1];
  for (size_t t = 0; t < vocab_.size(); ++t) {
    token_offsets_[t + 1] += token_offsets_[t];
  }
  postings_.assign(row_tokens_.size(), 0);
  std::vector<size_t> cursor(token_offsets_.begin(), token_offsets_.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      postings_[cursor[row_tokens_[k]]++] = static_cast<uint32_t>(r);
    }
  }

  static obs::Counter& tokens_indexed =
      obs::Registry::Global().GetCounter("blocking.tokens_indexed");
  tokens_indexed.Add(row_tokens_.size());

  WYM_DCHECK(DebugValidate()) << "inverted index CSR invariants violated";
}

uint32_t ShardedInvertedIndex::TokenId(const std::string& token) const {
  const auto it = std::lower_bound(vocab_.begin(), vocab_.end(), token);
  if (it == vocab_.end() || *it != token) return kNoToken;
  return static_cast<uint32_t>(it - vocab_.begin());
}

bool ShardedInvertedIndex::DebugValidate() const {
  if (!built_) return false;
  const size_t n = rows();
  // Row CSR: offsets monotonic, ids ascending (strictly — unique) and
  // inside the vocabulary.
  if (row_offsets_.size() != n + 1 || row_offsets_[0] != 0) return false;
  if (row_offsets_[n] != row_tokens_.size()) return false;
  for (size_t r = 0; r < n; ++r) {
    if (row_offsets_[r] > row_offsets_[r + 1]) return false;
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      if (row_tokens_[k] >= vocab_.size()) return false;
      if (k > row_offsets_[r] && row_tokens_[k - 1] >= row_tokens_[k]) {
        return false;
      }
    }
  }
  // Posting CSR: offsets monotonic and bounded, rows strictly ascending
  // and inside the table, total postings == total row tokens.
  if (token_offsets_.size() != vocab_.size() + 1) return false;
  if (token_offsets_[0] != 0) return false;
  if (token_offsets_[vocab_.size()] != postings_.size()) return false;
  if (postings_.size() != row_tokens_.size()) return false;
  for (size_t t = 0; t < vocab_.size(); ++t) {
    if (token_offsets_[t] > token_offsets_[t + 1]) return false;
    for (size_t k = token_offsets_[t]; k < token_offsets_[t + 1]; ++k) {
      if (postings_[k] >= n) return false;
      if (k > token_offsets_[t] && postings_[k - 1] >= postings_[k]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace wym::blocking
