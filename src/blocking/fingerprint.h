#ifndef WYM_BLOCKING_FINGERPRINT_H_
#define WYM_BLOCKING_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "blocking/inverted_index.h"

/// \file
/// Normalized record fingerprints: the exact-duplicate short-circuit of
/// the candidate-generation tier. Two rows whose descriptions tokenize
/// to the same unique token set (case, punctuation, stop words and
/// token order already canonicalized by the tokenizer + sort/unique)
/// get the same 64-bit fingerprint; a probe that hits emits the
/// duplicate candidates at score 1.0 and skips index and LSH probing
/// for that row entirely. Hash collisions cannot produce false
/// duplicates: every hit is verified against the indexed token-id list
/// before it is emitted.

namespace wym::blocking {

/// FNV-1a 64 over `sorted_tokens` joined with a 0x1F separator. The
/// input must already be sorted and deduplicated (the normalization
/// step that makes the fingerprint order- and repetition-insensitive).
uint64_t FingerprintTokens(const std::vector<std::string>& sorted_tokens);

/// fingerprint -> rows map over an indexed table, stored as a sorted
/// flat array (deterministic; no hash-table iteration anywhere near
/// candidate output).
class FingerprintIndex {
 public:
  FingerprintIndex() = default;

  /// Fingerprints every row of the table behind `index` (token ids map
  /// 1:1 onto sorted token strings, so hashing the id list's tokens
  /// equals hashing the row's normalized tokens).
  void Build(const ShardedInvertedIndex& index);

  /// Appends the rows whose fingerprint equals `fingerprint` to `rows`
  /// in ascending order (no-op on a miss).
  void Lookup(uint64_t fingerprint, std::vector<uint32_t>* rows) const;

  size_t size() const { return entries_.size(); }

 private:
  /// (fingerprint, row), sorted — equal fingerprints are adjacent with
  /// ascending rows.
  std::vector<std::pair<uint64_t, uint32_t>> entries_;
};

}  // namespace wym::blocking

#endif  // WYM_BLOCKING_FINGERPRINT_H_
