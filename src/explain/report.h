#ifndef WYM_EXPLAIN_REPORT_H_
#define WYM_EXPLAIN_REPORT_H_

#include <string>

#include "core/wym.h"

/// \file
/// Human-facing rendering of explanations: the ASCII analogue of the
/// paper's Figure 3 bar charts (relevance and impact scores per decision
/// unit), plus machine-readable JSON export for downstream tooling.

namespace wym::explain {

/// Options for RenderExplanation.
struct ReportOptions {
  /// Render at most this many units (by |impact|); 0 = all.
  size_t max_units = 0;
  /// Width of the bar area in characters (split between the negative and
  /// positive half-axes).
  size_t bar_width = 40;
  /// Render the relevance column next to the impact bars (Figure 3a/3b
  /// vs 3c/3d).
  bool show_relevance = true;
};

/// Renders an explanation as a text bar chart:
///
///   prediction: MATCH (p=0.93)
///   (dslra200w, dslra200w)   0.87 |            ########## | +1.12
///   (kit)                   -0.66 | #####                 | -0.41
///
/// Units are ordered by impact descending (match evidence first).
std::string RenderExplanation(const core::Explanation& explanation,
                              ReportOptions options = {});

/// Serializes an explanation to a single JSON object:
/// {"prediction":1,"probability":0.93,"units":[{"label":...,
///  "paired":true,"phase":"intra","attribute":0,"relevance":...,
///  "impact":...}, ...]}. Strings are escaped per RFC 8259.
std::string ExplanationToJson(const core::Explanation& explanation);

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_REPORT_H_
