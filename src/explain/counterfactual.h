#ifndef WYM_EXPLAIN_COUNTERFACTUAL_H_
#define WYM_EXPLAIN_COUNTERFACTUAL_H_

#include <vector>

#include "core/wym.h"

/// \file
/// Counterfactual explanations over decision units: the smallest set of
/// units whose removal flips the prediction — the complementary view
/// CERTA advocates for EM explanations (paper §2.2). WYM's unit space
/// makes this cheap: units are removed from the scored set and the
/// matcher is re-queried, no text perturbation needed.

namespace wym::explain {

/// A counterfactual for one record.
struct Counterfactual {
  /// Indices (into the explanation's unit list) whose removal flips the
  /// prediction; empty when no flip was found within the budget.
  std::vector<size_t> removed_units;
  /// Prediction and probability after the removal.
  int flipped_prediction = 0;
  double flipped_probability = 0.0;
  bool found = false;
};

/// Options for FindCounterfactual.
struct CounterfactualOptions {
  /// Give up after removing this many units.
  size_t max_removals = 8;
};

/// Greedy counterfactual search: repeatedly removes the unit whose
/// impact pushes hardest toward the current prediction and re-queries
/// the matcher, until the prediction flips or the budget is exhausted.
Counterfactual FindCounterfactual(const core::WymModel& model,
                                  const core::Explanation& explanation,
                                  CounterfactualOptions options = {});

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_COUNTERFACTUAL_H_
