#include "explain/global.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace wym::explain {

GlobalAttribution ComputeGlobalAttribution(const core::WymModel& model,
                                           const data::Dataset& dataset,
                                           size_t top_k) {
  WYM_CHECK(model.fitted());
  GlobalAttribution report;
  report.attributes.assign(model.num_attributes(), AttributeInfluence{});
  for (size_t a = 0; a < report.attributes.size(); ++a) {
    report.attributes[a].attribute = a;
  }

  struct UnitAggregate {
    bool paired = false;
    size_t occurrences = 0;
    double impact_sum = 0.0;
  };
  std::map<std::string, UnitAggregate> units;

  for (const auto& record : dataset.records) {
    const core::Explanation explanation = model.Explain(record);
    ++report.records_analyzed;
    for (const auto& eu : explanation.units) {
      AttributeInfluence& influence =
          report.attributes[std::min(eu.unit.AnchorAttribute(),
                                     report.attributes.size() - 1)];
      influence.mean_absolute_impact += std::fabs(eu.impact);
      influence.mean_impact += eu.impact;
      ++influence.unit_count;

      UnitAggregate& aggregate = units[eu.unit.Label()];
      aggregate.paired = eu.unit.paired;
      ++aggregate.occurrences;
      aggregate.impact_sum += eu.impact;
    }
  }
  for (auto& influence : report.attributes) {
    if (influence.unit_count == 0) continue;
    influence.mean_absolute_impact /=
        static_cast<double>(influence.unit_count);
    influence.mean_impact /= static_cast<double>(influence.unit_count);
  }

  // Recurring units (>= 2 occurrences), ranked by mean impact.
  std::vector<RecurringUnit> recurring;
  for (const auto& [label, aggregate] : units) {
    if (aggregate.occurrences < 2) continue;
    recurring.push_back(
        {label, aggregate.paired, aggregate.occurrences,
         aggregate.impact_sum / static_cast<double>(aggregate.occurrences)});
  }
  std::sort(recurring.begin(), recurring.end(),
            [](const RecurringUnit& a, const RecurringUnit& b) {
              return a.mean_impact > b.mean_impact;
            });
  for (size_t i = 0; i < std::min(top_k, recurring.size()); ++i) {
    if (recurring[i].mean_impact <= 0) break;
    report.top_match_units.push_back(recurring[i]);
  }
  for (size_t i = recurring.size(); i-- > 0;) {
    if (report.top_non_match_units.size() == top_k) break;
    if (recurring[i].mean_impact >= 0) break;
    report.top_non_match_units.push_back(recurring[i]);
  }
  return report;
}

std::string RenderGlobalAttribution(const GlobalAttribution& report,
                                    const data::Schema& schema) {
  std::ostringstream out;
  out << "global attribution over " << report.records_analyzed
      << " records\n\n";

  TablePrinter attributes({"attribute", "units", "mean |impact|",
                           "mean impact"});
  for (const auto& influence : report.attributes) {
    const std::string name =
        influence.attribute < schema.size()
            ? schema.attributes[influence.attribute]
            : "attr" + std::to_string(influence.attribute);
    attributes.AddRow({name, std::to_string(influence.unit_count),
                       strings::FormatDouble(influence.mean_absolute_impact,
                                             4),
                       strings::FormatDouble(influence.mean_impact, 4)});
  }
  out << attributes.ToString();

  auto render_units = [&out](const char* title,
                             const std::vector<RecurringUnit>& units) {
    out << '\n' << title << '\n';
    if (units.empty()) {
      out << "  (none)\n";
      return;
    }
    for (const auto& unit : units) {
      out << "  " << unit.label << "  x" << unit.occurrences
          << "  mean impact " << strings::FormatDouble(unit.mean_impact, 4)
          << '\n';
    }
  };
  render_units("top recurring match evidence:", report.top_match_units);
  render_units("top recurring non-match evidence:",
               report.top_non_match_units);
  return out.str();
}

}  // namespace wym::explain
