#ifndef WYM_EXPLAIN_EVALUATION_H_
#define WYM_EXPLAIN_EVALUATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/wym.h"
#include "explain/landmark.h"
#include "explain/token_explanation.h"

/// \file
/// Quantitative explanation-quality measures of paper §5.2:
///  - conciseness (Pareto cumulative-impact curves, Figure 6),
///  - sufficiency via post-hoc accuracy (Eq. 4, Figure 7),
///  - MoRF / LeRF / Random perturbation curves (Figure 8),
///  - Pearson correlation with Landmark explanations (Figure 9).

namespace wym::explain {

/// Fraction of the total |impact| carried by the top `fraction` of a
/// record's decision units (units sorted by |impact| descending).
double CumulativeImpactShare(const core::Explanation& explanation,
                             double fraction);

/// Figure 6: the average of CumulativeImpactShare over explanations at
/// each requested unit fraction.
std::vector<double> AverageConcisenessCurve(
    const std::vector<core::Explanation>& explanations,
    const std::vector<double>& fractions);

/// Eq. 4 / Figure 7, WYM as its own explainer: the prediction made from
/// only the top `top_v` impact units is compared with the full-input
/// prediction; returns the agreement rate over the dataset.
double PostHocAccuracyWym(const core::WymModel& model,
                          const data::Dataset& test, size_t top_v);

/// A post-hoc explanation provider for a black-box matcher.
using TokenExplainFn =
    std::function<TokenLevelExplanation(const data::EmRecord&)>;

/// Eq. 4 / Figure 7 for token-level explainers (WYM+LIME, DITTO+LIME,
/// DITTO+LEMON-style single-token granularity): keeps the `top_v` tokens
/// ranked toward the prediction, rebuilds the record, re-predicts and
/// compares with the full-input prediction.
double PostHocAccuracyTokens(const core::Matcher& matcher,
                             const data::Dataset& test,
                             const TokenExplainFn& explain, size_t top_v);

/// Unit-removal strategies of Figure 8.
enum class RemovalStrategy { kMoRF, kLeRF, kRandom };

/// Printable strategy name.
const char* RemovalStrategyName(RemovalStrategy strategy);

/// Figure 8: F1 of the model on `test` after removing `k` decision units
/// per record. MoRF removes the units contributing most to the record's
/// ground-truth class (highest impact for matches, lowest for
/// non-matches); LeRF the least; kRandom draws uniformly with `seed`.
double F1AfterUnitRemoval(const core::WymModel& model,
                          const data::Dataset& test,
                          RemovalStrategy strategy, size_t k, uint64_t seed);

/// Figure 9: per-record Pearson correlations between WYM's unit impacts
/// and Landmark's token attributions merged to unit granularity
/// (token weights of a paired unit are averaged). Records with fewer
/// than 3 units are skipped.
std::vector<double> UnitLandmarkCorrelations(const core::WymModel& model,
                                             const LandmarkExplainer& landmark,
                                             const data::Dataset& sample);

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_EVALUATION_H_
