#include "explain/token_explanation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace wym::explain {

std::vector<size_t> TokenLevelExplanation::RankByMagnitude() const {
  std::vector<size_t> order(weights.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return std::fabs(weights[a].weight) > std::fabs(weights[b].weight);
  });
  return order;
}

std::vector<TokenKey> EnumerateTokens(const data::EmRecord& record,
                                      const text::Tokenizer& tokenizer) {
  std::vector<TokenKey> out;
  auto enumerate = [&](const data::Entity& entity, core::Side side) {
    for (size_t attr = 0; attr < entity.values.size(); ++attr) {
      const auto tokens = tokenizer.Tokenize(entity.values[attr]);
      for (size_t i = 0; i < tokens.size(); ++i) {
        out.push_back({side, attr, i, tokens[i]});
      }
    }
  };
  enumerate(record.left, core::Side::kLeft);
  enumerate(record.right, core::Side::kRight);
  return out;
}

data::EmRecord MaskRecord(const data::EmRecord& record,
                          const std::vector<TokenKey>& tokens,
                          const std::vector<bool>& mask) {
  WYM_CHECK_EQ(tokens.size(), mask.size());
  data::EmRecord out;
  out.label = record.label;
  out.left.values.assign(record.left.values.size(), "");
  out.right.values.assign(record.right.values.size(), "");
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!mask[i]) continue;
    const TokenKey& key = tokens[i];
    data::Entity& entity =
        key.side == core::Side::kLeft ? out.left : out.right;
    WYM_CHECK_LT(key.attribute, entity.values.size());
    std::string& value = entity.values[key.attribute];
    if (!value.empty()) value += " ";
    value += key.token;
  }
  return out;
}

}  // namespace wym::explain
