#ifndef WYM_EXPLAIN_LANDMARK_H_
#define WYM_EXPLAIN_LANDMARK_H_

#include <cstdint>

#include "core/matcher.h"
#include "explain/token_explanation.h"

/// \file
/// Landmark Explanation stand-in (Baraldi et al., CIKM 2021): the
/// post-hoc EM explainer the paper compares WYM against in Figure 9.
/// Unlike plain LIME, Landmark perturbs *one* entity description at a
/// time while the other acts as a fixed landmark, producing per-entity
/// token attributions that respect the pairwise structure of EM records.

namespace wym::explain {

/// Options for LandmarkExplainer.
struct LandmarkOptions {
  /// Perturbations generated per entity (the paper's experiment uses 100).
  size_t num_samples = 100;
  double dropout = 0.3;
  double kernel_width = 0.35;
  double ridge = 1e-3;
  uint64_t seed = 0x1A2D;
};

/// Landmark-style post-hoc explainer.
class LandmarkExplainer {
 public:
  using Options = LandmarkOptions;

  explicit LandmarkExplainer(Options options = {});

  /// Explains `matcher` on `record`: left-entity tokens are attributed
  /// with the right entity as landmark and vice versa; the two halves are
  /// concatenated.
  TokenLevelExplanation Explain(const core::Matcher& matcher,
                                const data::EmRecord& record) const;

 private:
  /// One landmark pass: perturb only `perturbed_side`.
  void ExplainSide(const core::Matcher& matcher,
                   const data::EmRecord& record, core::Side perturbed_side,
                   TokenLevelExplanation* out) const;

  Options options_;
  text::Tokenizer tokenizer_;
};

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_LANDMARK_H_
