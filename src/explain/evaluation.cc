#include "explain/evaluation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "ml/metrics.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace wym::explain {

namespace {

/// Unit indices ranked by signed impact toward class `label`:
/// descending impact for label 1, ascending for label 0.
std::vector<size_t> RankTowardClass(const core::Explanation& explanation,
                                    int label) {
  std::vector<size_t> order(explanation.units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ia = explanation.units[a].impact;
    const double ib = explanation.units[b].impact;
    return label == 1 ? ia > ib : ia < ib;
  });
  return order;
}

core::ScoredUnitSet SubsetUnits(const core::Explanation& explanation,
                                const std::vector<size_t>& keep) {
  core::ScoredUnitSet set;
  set.units.reserve(keep.size());
  set.scores.reserve(keep.size());
  for (size_t u : keep) {
    set.units.push_back(explanation.units[u].unit);
    set.scores.push_back(explanation.units[u].relevance);
  }
  return set;
}

}  // namespace

double CumulativeImpactShare(const core::Explanation& explanation,
                             double fraction) {
  if (explanation.units.empty()) return 1.0;
  double total = 0.0;
  for (const auto& unit : explanation.units) {
    total += std::fabs(unit.impact);
  }
  if (total <= 0.0) return 1.0;

  const std::vector<size_t> order = explanation.RankByImpactMagnitude();
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(fraction * static_cast<double>(order.size()))));
  double cumulative = 0.0;
  for (size_t i = 0; i < std::min(keep, order.size()); ++i) {
    cumulative += std::fabs(explanation.units[order[i]].impact);
  }
  return cumulative / total;
}

std::vector<double> AverageConcisenessCurve(
    const std::vector<core::Explanation>& explanations,
    const std::vector<double>& fractions) {
  std::vector<double> curve;
  curve.reserve(fractions.size());
  for (double fraction : fractions) {
    std::vector<double> shares;
    shares.reserve(explanations.size());
    for (const auto& explanation : explanations) {
      if (explanation.units.empty()) continue;
      shares.push_back(CumulativeImpactShare(explanation, fraction));
    }
    curve.push_back(stats::Mean(shares));
  }
  return curve;
}

double PostHocAccuracyWym(const core::WymModel& model,
                          const data::Dataset& test, size_t top_v) {
  WYM_CHECK_GT(test.size(), 0u);
  size_t agree = 0;
  for (const auto& record : test.records) {
    const core::Explanation explanation = model.Explain(record);
    const std::vector<size_t> order =
        RankTowardClass(explanation, explanation.prediction);
    std::vector<size_t> keep(
        order.begin(),
        order.begin() +
            std::min(top_v, order.size()));
    const double proba =
        explanation.units.empty()
            ? explanation.probability
            : model.PredictProbaFromUnits(SubsetUnits(explanation, keep));
    const int subset_prediction = proba >= 0.5 ? 1 : 0;
    if (subset_prediction == explanation.prediction) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(test.size());
}

double PostHocAccuracyTokens(const core::Matcher& matcher,
                             const data::Dataset& test,
                             const TokenExplainFn& explain, size_t top_v) {
  WYM_CHECK_GT(test.size(), 0u);
  size_t agree = 0;
  for (const auto& record : test.records) {
    const int full_prediction = matcher.Predict(record);
    const TokenLevelExplanation explanation = explain(record);

    // Rank tokens toward the prediction.
    std::vector<size_t> order(explanation.weights.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const double wa = explanation.weights[a].weight;
      const double wb = explanation.weights[b].weight;
      return full_prediction == 1 ? wa > wb : wa < wb;
    });

    std::vector<TokenKey> tokens;
    tokens.reserve(explanation.weights.size());
    for (const auto& tw : explanation.weights) tokens.push_back(tw.key);
    std::vector<bool> keep(tokens.size(), false);
    for (size_t i = 0; i < std::min(top_v, order.size()); ++i) {
      keep[order[i]] = true;
    }
    const data::EmRecord masked = MaskRecord(record, tokens, keep);
    if (matcher.Predict(masked) == full_prediction) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(test.size());
}

const char* RemovalStrategyName(RemovalStrategy strategy) {
  switch (strategy) {
    case RemovalStrategy::kMoRF:
      return "MoRF";
    case RemovalStrategy::kLeRF:
      return "LeRF";
    case RemovalStrategy::kRandom:
      return "Random";
  }
  return "?";
}

double F1AfterUnitRemoval(const core::WymModel& model,
                          const data::Dataset& test,
                          RemovalStrategy strategy, size_t k, uint64_t seed) {
  WYM_CHECK_GT(test.size(), 0u);
  Rng rng(seed);
  std::vector<int> truth, predicted;
  truth.reserve(test.size());
  predicted.reserve(test.size());
  for (const auto& record : test.records) {
    const core::Explanation explanation = model.Explain(record);
    std::vector<size_t> order;
    switch (strategy) {
      case RemovalStrategy::kMoRF:
        order = RankTowardClass(explanation, record.label);
        break;
      case RemovalStrategy::kLeRF: {
        order = RankTowardClass(explanation, record.label);
        std::reverse(order.begin(), order.end());
        break;
      }
      case RemovalStrategy::kRandom: {
        order.resize(explanation.units.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        rng.Shuffle(&order);
        break;
      }
    }
    // Keep everything after the first k ranked units.
    std::vector<size_t> keep(
        order.begin() + std::min(k, order.size()), order.end());
    const double proba =
        keep.empty()
            ? 0.0  // Nothing left to support a match.
            : model.PredictProbaFromUnits(SubsetUnits(explanation, keep));
    truth.push_back(record.label);
    predicted.push_back(proba >= 0.5 ? 1 : 0);
  }
  return ml::F1Score(truth, predicted);
}

std::vector<double> UnitLandmarkCorrelations(const core::WymModel& model,
                                             const LandmarkExplainer& landmark,
                                             const data::Dataset& sample) {
  std::vector<double> correlations;
  for (const auto& record : sample.records) {
    const core::Explanation wym_explanation = model.Explain(record);
    if (wym_explanation.units.size() < 3) continue;
    const TokenLevelExplanation lm = landmark.Explain(model, record);

    // Landmark weights keyed by (side, attribute, index-in-attribute).
    std::map<std::tuple<int, size_t, size_t>, double> token_weight;
    for (const auto& tw : lm.weights) {
      token_weight[{tw.key.side == core::Side::kLeft ? 0 : 1,
                    tw.key.attribute, tw.key.index}] = tw.weight;
    }

    // Convert the model's flat token positions to in-attribute indices.
    const core::TokenizedRecord tokenized = model.Prepare(record);
    auto in_attr_index = [](const core::TokenizedEntity& entity,
                            size_t flat) {
      size_t index = 0;
      for (size_t i = 0; i < flat; ++i) {
        if (entity.attribute_of[i] == entity.attribute_of[flat]) ++index;
      }
      return index;
    };

    std::vector<double> wym_scores, lm_scores;
    for (const auto& eu : wym_explanation.units) {
      double sum = 0.0;
      size_t found = 0;
      if (eu.unit.paired || eu.unit.unpaired_side == core::Side::kLeft) {
        auto it = token_weight.find(
            {0, eu.unit.left.attribute,
             in_attr_index(tokenized.left, eu.unit.left.position)});
        if (it != token_weight.end()) {
          sum += it->second;
          ++found;
        }
      }
      if (eu.unit.paired || eu.unit.unpaired_side == core::Side::kRight) {
        auto it = token_weight.find(
            {1, eu.unit.right.attribute,
             in_attr_index(tokenized.right, eu.unit.right.position)});
        if (it != token_weight.end()) {
          sum += it->second;
          ++found;
        }
      }
      if (found == 0) continue;
      wym_scores.push_back(eu.impact);
      lm_scores.push_back(sum / static_cast<double>(found));
    }
    if (wym_scores.size() < 3) continue;
    correlations.push_back(stats::Pearson(wym_scores, lm_scores));
  }
  return correlations;
}

}  // namespace wym::explain
