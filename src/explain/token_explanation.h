#ifndef WYM_EXPLAIN_TOKEN_EXPLANATION_H_
#define WYM_EXPLAIN_TOKEN_EXPLANATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/decision_unit.h"
#include "data/record.h"
#include "text/tokenizer.h"

/// \file
/// Token-level (feature-based) explanations: the representation produced
/// by the post-hoc explainers (LIME, Landmark). Tokens are addressed by
/// (side, attribute, index-within-attribute) so records can be rebuilt
/// with token subsets for the sufficiency experiments.

namespace wym::explain {

/// Address of one token inside a record.
struct TokenKey {
  core::Side side = core::Side::kLeft;
  size_t attribute = 0;
  size_t index = 0;  ///< Position within the attribute's token list.
  std::string token;
};

/// One token's attribution weight.
struct TokenWeight {
  TokenKey key;
  double weight = 0.0;
};

/// A post-hoc, feature-based explanation of one prediction.
struct TokenLevelExplanation {
  /// Matching probability of the unperturbed record.
  double base_probability = 0.0;
  std::vector<TokenWeight> weights;

  /// Indices of `weights` sorted by |weight| descending.
  std::vector<size_t> RankByMagnitude() const;
};

/// Tokenizes every attribute of a record into addressable tokens.
std::vector<TokenKey> EnumerateTokens(const data::EmRecord& record,
                                      const text::Tokenizer& tokenizer);

/// Rebuilds a record keeping only the tokens whose mask bit is true.
/// `tokens` and `mask` are parallel; attributes with no kept token become
/// empty strings.
data::EmRecord MaskRecord(const data::EmRecord& record,
                          const std::vector<TokenKey>& tokens,
                          const std::vector<bool>& mask);

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_TOKEN_EXPLANATION_H_
