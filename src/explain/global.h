#ifndef WYM_EXPLAIN_GLOBAL_H_
#define WYM_EXPLAIN_GLOBAL_H_

#include <string>
#include <vector>

#include "core/wym.h"

/// \file
/// Global (dataset-level) interpretability on top of WYM's local
/// explanations: aggregates unit impacts across a dataset to answer
/// "which attributes drive this matcher?" (the attribute-level view CERTA
/// advocates — paper §2.2) and "which recurring decision units carry the
/// most evidence?". Consumed by `wym_cli stats` and the analysis example.

namespace wym::explain {

/// Aggregated influence of one schema attribute.
struct AttributeInfluence {
  size_t attribute = 0;
  /// Mean |impact| per unit anchored at this attribute.
  double mean_absolute_impact = 0.0;
  /// Mean signed impact (positive = the attribute mostly pushes match).
  double mean_impact = 0.0;
  /// Units observed at this attribute across the dataset.
  size_t unit_count = 0;
};

/// One recurring decision unit with aggregate impact.
struct RecurringUnit {
  std::string label;     ///< "(sony, sony)" / "(eng)".
  bool paired = false;
  size_t occurrences = 0;
  double mean_impact = 0.0;
};

/// The global attribution report.
struct GlobalAttribution {
  /// Per-attribute influence, index-aligned to the schema.
  std::vector<AttributeInfluence> attributes;
  /// Most match-pushing recurring units (mean impact desc, min 2 occ.).
  std::vector<RecurringUnit> top_match_units;
  /// Most non-match-pushing recurring units (mean impact asc).
  std::vector<RecurringUnit> top_non_match_units;
  size_t records_analyzed = 0;
};

/// Explains every record of `dataset` with `model` and aggregates.
/// `top_k` bounds the recurring-unit lists.
GlobalAttribution ComputeGlobalAttribution(const core::WymModel& model,
                                           const data::Dataset& dataset,
                                           size_t top_k = 10);

/// Renders the report as aligned text (attribute table + unit lists).
/// `schema` supplies attribute names.
std::string RenderGlobalAttribution(const GlobalAttribution& report,
                                    const data::Schema& schema);

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_GLOBAL_H_
