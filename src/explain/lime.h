#ifndef WYM_EXPLAIN_LIME_H_
#define WYM_EXPLAIN_LIME_H_

#include <cstdint>

#include "core/matcher.h"
#include "explain/token_explanation.h"

/// \file
/// LIME for EM (Ribeiro et al. 2016, as applied by Mojito/DITTO analyses):
/// samples token-dropout perturbations of the record, queries the
/// black-box matcher, and fits a locally-weighted ridge regression whose
/// coefficients are the token attributions. Used in Figure 7 to explain
/// both WYM and the DITTO stand-in post hoc.

namespace wym::explain {

/// Options for LimeExplainer.
struct LimeOptions {
  /// Number of perturbation samples per explanation (the paper configures
  /// Landmark with 100 perturbations per entity; LIME uses the same
  /// order).
  size_t num_samples = 100;
  /// Per-token dropout probability when sampling a perturbation.
  double dropout = 0.3;
  /// Exponential kernel width over the dropped-token fraction.
  double kernel_width = 0.35;
  /// Ridge regularization of the local linear model.
  double ridge = 1e-3;
  uint64_t seed = 0x11ED;
};

/// Post-hoc token-level explainer for any Matcher.
class LimeExplainer {
 public:
  using Options = LimeOptions;

  explicit LimeExplainer(Options options = {});

  /// Explains one prediction of `matcher` on `record`.
  TokenLevelExplanation Explain(const core::Matcher& matcher,
                                const data::EmRecord& record) const;

 private:
  Options options_;
  text::Tokenizer tokenizer_;
};

}  // namespace wym::explain

#endif  // WYM_EXPLAIN_LIME_H_
