#include "explain/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace wym::explain {

namespace {

const char* PhaseName(core::UnitPhase phase) {
  switch (phase) {
    case core::UnitPhase::kIntraAttribute:
      return "intra";
    case core::UnitPhase::kInterAttribute:
      return "inter";
    case core::UnitPhase::kOneToMany:
      return "one-to-many";
    case core::UnitPhase::kUnpaired:
      return "unpaired";
  }
  return "?";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderExplanation(const core::Explanation& explanation,
                              ReportOptions options) {
  std::ostringstream out;
  out << "prediction: " << (explanation.prediction == 1 ? "MATCH" : "NO MATCH")
      << " (p=" << strings::FormatDouble(explanation.probability, 3) << ")\n";
  if (explanation.units.empty()) {
    out << "  (no decision units)\n";
    return out.str();
  }

  // Order: impact descending, so match evidence reads first (Figure 3).
  std::vector<size_t> order(explanation.units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return explanation.units[a].impact > explanation.units[b].impact;
  });
  if (options.max_units > 0 && order.size() > options.max_units) {
    // Keep the strongest by magnitude, preserving the signed ordering.
    std::vector<size_t> by_magnitude = explanation.RankByImpactMagnitude();
    by_magnitude.resize(options.max_units);
    std::vector<size_t> kept;
    for (size_t index : order) {
      if (std::find(by_magnitude.begin(), by_magnitude.end(), index) !=
          by_magnitude.end()) {
        kept.push_back(index);
      }
    }
    order = std::move(kept);
  }

  double max_impact = 1e-9;
  size_t label_width = 0;
  for (size_t index : order) {
    max_impact =
        std::max(max_impact, std::fabs(explanation.units[index].impact));
    label_width =
        std::max(label_width, explanation.units[index].unit.Label().size());
  }

  const size_t half = std::max<size_t>(4, options.bar_width / 2);
  for (size_t index : order) {
    const auto& unit = explanation.units[index];
    const std::string label = unit.unit.Label();
    out << "  " << label
        << std::string(label_width - label.size(), ' ');
    if (options.show_relevance) {
      const std::string relevance =
          strings::FormatDouble(unit.relevance, 2);
      out << ' ' << std::string(6 - std::min<size_t>(6, relevance.size()),
                                ' ')
          << relevance;
    }
    const size_t bar = static_cast<size_t>(
        std::lround(std::fabs(unit.impact) / max_impact *
                    static_cast<double>(half)));
    out << " |";
    if (unit.impact < 0) {
      out << std::string(half - bar, ' ') << std::string(bar, '#')
          << '|' << std::string(half, ' ');
    } else {
      out << std::string(half, ' ') << '|' << std::string(bar, '#')
          << std::string(half - bar, ' ');
    }
    out << "| " << (unit.impact >= 0 ? "+" : "")
        << strings::FormatDouble(unit.impact, 3) << "\n";
  }
  return out.str();
}

std::string ExplanationToJson(const core::Explanation& explanation) {
  std::ostringstream out;
  out << "{\"prediction\":" << explanation.prediction
      << ",\"probability\":"
      << strings::FormatDouble(explanation.probability, 6)
      << ",\"units\":[";
  for (size_t u = 0; u < explanation.units.size(); ++u) {
    const auto& eu = explanation.units[u];
    if (u > 0) out << ',';
    out << "{\"label\":\"" << JsonEscape(eu.unit.Label()) << "\""
        << ",\"paired\":" << (eu.unit.paired ? "true" : "false")
        << ",\"phase\":\"" << PhaseName(eu.unit.phase) << "\""
        << ",\"attribute\":" << eu.unit.AnchorAttribute();
    if (eu.unit.paired) {
      out << ",\"left\":\"" << JsonEscape(eu.unit.left.token) << "\""
          << ",\"right\":\"" << JsonEscape(eu.unit.right.token) << "\"";
    } else {
      out << ",\"token\":\"" << JsonEscape(eu.unit.UnpairedToken().token)
          << "\",\"side\":\""
          << (eu.unit.unpaired_side == core::Side::kLeft ? "left" : "right")
          << "\"";
    }
    out << ",\"relevance\":" << strings::FormatDouble(eu.relevance, 6)
        << ",\"impact\":" << strings::FormatDouble(eu.impact, 6) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace wym::explain
