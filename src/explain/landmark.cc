#include "explain/landmark.h"

#include <cmath>

#include "la/matrix.h"
#include "util/random.h"

namespace wym::explain {

LandmarkExplainer::LandmarkExplainer(Options options) : options_(options) {}

void LandmarkExplainer::ExplainSide(const core::Matcher& matcher,
                                    const data::EmRecord& record,
                                    core::Side perturbed_side,
                                    TokenLevelExplanation* out) const {
  const std::vector<TokenKey> all_tokens =
      EnumerateTokens(record, tokenizer_);
  // Indices of the tokens on the perturbed side.
  std::vector<size_t> side_tokens;
  for (size_t t = 0; t < all_tokens.size(); ++t) {
    if (all_tokens[t].side == perturbed_side) side_tokens.push_back(t);
  }
  if (side_tokens.empty()) return;

  Rng rng(options_.seed ^
          (perturbed_side == core::Side::kLeft ? 0x11ull : 0x22ull));
  std::vector<std::vector<int>> masks;
  std::vector<double> responses;
  std::vector<double> weights;

  masks.emplace_back(side_tokens.size(), 1);
  responses.push_back(out->base_probability);
  weights.push_back(1.0);

  for (size_t s = 0; s < options_.num_samples; ++s) {
    std::vector<int> mask(side_tokens.size(), 1);
    std::vector<bool> keep(all_tokens.size(), true);  // Landmark intact.
    size_t dropped = 0;
    for (size_t i = 0; i < side_tokens.size(); ++i) {
      if (rng.Bernoulli(options_.dropout)) {
        mask[i] = 0;
        keep[side_tokens[i]] = false;
        ++dropped;
      }
    }
    const data::EmRecord perturbed = MaskRecord(record, all_tokens, keep);
    responses.push_back(matcher.PredictProba(perturbed));
    const double distance = static_cast<double>(dropped) /
                            static_cast<double>(side_tokens.size());
    weights.push_back(std::exp(-(distance * distance) /
                               (options_.kernel_width *
                                options_.kernel_width)));
    masks.push_back(std::move(mask));
  }

  // Weighted ridge via the normal equations (duplicated from lime.cc to
  // keep the explainers independent; both are tiny).
  const size_t n = masks.size();
  const size_t d = side_tokens.size();
  double w_total = 0.0, y_mean = 0.0;
  std::vector<double> x_mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    w_total += weights[i];
    y_mean += weights[i] * responses[i];
    for (size_t j = 0; j < d; ++j) x_mean[j] += weights[i] * masks[i][j];
  }
  y_mean /= w_total;
  for (double& m : x_mean) m /= w_total;
  la::Matrix xtx(d, d);
  std::vector<double> xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    const double dy = responses[i] - y_mean;
    for (size_t a = 0; a < d; ++a) {
      const double da = masks[i][a] - x_mean[a];
      if (da == 0.0) continue;
      xty[a] += w * da * dy;
      for (size_t b = a; b < d; ++b) {
        xtx.At(a, b) += w * da * (masks[i][b] - x_mean[b]);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) xtx.At(a, b) = xtx.At(b, a);
  }
  const std::vector<double> beta =
      la::SolveLinearSystem(std::move(xtx), std::move(xty), options_.ridge);

  for (size_t i = 0; i < side_tokens.size(); ++i) {
    out->weights.push_back({all_tokens[side_tokens[i]], beta[i]});
  }
}

TokenLevelExplanation LandmarkExplainer::Explain(
    const core::Matcher& matcher, const data::EmRecord& record) const {
  TokenLevelExplanation out;
  out.base_probability = matcher.PredictProba(record);
  ExplainSide(matcher, record, core::Side::kLeft, &out);
  ExplainSide(matcher, record, core::Side::kRight, &out);
  return out;
}

}  // namespace wym::explain
