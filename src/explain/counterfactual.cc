#include "explain/counterfactual.h"

#include <algorithm>

#include "util/logging.h"

namespace wym::explain {

Counterfactual FindCounterfactual(const core::WymModel& model,
                                  const core::Explanation& explanation,
                                  CounterfactualOptions options) {
  Counterfactual out;
  if (explanation.units.empty()) return out;
  const int original = explanation.prediction;

  // Units ranked by how strongly they support the current prediction.
  std::vector<size_t> order(explanation.units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ia = explanation.units[a].impact;
    const double ib = explanation.units[b].impact;
    return original == 1 ? ia > ib : ia < ib;
  });

  std::vector<bool> removed(explanation.units.size(), false);
  for (size_t step = 0;
       step < std::min(options.max_removals, order.size()); ++step) {
    removed[order[step]] = true;
    out.removed_units.push_back(order[step]);

    core::ScoredUnitSet remaining;
    for (size_t u = 0; u < explanation.units.size(); ++u) {
      if (removed[u]) continue;
      remaining.units.push_back(explanation.units[u].unit);
      remaining.scores.push_back(explanation.units[u].relevance);
    }
    const double proba = remaining.units.empty()
                             ? 0.0
                             : model.PredictProbaFromUnits(remaining);
    const int prediction = proba >= 0.5 ? 1 : 0;
    if (prediction != original) {
      out.found = true;
      out.flipped_prediction = prediction;
      out.flipped_probability = proba;
      return out;
    }
  }
  out.removed_units.clear();  // Budget exhausted without a flip.
  return out;
}

}  // namespace wym::explain
