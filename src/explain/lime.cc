#include "explain/lime.h"

#include <cmath>

#include "la/matrix.h"
#include "util/random.h"

namespace wym::explain {

namespace {

/// Weighted ridge regression beta = (X'WX + ridge I)^-1 X'W y.
/// X is n x d (with an implicit intercept handled by centering y).
std::vector<double> WeightedRidge(const std::vector<std::vector<int>>& masks,
                                  const std::vector<double>& y,
                                  const std::vector<double>& weights,
                                  double ridge) {
  const size_t n = masks.size();
  const size_t d = n == 0 ? 0 : masks[0].size();
  if (d == 0) return {};

  // Weighted means for centering.
  double w_total = 0.0, y_mean = 0.0;
  std::vector<double> x_mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    w_total += weights[i];
    y_mean += weights[i] * y[i];
    for (size_t j = 0; j < d; ++j) x_mean[j] += weights[i] * masks[i][j];
  }
  if (w_total <= 0.0) return std::vector<double>(d, 0.0);
  y_mean /= w_total;
  for (double& m : x_mean) m /= w_total;

  la::Matrix xtx(d, d);
  std::vector<double> xty(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    const double dy = y[i] - y_mean;
    for (size_t a = 0; a < d; ++a) {
      const double da = masks[i][a] - x_mean[a];
      if (da == 0.0) continue;
      xty[a] += w * da * dy;
      for (size_t b = a; b < d; ++b) {
        xtx.At(a, b) += w * da * (masks[i][b] - x_mean[b]);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) xtx.At(a, b) = xtx.At(b, a);
  }
  return la::SolveLinearSystem(std::move(xtx), std::move(xty), ridge);
}

}  // namespace

LimeExplainer::LimeExplainer(Options options) : options_(options) {}

TokenLevelExplanation LimeExplainer::Explain(
    const core::Matcher& matcher, const data::EmRecord& record) const {
  TokenLevelExplanation out;
  out.base_probability = matcher.PredictProba(record);

  const std::vector<TokenKey> tokens = EnumerateTokens(record, tokenizer_);
  if (tokens.empty()) return out;

  Rng rng(options_.seed);
  std::vector<std::vector<int>> masks;
  std::vector<double> responses;
  std::vector<double> weights;
  masks.reserve(options_.num_samples + 1);

  // The unperturbed sample anchors the regression.
  masks.emplace_back(tokens.size(), 1);
  responses.push_back(out.base_probability);
  weights.push_back(1.0);

  for (size_t s = 0; s < options_.num_samples; ++s) {
    std::vector<int> mask(tokens.size(), 1);
    std::vector<bool> keep(tokens.size(), true);
    size_t dropped = 0;
    for (size_t t = 0; t < tokens.size(); ++t) {
      if (rng.Bernoulli(options_.dropout)) {
        mask[t] = 0;
        keep[t] = false;
        ++dropped;
      }
    }
    const data::EmRecord perturbed = MaskRecord(record, tokens, keep);
    responses.push_back(matcher.PredictProba(perturbed));
    const double distance =
        static_cast<double>(dropped) / static_cast<double>(tokens.size());
    weights.push_back(std::exp(-(distance * distance) /
                               (options_.kernel_width *
                                options_.kernel_width)));
    masks.push_back(std::move(mask));
  }

  const std::vector<double> beta =
      WeightedRidge(masks, responses, weights, options_.ridge);
  out.weights.reserve(tokens.size());
  for (size_t t = 0; t < tokens.size(); ++t) {
    out.weights.push_back({tokens[t], beta[t]});
  }
  return out;
}

}  // namespace wym::explain
