#ifndef WYM_MATCHING_STABLE_MARRIAGE_H_
#define WYM_MATCHING_STABLE_MARRIAGE_H_

#include <vector>

#include "la/matrix.h"

/// \file
/// The relaxed stable-marriage assignment of the paper's `GetSMPairs`
/// (§4.1.2): Gale-Shapley over preference lists defined by continuous
/// similarities, truncated at a threshold, with variable-length lists.
/// Both sides rank candidates by the same symmetric similarity, so the
/// returned matching is stable and one-to-one; unmatchable elements
/// (no candidate above the threshold) stay single.

namespace wym::matching {

/// One assignment produced by StableMarriage.
struct MatchedPair {
  size_t left;        ///< Row index into the similarity matrix.
  size_t right;       ///< Column index.
  double similarity;  ///< similarity.At(left, right).
};

/// Runs proposer-side Gale-Shapley on a dense left x right similarity
/// matrix. A candidate enters a preference list only when its similarity
/// is >= `threshold`. Ties are broken toward the lower index, making the
/// output deterministic. Complexity O(L*R log R) for the list build plus
/// O(L*R) proposals (the O(n^2) the paper cites).
std::vector<MatchedPair> StableMarriage(const la::Matrix& similarity,
                                        double threshold);

/// Verification helper (used by tests): true when no unmatched-but-mutually
/// -preferring pair exists, i.e. the classic stability condition holds for
/// the matching under symmetric preferences.
bool IsStableMatching(const la::Matrix& similarity, double threshold,
                      const std::vector<MatchedPair>& matching);

}  // namespace wym::matching

#endif  // WYM_MATCHING_STABLE_MARRIAGE_H_
