#include "matching/stable_marriage.h"

#include <algorithm>

#include "util/logging.h"

namespace wym::matching {

std::vector<MatchedPair> StableMarriage(const la::Matrix& similarity,
                                        double threshold) {
  const size_t n_left = similarity.rows();
  const size_t n_right = similarity.cols();
  if (n_left == 0 || n_right == 0) return {};

  // Preference lists for the proposing (left) side: candidates above the
  // threshold, best first; ties toward the lower column index.
  std::vector<std::vector<size_t>> preferences(n_left);
  for (size_t l = 0; l < n_left; ++l) {
    auto& prefs = preferences[l];
    for (size_t r = 0; r < n_right; ++r) {
      if (similarity.At(l, r) >= threshold) prefs.push_back(r);
    }
    std::stable_sort(prefs.begin(), prefs.end(), [&](size_t a, size_t b) {
      return similarity.At(l, a) > similarity.At(l, b);
    });
  }

  // engaged_to[r] = left currently engaged to right r (or npos).
  constexpr size_t kFree = static_cast<size_t>(-1);
  std::vector<size_t> engaged_to(n_right, kFree);
  std::vector<size_t> next_proposal(n_left, 0);
  std::vector<size_t> queue;  // Free lefts with proposals remaining.
  for (size_t l = 0; l < n_left; ++l) queue.push_back(l);

  while (!queue.empty()) {
    const size_t l = queue.back();
    queue.pop_back();
    bool engaged = false;
    while (next_proposal[l] < preferences[l].size()) {
      const size_t r = preferences[l][next_proposal[l]++];
      const size_t current = engaged_to[r];
      if (current == kFree) {
        engaged_to[r] = l;
        engaged = true;
        break;
      }
      // Right side prefers the higher similarity; on ties the incumbent
      // (lower arrival) stays, keeping determinism.
      if (similarity.At(l, r) > similarity.At(current, r)) {
        engaged_to[r] = l;
        queue.push_back(current);
        engaged = true;
        break;
      }
    }
    (void)engaged;  // Lefts that exhaust their list simply stay single.
  }

  std::vector<MatchedPair> matching;
  for (size_t r = 0; r < n_right; ++r) {
    if (engaged_to[r] == kFree) continue;
    matching.push_back({engaged_to[r], r, similarity.At(engaged_to[r], r)});
  }
  // Deterministic output order: by left index.
  std::sort(matching.begin(), matching.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              return a.left < b.left;
            });
  return matching;
}

bool IsStableMatching(const la::Matrix& similarity, double threshold,
                      const std::vector<MatchedPair>& matching) {
  const size_t n_left = similarity.rows();
  const size_t n_right = similarity.cols();
  constexpr size_t kFree = static_cast<size_t>(-1);
  std::vector<size_t> left_partner(n_left, kFree);
  std::vector<size_t> right_partner(n_right, kFree);
  for (const auto& pair : matching) {
    WYM_CHECK_LT(pair.left, n_left);
    WYM_CHECK_LT(pair.right, n_right);
    if (left_partner[pair.left] != kFree) return false;   // One-to-one.
    if (right_partner[pair.right] != kFree) return false;
    left_partner[pair.left] = pair.right;
    right_partner[pair.right] = pair.left;
  }

  auto left_current = [&](size_t l) {
    return left_partner[l] == kFree
               ? -1.0
               : similarity.At(l, left_partner[l]);
  };
  auto right_current = [&](size_t r) {
    return right_partner[r] == kFree
               ? -1.0
               : similarity.At(right_partner[r], r);
  };

  // A blocking pair is (l, r) above threshold where both strictly prefer
  // each other to their current situation.
  for (size_t l = 0; l < n_left; ++l) {
    for (size_t r = 0; r < n_right; ++r) {
      const double s = similarity.At(l, r);
      if (s < threshold) continue;
      if (s > left_current(l) && s > right_current(r)) return false;
    }
  }
  return true;
}

}  // namespace wym::matching
