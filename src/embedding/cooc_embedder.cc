#include "embedding/cooc_embedder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "la/eigen.h"
#include "la/sparse_matrix.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace wym::embedding {

CoocEmbedder::CoocEmbedder(Options options) : options_(options) {}

void CoocEmbedder::Fit(const std::vector<std::vector<std::string>>& sentences) {
  WYM_CHECK(!fitted_) << "CoocEmbedder::Fit called twice";

  // Pass 1: vocabulary with counts.
  {
    obs::SpanScope span("encoder.vocab_pass");
    for (const auto& sentence : sentences) {
      for (const auto& token : sentence) vocab_.Add(token);
    }
  }

  // Select kept vocabulary: frequent tokens, capped.
  kept_id_.assign(vocab_.size(), -1);
  std::vector<int32_t> kept;
  for (int32_t id : vocab_.TopK(options_.max_vocab)) {
    if (vocab_.CountOf(id) < options_.min_count) continue;
    kept_id_[id] = static_cast<int32_t>(kept.size());
    kept.push_back(id);
  }
  const size_t n = kept.size();
  if (n == 0) {
    fitted_ = true;
    return;
  }

  // Pass 2: windowed co-occurrence counts (distance-discounted), sharded
  // over fixed sentence ranges. Each shard accumulates into private
  // maps; shards are then merged in shard-index order, so the counts
  // are bit-identical at every thread count (the shard structure
  // depends only on the corpus size, never on WYM_THREADS).
  struct CoocShard {
    std::unordered_map<uint64_t, double> cooc;
    std::vector<double> row_sum;
    double total = 0.0;
  };
  constexpr size_t kShardGrain = 256;  // Sentences per shard.
  std::vector<CoocShard> shards(util::NumChunks(sentences.size(), kShardGrain));
  std::unordered_map<uint64_t, double> cooc;
  std::vector<double> row_sum(n, 0.0);
  double total = 0.0;
  {
    obs::SpanScope span("encoder.cooc_pass");
    util::ParallelFor(
        sentences.size(), kShardGrain,
        [&](size_t begin, size_t end, size_t shard_index) {
          CoocShard& shard = shards[shard_index];
          shard.row_sum.assign(n, 0.0);
          std::vector<int32_t> ids;
          for (size_t s = begin; s < end; ++s) {
            const auto& sentence = sentences[s];
            ids.clear();
            ids.reserve(sentence.size());
            for (const auto& token : sentence) {
              const int32_t vid = vocab_.IdOf(token);
              ids.push_back(vid >= 0 ? kept_id_[vid] : -1);
            }
            for (size_t i = 0; i < ids.size(); ++i) {
              if (ids[i] < 0) continue;
              const size_t hi = std::min(ids.size(), i + 1 + options_.window);
              for (size_t j = i + 1; j < hi; ++j) {
                if (ids[j] < 0) continue;
                const double weight = 1.0 / static_cast<double>(j - i);
                const uint32_t a =
                    static_cast<uint32_t>(std::min(ids[i], ids[j]));
                const uint32_t b =
                    static_cast<uint32_t>(std::max(ids[i], ids[j]));
                shard.cooc[(static_cast<uint64_t>(a) << 32) | b] += weight;
                shard.row_sum[a] += weight;
                shard.row_sum[b] += weight;
                shard.total += 2.0 * weight;
              }
            }
          }
        });

    // Ordered reduction: shard 0, 1, 2, ... regardless of which worker
    // produced which shard.
    for (const CoocShard& shard : shards) {
      // wym-lint: allow(unordered-iteration): per-key merge; each key's sum is visit-order-independent, and the PPMI build below iterates key-sorted
      for (const auto& [key, weight] : shard.cooc) cooc[key] += weight;
      for (size_t i = 0; i < n; ++i) row_sum[i] += shard.row_sum[i];
      total += shard.total;
    }
    shards.clear();
  }
  if (total == 0.0) {
    // Degenerate corpus (all sentences length 1): embeddings stay zero.
    vectors_.assign(n, la::Zeros(options_.dim));
    fitted_ = true;
    return;
  }

  la::SparseMatrix ppmi(n);
  {
    obs::SpanScope span("encoder.ppmi_build");

    // Smoothed context distribution for PPMI.
    std::vector<double> context_prob(n, 0.0);
    double smoothed_total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      context_prob[i] = std::pow(row_sum[i], options_.smoothing);
      smoothed_total += context_prob[i];
    }
    for (double& p : context_prob) p /= smoothed_total;

    // Build the PPMI matrix from key-sorted entries: the append order
    // into each sparse row (and hence every downstream floating-point
    // sum in MultiplyDense) is fixed by the data, not by hash-map
    // iteration.
    std::vector<std::pair<uint64_t, double>> entries(cooc.begin(),
                                                     cooc.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });

    for (const auto& [key, count] : entries) {
      const uint32_t a = static_cast<uint32_t>(key >> 32);
      const uint32_t b = static_cast<uint32_t>(key & 0xffffffffu);
      const double p_ab = count / total;
      const double p_a = row_sum[a] / total;
      const double value = std::log(p_ab / (p_a * context_prob[b]));
      if (value <= 0.0) continue;
      ppmi.Add(a, b, value);
      if (a != b) ppmi.Add(b, a, value);
    }
  }

  const la::Matrix emb = [&] {
    obs::SpanScope span("encoder.svd_power_iteration");
    return la::EigenEmbedding(la::TopEigenpairs(
        ppmi, options_.dim, options_.iterations, options_.seed));
  }();

  vectors_.assign(n, la::Vec());
  for (size_t i = 0; i < n; ++i) {
    la::Vec v(options_.dim, 0.0f);
    for (size_t j = 0; j < emb.cols(); ++j) {
      v[j] = static_cast<float>(emb.At(i, j));
    }
    la::Normalize(&v);
    vectors_[i] = std::move(v);
  }
  fitted_ = true;
}

la::Vec CoocEmbedder::Embed(std::string_view token) const {
  WYM_CHECK(fitted_) << "CoocEmbedder used before Fit";
  const int32_t vid = vocab_.IdOf(token);
  if (vid < 0 || kept_id_[vid] < 0) return la::Zeros(options_.dim);
  return vectors_[kept_id_[vid]];
}

void CoocEmbedder::Save(serde::Serializer* s) const {
  s->Tag("cooc/v1");
  s->Bool(fitted_);
  s->U64(options_.dim);
  s->U64(vectors_.size());
  for (size_t kept = 0; kept < vectors_.size(); ++kept) {
    // Recover the token string of this kept id.
    // kept ids were assigned in TopK order; store token + vector.
    s->VecF32(vectors_[kept]);
  }
  // Token strings, in kept-id order.
  std::vector<int32_t> kept_to_vocab(vectors_.size(), -1);
  for (size_t vid = 0; vid < kept_id_.size(); ++vid) {
    if (kept_id_[vid] >= 0) kept_to_vocab[kept_id_[vid]] = static_cast<int32_t>(vid);
  }
  for (size_t kept = 0; kept < vectors_.size(); ++kept) {
    s->Str(kept_to_vocab[kept] >= 0 ? vocab_.TokenOf(kept_to_vocab[kept])
                                    : std::string());
  }
}

bool CoocEmbedder::Load(serde::Deserializer* d) {
  if (!d->Tag("cooc/v1")) return false;
  fitted_ = d->Bool();
  options_.dim = d->U64();
  const uint64_t count = d->U64();
  if (!d->ok() || count > (1u << 24)) return false;
  vectors_.assign(count, la::Vec());
  for (auto& v : vectors_) {
    v = d->VecF32();
    if (!d->ok() || v.size() != options_.dim) return false;
  }
  vocab_ = text::Vocabulary();
  kept_id_.assign(count, -1);
  for (size_t kept = 0; kept < count; ++kept) {
    const std::string token = d->Str();
    if (!d->ok()) return false;
    const int32_t vid = vocab_.Add(token);
    kept_id_[vid] = static_cast<int32_t>(kept);
  }
  return d->ok();
}

}  // namespace wym::embedding
