#ifndef WYM_EMBEDDING_SIAMESE_CALIBRATOR_H_
#define WYM_EMBEDDING_SIAMESE_CALIBRATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "la/vector_ops.h"
#include "util/serde.h"

/// \file
/// Siamese calibration: the "SBERT" component of the semantic encoder.
/// Learns per-dimension weights that pull the pooled embeddings of
/// matching record pairs together and push non-matching pairs apart —
/// the diagonal analogue of SBERT's siamese fine-tuning objective
/// (Reimers & Gurevych 2019), trained on the EM labels.

namespace wym::embedding {

/// Options for SiameseCalibrator.
struct SiameseCalibratorOptions {
  size_t epochs = 12;
  double learning_rate = 0.1;
  /// Cosine target for non-matching pairs (they still share brand/venue
  /// tokens, so 0.0 would be an unreachable target).
  double negative_target = 0.2;
  /// Weight clamp range keeps the metric non-degenerate.
  double min_weight = 0.25;
  double max_weight = 4.0;
  uint64_t seed = 0x51A3;
};

/// Diagonal metric learner over pooled pair embeddings.
class SiameseCalibrator {
 public:
  using Options = SiameseCalibratorOptions;

  explicit SiameseCalibrator(Options options = {});

  /// Trains the diagonal weights. `pairs[i]` holds the pooled (mean)
  /// embeddings of the two entities of record i, `labels[i]` its 0/1
  /// match label. No-op when pairs is empty.
  void Fit(const std::vector<std::pair<la::Vec, la::Vec>>& pairs,
           const std::vector<int>& labels);

  /// Applies the learned weights (identity before Fit).
  la::Vec Apply(const la::Vec& v) const;

  bool fitted() const { return fitted_; }
  const std::vector<float>& weights() const { return weights_; }

  /// Serialization (see util/serde.h).
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

 private:
  Options options_;
  bool fitted_ = false;
  std::vector<float> weights_;
};

}  // namespace wym::embedding

#endif  // WYM_EMBEDDING_SIAMESE_CALIBRATOR_H_
