#include "embedding/context_mixer.h"

#include <cmath>

namespace wym::embedding {

ContextMixer::ContextMixer(Options options) : options_(options) {}

std::vector<la::Vec> ContextMixer::Mix(const std::vector<la::Vec>& base) const {
  if (base.size() < 2 || options_.blend <= 0.0) return base;

  // Precompute pairwise cosine similarities.
  const size_t n = base.size();
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      sim[i][j] = sim[j][i] = la::Cosine(base[i], base[j]);
    }
  }

  std::vector<la::Vec> out(n);
  for (size_t i = 0; i < n; ++i) {
    // Softmax attention over the other tokens.
    double max_sim = -2.0;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) max_sim = std::max(max_sim, sim[i][j]);
    }
    la::Vec context = la::Zeros(base[i].size());
    double z = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double a = std::exp((sim[i][j] - max_sim) / options_.temperature);
      la::Axpy(a, base[j], &context);
      z += a;
    }
    if (z > 0.0) la::Scale(1.0 / z, &context);

    la::Vec mixed = base[i];
    la::Scale(1.0 - options_.blend, &mixed);
    la::Axpy(options_.blend, context, &mixed);
    la::Normalize(&mixed);
    out[i] = std::move(mixed);
  }
  return out;
}

}  // namespace wym::embedding
