#include "embedding/context_mixer.h"

#include <cmath>

#include "la/kernels.h"

namespace wym::embedding {

ContextMixer::ContextMixer(Options options) : options_(options) {}

std::vector<la::Vec> ContextMixer::Mix(const std::vector<la::Vec>& base) const {
  if (base.size() < 2 || options_.blend <= 0.0) return base;

  // Precompute pairwise cosine similarities with one flat kernel pass.
  // The inputs are unit vectors (BaseEmbed normalizes), but Mix is a
  // public API, so rows are re-normalized while packing — cosine is
  // scale-invariant, and all-zero rows stay zero.
  const size_t n = base.size();
  const size_t dim = base.front().size();
  la::Vec packed_rows(n * dim, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    float* row = packed_rows.data() + i * dim;
    for (size_t j = 0; j < dim; ++j) row[j] = base[i][j];
    const double norm = std::sqrt(la::kernels::SquaredNorm(row, dim));
    if (norm > 0.0) la::kernels::Scale(1.0 / norm, row, dim);
  }
  std::vector<double> sim(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row_i = packed_rows.data() + i * dim;
    for (size_t j = i + 1; j < n; ++j) {
      const double s =
          la::kernels::Dot(row_i, packed_rows.data() + j * dim, dim);
      sim[i * n + j] = sim[j * n + i] = s;
    }
  }

  std::vector<la::Vec> out(n);
  for (size_t i = 0; i < n; ++i) {
    // Softmax attention over the other tokens.
    const double* sim_row = sim.data() + i * n;
    double max_sim = -2.0;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) max_sim = std::max(max_sim, sim_row[j]);
    }
    la::Vec context = la::Zeros(dim);
    double z = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double a = std::exp((sim_row[j] - max_sim) / options_.temperature);
      la::Axpy(a, base[j], &context);
      z += a;
    }
    if (z > 0.0) la::Scale(1.0 / z, &context);

    la::Vec mixed = base[i];
    la::Scale(1.0 - options_.blend, &mixed);
    la::Axpy(options_.blend, context, &mixed);
    la::Normalize(&mixed);
    out[i] = std::move(mixed);
  }
  return out;
}

}  // namespace wym::embedding
