#ifndef WYM_EMBEDDING_SEMANTIC_ENCODER_H_
#define WYM_EMBEDDING_SEMANTIC_ENCODER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "embedding/context_mixer.h"
#include "embedding/cooc_embedder.h"
#include "embedding/hash_embedder.h"
#include "embedding/siamese_calibrator.h"
#include "la/vector_ops.h"
#include "util/bounded_cache.h"
#include "util/serde.h"

/// \file
/// The semantic encoder facade: WYM's substitute for BERT/SBERT token
/// embeddings (paper §4.1.1). Composes the subword hashing embedder
/// (syntactic signal), the PPMI co-occurrence embedder (distributional
/// signal), attention-like context mixing (contextualization, challenge
/// R4) and optional siamese calibration (the SBERT analogue).

namespace wym::embedding {

/// Mirrors the encoder ablation of Table 4.
enum class EncoderMode {
  /// Subword hashing only — the "pre-trained BERT" row (no corpus signal).
  kPretrained,
  /// Subword + corpus co-occurrence — the "BERT fine-tuned on EM" row.
  kFineTuned,
  /// Fine-tuned + siamese calibration — the SBERT default used by WYM.
  kSiamese,
};

/// Printable name of a mode ("pretrained" / "finetuned" / "siamese").
const char* EncoderModeName(EncoderMode mode);

/// Options for SemanticEncoder.
struct SemanticEncoderOptions {
  EncoderMode mode = EncoderMode::kSiamese;
  size_t hash_dim = 40;
  size_t cooc_dim = 24;
  /// Numeracy channel: numeric tokens additionally activate a radial
  /// basis over their log-magnitude, so "1161.61" and "1300.21" are close
  /// while "717" and "71" are not — the graded numeric proximity BERT
  /// embeddings carry for prices, years and quantities. 0 disables.
  size_t numeric_dims = 8;
  CoocEmbedderOptions cooc;
  ContextMixerOptions context;
  SiameseCalibratorOptions siamese;
  uint64_t seed = 0xE11C0DE;
};

/// Produces contextual token embeddings for entity descriptions.
///
/// The output dimension is fixed (`hash_dim + cooc_dim`) across modes so
/// downstream models are mode-agnostic: kPretrained simply leaves the
/// distributional block zero.
class SemanticEncoder {
 public:
  using Options = SemanticEncoderOptions;

  explicit SemanticEncoder(Options options = {});

  /// Trains the corpus-dependent parts (no-op for kPretrained).
  /// Each sentence is the full token list of one entity description.
  void Fit(const std::vector<std::vector<std::string>>& sentences);

  /// Second training stage for kSiamese: pooled embeddings of labelled
  /// record pairs (compute them with PoolTokens over EncodeTokens output).
  void FitSiamese(const std::vector<std::pair<la::Vec, la::Vec>>& pairs,
                  const std::vector<int>& labels);

  /// Contextual unit-norm embeddings for one entity description's tokens.
  std::vector<la::Vec> EncodeTokens(
      const std::vector<std::string>& tokens) const;

  /// Context-free embedding of a single token (before mixing/calibration
  /// pooling); exposed for tests and the micro benches.
  la::Vec EncodeTokenIsolated(const std::string& token) const;

  /// Mean-pools token vectors into one description vector (normalized).
  static la::Vec PoolTokens(const std::vector<la::Vec>& tokens);

  /// Serialization of the fitted encoder (see util/serde.h). Note the
  /// hash embedder is purely seed-defined, so only options + fitted
  /// state of the corpus-dependent parts are stored.
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

  size_t dim() const {
    return options_.hash_dim + options_.cooc_dim + options_.numeric_dims;
  }
  /// Token-memo introspection (bounded-cache regression tests and the
  /// serve stats endpoint): current entry count and lifetime evictions.
  size_t token_cache_size() const { return cache_.size(); }
  uint64_t token_cache_evictions() const { return cache_.evictions(); }
  EncoderMode mode() const { return options_.mode; }
  bool fitted() const { return fitted_; }

 private:
  /// Memo of context-free token embeddings: the same token string always
  /// maps to the same BaseEmbed vector (hash-gram + cooc + numeracy are
  /// all deterministic in the token), so repeated occurrences across a
  /// corpus skip the recomputation. Backed by util::FifoCache —
  /// thread-safe (the batch inference APIs encode records concurrently)
  /// and size-capped with deterministic insertion-order eviction, so a
  /// long-lived serving process that streams an unbounded token
  /// vocabulary through the encoder holds at most kMaxEntries vectors
  /// while new tokens keep getting cached. Never copied/moved with the
  /// encoder (the entries are derivable state).
  class TokenEmbeddingCache {
   public:
    TokenEmbeddingCache() = default;
    TokenEmbeddingCache(const TokenEmbeddingCache&) {}
    TokenEmbeddingCache(TokenEmbeddingCache&&) noexcept {}
    TokenEmbeddingCache& operator=(const TokenEmbeddingCache&) {
      Clear();
      return *this;
    }
    TokenEmbeddingCache& operator=(TokenEmbeddingCache&&) noexcept {
      Clear();
      return *this;
    }

    bool Lookup(const std::string& token, la::Vec* out) const {
      return cache_.Lookup(token, out);
    }
    void Insert(const std::string& token, const la::Vec& value) {
      cache_.Insert(token, value);
    }
    void Clear() { cache_.Clear(); }
    size_t size() const { return cache_.size(); }
    uint64_t evictions() const { return cache_.evictions(); }

   private:
    static constexpr size_t kMaxEntries = 1u << 16;
    util::FifoCache<std::string, la::Vec> cache_{kMaxEntries};
  };

  la::Vec BaseEmbed(const std::string& token) const;
  /// BaseEmbed through the memo cache.
  la::Vec CachedBaseEmbed(const std::string& token) const;

  Options options_;
  bool fitted_ = false;
  HashEmbedder hash_;
  CoocEmbedder cooc_;
  ContextMixer mixer_;
  SiameseCalibrator calibrator_;
  mutable TokenEmbeddingCache cache_;
};

}  // namespace wym::embedding

#endif  // WYM_EMBEDDING_SEMANTIC_ENCODER_H_
