#include "embedding/semantic_encoder.h"

#include <cmath>
#include <cstdlib>

#include "obs/trace.h"
#include "util/logging.h"

namespace wym::embedding {

const char* EncoderModeName(EncoderMode mode) {
  switch (mode) {
    case EncoderMode::kPretrained:
      return "pretrained";
    case EncoderMode::kFineTuned:
      return "finetuned";
    case EncoderMode::kSiamese:
      return "siamese";
  }
  return "unknown";
}

namespace {

CoocEmbedder::Options WithDim(CoocEmbedder::Options options, size_t dim,
                              uint64_t seed) {
  options.dim = dim;
  options.seed = seed;
  return options;
}

}  // namespace

SemanticEncoder::SemanticEncoder(Options options)
    : options_(options),
      hash_(options.hash_dim, options.seed ^ 0x9a5f0000ull),
      cooc_(WithDim(options.cooc, options.cooc_dim, options.seed ^ 0xC0C0ull)),
      mixer_(options.context),
      calibrator_(options.siamese) {}

void SemanticEncoder::Fit(
    const std::vector<std::vector<std::string>>& sentences) {
  if (options_.mode != EncoderMode::kPretrained) {
    cooc_.Fit(sentences);
  }
  cache_.Clear();  // Fitting the cooc table changes BaseEmbed output.
  fitted_ = true;
}

la::Vec SemanticEncoder::CachedBaseEmbed(const std::string& token) const {
  la::Vec out;
  if (cache_.Lookup(token, &out)) return out;
  out = BaseEmbed(token);
  cache_.Insert(token, out);
  return out;
}

void SemanticEncoder::FitSiamese(
    const std::vector<std::pair<la::Vec, la::Vec>>& pairs,
    const std::vector<int>& labels) {
  WYM_CHECK(fitted_) << "FitSiamese before Fit";
  if (options_.mode != EncoderMode::kSiamese) return;
  calibrator_.Fit(pairs, labels);
}

la::Vec SemanticEncoder::BaseEmbed(const std::string& token) const {
  la::Vec out = la::Zeros(dim());

  // Numeracy block: a radial basis over the log10 magnitude of numeric
  // tokens. Two numbers within a few percent of each other activate
  // nearly identical channels; numbers an order of magnitude apart do
  // not. The subword block is kept (down-weighted) so equal numeric
  // strings still beat merely-close ones.
  bool is_numeric = false;
  if (options_.numeric_dims > 0 && !token.empty()) {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != nullptr && *end == '\0') {
      is_numeric = true;
      const double magnitude = std::log10(std::fabs(value) + 1.0);
      const size_t n = options_.numeric_dims;
      const size_t base = options_.hash_dim + options_.cooc_dim;
      constexpr double kMaxMagnitude = 6.0;
      constexpr double kWidth = 0.8;
      for (size_t k = 0; k < n; ++k) {
        const double center =
            kMaxMagnitude * static_cast<double>(k) /
            static_cast<double>(n - 1);
        const double distance = (magnitude - center) / kWidth;
        out[base + k] =
            static_cast<float>(1.2 * std::exp(-0.5 * distance * distance));
      }
    }
  }

  const la::Vec h = hash_.Embed(token);
  const float hash_weight = is_numeric ? 0.6f : 1.0f;
  for (size_t i = 0; i < options_.hash_dim; ++i) {
    out[i] = hash_weight * h[i];
  }
  if (!is_numeric && options_.mode != EncoderMode::kPretrained &&
      cooc_.fitted()) {
    const la::Vec c = cooc_.Embed(token);
    // Distributional block slightly down-weighted: the syntactic block
    // must dominate for near-identical strings.
    for (size_t i = 0; i < options_.cooc_dim; ++i) {
      out[options_.hash_dim + i] = 0.8f * c[i];
    }
  }
  la::Normalize(&out);
  return out;
}

la::Vec SemanticEncoder::EncodeTokenIsolated(const std::string& token) const {
  WYM_CHECK(fitted_) << "SemanticEncoder used before Fit";
  return CachedBaseEmbed(token);
}

std::vector<la::Vec> SemanticEncoder::EncodeTokens(
    const std::vector<std::string>& tokens) const {
  WYM_CHECK(fitted_) << "SemanticEncoder used before Fit";
  std::vector<la::Vec> base;
  base.reserve(tokens.size());
  for (const auto& token : tokens) base.push_back(CachedBaseEmbed(token));

  std::vector<la::Vec> mixed = [&] {
    obs::SpanScope span("encoder.context_mix");
    return mixer_.Mix(base);
  }();
  if (options_.mode == EncoderMode::kSiamese && calibrator_.fitted()) {
    for (auto& v : mixed) v = calibrator_.Apply(v);
  }
  // Encoder stage boundary: a NaN/Inf in an embedding would silently
  // poison every downstream similarity; abort here under debug checks.
  for (const la::Vec& v : mixed) {
    WYM_DCHECK_FINITE(v.data(), v.size()) << "non-finite token embedding";
  }
  return mixed;
}

la::Vec SemanticEncoder::PoolTokens(const std::vector<la::Vec>& tokens) {
  if (tokens.empty()) return {};
  la::Vec pooled = la::Zeros(tokens[0].size());
  for (const auto& v : tokens) la::Axpy(1.0, v, &pooled);
  la::Scale(1.0 / static_cast<double>(tokens.size()), &pooled);
  la::Normalize(&pooled);
  return pooled;
}

void SemanticEncoder::Save(serde::Serializer* s) const {
  s->Tag("encoder/v1");
  s->U64(static_cast<uint64_t>(options_.mode));
  s->U64(options_.hash_dim);
  s->U64(options_.cooc_dim);
  s->U64(options_.numeric_dims);
  s->F64(options_.context.blend);
  s->F64(options_.context.temperature);
  s->U64(options_.seed);
  s->Bool(fitted_);
  cooc_.Save(s);
  calibrator_.Save(s);
}

bool SemanticEncoder::Load(serde::Deserializer* d) {
  if (!d->Tag("encoder/v1")) return false;
  Options options;
  options.mode = static_cast<EncoderMode>(d->U64());
  options.hash_dim = d->U64();
  options.cooc_dim = d->U64();
  options.numeric_dims = d->U64();
  options.context.blend = d->F64();
  options.context.temperature = d->F64();
  options.seed = d->U64();
  if (!d->ok()) return false;
  *this = SemanticEncoder(options);
  fitted_ = d->Bool();
  if (!cooc_.Load(d)) return false;
  if (!calibrator_.Load(d)) return false;
  return d->ok();
}

}  // namespace wym::embedding
