#include "embedding/hash_embedder.h"

#include <string>

namespace wym::embedding {

namespace {

// FNV-1a, folded with the embedder seed.
uint64_t HashGram(std::string_view gram, uint64_t seed) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (char c : gram) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // Final avalanche (splitmix64 tail) so low bits are well mixed.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

HashEmbedder::HashEmbedder(size_t dim, uint64_t seed)
    : dim_(dim), seed_(seed) {}

la::Vec HashEmbedder::Embed(std::string_view token) const {
  la::Vec v = la::Zeros(dim_);
  if (token.empty()) return v;

  const std::string padded = "^" + std::string(token) + "$";
  auto add_gram = [&](std::string_view gram, double weight) {
    const uint64_t h = HashGram(gram, seed_);
    const size_t index = static_cast<size_t>(h % dim_);
    const double sign = ((h >> 32) & 1u) ? 1.0 : -1.0;
    // Two buckets per gram reduce collision damage at small dims.
    const size_t index2 = static_cast<size_t>((h >> 17) % dim_);
    const double sign2 = ((h >> 48) & 1u) ? 1.0 : -1.0;
    v[index] += static_cast<float>(sign * weight);
    v[index2] += static_cast<float>(sign2 * weight * 0.5);
  };

  for (size_t n = 3; n <= 5; ++n) {
    if (padded.size() < n) break;
    // Shorter grams carry more of the weight: a single character edit
    // destroys up to n overlapping n-grams, so long grams dominate the
    // divergence; weighting them down keeps typo'd tokens close
    // (robustness the generator needs at its pairing thresholds).
    const double weight = 1.5 - 0.4 * static_cast<double>(n - 3);
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      add_gram(std::string_view(padded).substr(i, n), weight);
    }
  }
  // The whole token anchors exact equality.
  add_gram(padded, 1.5);

  la::Normalize(&v);
  return v;
}

}  // namespace wym::embedding
