#ifndef WYM_EMBEDDING_CONTEXT_MIXER_H_
#define WYM_EMBEDDING_CONTEXT_MIXER_H_

#include <vector>

#include "la/vector_ops.h"

/// \file
/// Attention-like context mixing: every token's vector is blended with a
/// softmax-weighted average of the other tokens in the same entity
/// description. This is what makes the encoder *contextual* — the same
/// token in two different descriptions gets two different vectors — which
/// the paper obtains from BERT's hidden states (challenge R4).

namespace wym::embedding {

/// Options for ContextMixer.
struct ContextMixerOptions {
  /// Fraction of the context vector blended into each token (0 = off).
  double blend = 0.3;
  /// Softmax temperature over cosine similarities; lower = peakier.
  double temperature = 0.25;
};

/// Stateless contextualization pass over one description's token vectors.
class ContextMixer {
 public:
  using Options = ContextMixerOptions;

  explicit ContextMixer(Options options = {});

  /// Returns contextualized unit-norm vectors; `base` is unchanged.
  /// A single-token description is returned as-is (no context exists).
  std::vector<la::Vec> Mix(const std::vector<la::Vec>& base) const;

 private:
  Options options_;
};

}  // namespace wym::embedding

#endif  // WYM_EMBEDDING_CONTEXT_MIXER_H_
