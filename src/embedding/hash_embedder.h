#ifndef WYM_EMBEDDING_HASH_EMBEDDER_H_
#define WYM_EMBEDDING_HASH_EMBEDDER_H_

#include <cstdint>
#include <string_view>

#include "la/vector_ops.h"

/// \file
/// Subword hashing embedder: the "pre-trained" component of the semantic
/// encoder (see DESIGN.md, substitution table). Tokens are decomposed into
/// padded character n-grams; each gram is hashed into a signed bucket of a
/// fixed-dimension vector (fastText-style hashing trick). String-similar
/// tokens share most grams and therefore have high cosine similarity,
/// giving the generator the syntactic-affinity signal BERT word-piece
/// embeddings provide in the paper.

namespace wym::embedding {

/// Deterministic, training-free token embedder.
class HashEmbedder {
 public:
  /// `dim` output dimension; `seed` perturbs the hash so independent
  /// embedders are decorrelated.
  explicit HashEmbedder(size_t dim = 40, uint64_t seed = 0x5eed);

  /// Unit-norm embedding of a token. Empty tokens map to the zero vector.
  la::Vec Embed(std::string_view token) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  uint64_t seed_;
};

}  // namespace wym::embedding

#endif  // WYM_EMBEDDING_HASH_EMBEDDER_H_
