#include "embedding/siamese_calibrator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace wym::embedding {

SiameseCalibrator::SiameseCalibrator(Options options) : options_(options) {}

void SiameseCalibrator::Fit(
    const std::vector<std::pair<la::Vec, la::Vec>>& pairs,
    const std::vector<int>& labels) {
  WYM_CHECK_EQ(pairs.size(), labels.size());
  if (pairs.empty()) return;
  const size_t dim = pairs[0].first.size();
  std::vector<double> w(dim, 1.0);

  Rng rng(options_.seed);
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const la::Vec& a = pairs[idx].first;
      const la::Vec& b = pairs[idx].second;
      WYM_CHECK_EQ(a.size(), dim);

      // s = (u . v) / (|u| |v|) with u = w*a, v = w*b (elementwise).
      double p = 0.0, nu2 = 0.0, nv2 = 0.0;
      for (size_t k = 0; k < dim; ++k) {
        const double ua = w[k] * a[k];
        const double vb = w[k] * b[k];
        p += ua * vb;
        nu2 += ua * ua;
        nv2 += vb * vb;
      }
      const double nu = std::sqrt(nu2);
      const double nv = std::sqrt(nv2);
      if (nu < 1e-9 || nv < 1e-9) continue;
      const double s = p / (nu * nv);
      const double target = labels[idx] == 1 ? 1.0 : options_.negative_target;
      const double err = s - target;  // d(0.5*err^2)/ds = err

      // ds/dw_k = (2 w a b) / (nu nv) - s (w a^2 / nu^2 + w b^2 / nv^2).
      for (size_t k = 0; k < dim; ++k) {
        const double ak = a[k];
        const double bk = b[k];
        const double grad_s = (2.0 * w[k] * ak * bk) / (nu * nv) -
                              s * (w[k] * ak * ak / nu2 + w[k] * bk * bk / nv2);
        w[k] -= options_.learning_rate * err * grad_s;
        w[k] = std::clamp(w[k], options_.min_weight, options_.max_weight);
      }
    }
  }

  weights_.assign(dim, 1.0f);
  for (size_t k = 0; k < dim; ++k) weights_[k] = static_cast<float>(w[k]);
  fitted_ = true;
}

la::Vec SiameseCalibrator::Apply(const la::Vec& v) const {
  if (!fitted_) return v;
  WYM_CHECK_EQ(v.size(), weights_.size());
  la::Vec out(v.size());
  for (size_t k = 0; k < v.size(); ++k) out[k] = v[k] * weights_[k];
  la::Normalize(&out);
  return out;
}

void SiameseCalibrator::Save(serde::Serializer* s) const {
  s->Tag("siamese/v1");
  s->Bool(fitted_);
  s->VecF32(weights_);
}

bool SiameseCalibrator::Load(serde::Deserializer* d) {
  if (!d->Tag("siamese/v1")) return false;
  fitted_ = d->Bool();
  weights_ = d->VecF32();
  return d->ok();
}

}  // namespace wym::embedding
