#ifndef WYM_EMBEDDING_COOC_EMBEDDER_H_
#define WYM_EMBEDDING_COOC_EMBEDDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "la/vector_ops.h"
#include "util/serde.h"
#include "text/vocabulary.h"

/// \file
/// Distributional embedder: the "fine-tuned" component of the semantic
/// encoder. Counts token co-occurrences inside entity descriptions of the
/// training corpus, weights them with positive pointwise mutual information
/// (PPMI), and factorizes the symmetric PPMI matrix with randomized
/// orthogonal iteration. Tokens used in similar contexts (e.g. "camera"
/// and "dslr", two spellings of the same manufacturer) land close together,
/// supplying the semantic-affinity signal of a corpus-fine-tuned BERT.

namespace wym::embedding {

/// Options for CoocEmbedder.
struct CoocEmbedderOptions {
  /// Output dimension.
  size_t dim = 24;
  /// Symmetric co-occurrence window within a description.
  size_t window = 5;
  /// Keep only the most frequent tokens (memory bound).
  size_t max_vocab = 20000;
  /// Tokens seen fewer times are out-of-vocabulary.
  int64_t min_count = 2;
  /// Orthogonal-iteration rounds.
  size_t iterations = 10;
  /// PPMI context-distribution smoothing exponent (Levy et al. 2015).
  double smoothing = 0.75;
  uint64_t seed = 0xC0C0;
};

/// Corpus-trained distributional token embedder.
class CoocEmbedder {
 public:
  using Options = CoocEmbedderOptions;

  explicit CoocEmbedder(Options options = {});

  /// Builds embeddings from a corpus: each sentence is the token list of
  /// one entity description.
  void Fit(const std::vector<std::vector<std::string>>& sentences);

  /// Unit-norm embedding; the zero vector for out-of-vocabulary tokens.
  la::Vec Embed(std::string_view token) const;

  bool fitted() const { return fitted_; }
  size_t dim() const { return options_.dim; }

  /// Number of in-vocabulary tokens after Fit.
  size_t vocabulary_size() const { return vectors_.size(); }

  /// Serialization of the fitted embedding table (see util/serde.h).
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

 private:
  Options options_;
  bool fitted_ = false;
  text::Vocabulary vocab_;
  std::vector<la::Vec> vectors_;  // Indexed by kept-vocab id.
  std::vector<int32_t> kept_id_;  // vocab id -> kept id or -1.
};

}  // namespace wym::embedding

#endif  // WYM_EMBEDDING_COOC_EMBEDDER_H_
