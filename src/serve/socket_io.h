#ifndef WYM_SERVE_SOCKET_IO_H_
#define WYM_SERVE_SOCKET_IO_H_

#include <string>

#include "util/status.h"

/// \file
/// Unix-domain socket plumbing for the matcher service: listen/connect
/// helpers plus `LineChannel`, a buffered newline-delimited message
/// channel over a connected fd.
///
/// Robustness seams: every recv/send consults the thread-local
/// `io::FaultInjector` (util/io.h) socket hooks, so tests script short
/// reads, short writes, EINTR, and mid-message disconnects through the
/// exact code paths production traffic takes. The channel's contract
/// under faults is "typed error or clean close, never crash or hang":
/// short reads/writes are absorbed by the buffering loops, EINTR
/// retries, and a disconnect surfaces as EOF (between messages) or
/// `IoError` (mid-message).

namespace wym::serve {

/// Binds and listens on a Unix-domain socket at `path` (an existing
/// socket file is replaced — the standard restart-over-stale-socket
/// behaviour). Returns the listening fd.
Result<int> ListenUnix(const std::string& path);

/// Connects to the Unix-domain socket at `path`; IoError when the
/// server is absent (clients treat that as retryable).
Result<int> ConnectUnix(const std::string& path);

/// Buffered newline-delimited channel over a connected socket fd.
/// Owns and closes the fd. One channel per connection thread — not
/// internally synchronized.
class LineChannel {
 public:
  /// Takes ownership of `fd`.
  explicit LineChannel(int fd);
  ~LineChannel();

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Reads the next '\n'-terminated line (terminator stripped).
  /// Outcomes:
  ///  - line available: Ok, `*line` set, flags false;
  ///  - peer closed between messages: Ok, `*eof` = true;
  ///  - nothing arrived within `timeout_ms` (< 0 = wait forever): Ok,
  ///    `*timed_out` = true. A plain flag, deliberately not a
  ///    DeadlineExceeded status: idle polls are routine (the server's
  ///    drain check), and the Status factory counts real deadline
  ///    events.
  ///  - mid-line disconnect or socket error: IoError.
  Status ReadLine(std::string* line, int timeout_ms, bool* eof,
                  bool* timed_out);

  /// Writes `line` plus the '\n' terminator, looping through short
  /// writes and EINTR; IoError on disconnect.
  Status WriteLine(const std::string& line);

  int fd() const { return fd_; }

 private:
  int fd_;
  /// Bytes received past the last returned line.
  std::string buffer_;
};

}  // namespace wym::serve

#endif  // WYM_SERVE_SOCKET_IO_H_
