#ifndef WYM_SERVE_SERVER_H_
#define WYM_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "util/status.h"

/// \file
/// The socket front-end of the matcher service: accept loop, one
/// connection thread per client, a watchdog thread, and the graceful
/// shutdown sequence.
///
/// Lifecycle (the drain state machine, see DESIGN.md):
///   accepting -> draining -> idle -> stopped
/// `Serve` runs until `stop_requested` returns true (the tool wires a
/// SIGTERM/SIGINT flag in) or a client issues `shutdown`. Either way
/// the server stops accepting, sheds new work with ResourceExhausted,
/// finishes (or deadlines-out) everything in flight, joins its
/// threads, and returns — the caller then flushes the final stats
/// snapshot. Nothing admitted is ever dropped unanswered.

namespace wym::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket.
  std::string socket_path;
  /// Polled between accept waits; return true to begin drain.
  std::function<bool()> stop_requested;
  /// Watchdog scan cadence (0 disables the watchdog thread even if the
  /// service has a wedge timeout).
  uint64_t watchdog_interval_ms = 1000;
  /// Per-read idle timeout on connection threads; bounds how long a
  /// drain waits on a silent client.
  int read_timeout_ms = 250;
  /// Invoked on the accept loop every poll iteration (~100ms cadence).
  /// wym_serve hangs telemetry housekeeping here: WindowTracker ticks,
  /// periodic telemetry export, and the SIGQUIT flight-recorder dump.
  /// Must be quick and non-blocking.
  std::function<void()> on_tick;
  /// Invoked from the watchdog thread right after PokeWatchdog
  /// recovers `n` > 0 wedged requests — the hook wym_serve uses to
  /// dump the flight recorder at the moment of the incident.
  std::function<void(size_t)> on_watchdog_recover;
};

class SocketServer {
 public:
  /// `service` must outlive the server.
  SocketServer(MatcherService* service, ServerOptions options);

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and serves until stop is requested (signal flag or
  /// `shutdown` op), then drains and joins. Returns only startup
  /// errors; per-connection failures are answered on their own
  /// connections and never take the server down.
  [[nodiscard]] Status Serve();

  /// Handles one established connection on the calling thread until
  /// EOF, a socket error, or drain-and-idle. Public so tests can drive
  /// a socketpair end (with a scripted FaultInjector) through the exact
  /// production read/dispatch/write loop without a listener.
  void ServeConnection(int fd);

 private:
  MatcherService* const service_;
  const ServerOptions options_;
  std::atomic<bool> stopping_{false};
};

}  // namespace wym::serve

#endif  // WYM_SERVE_SERVER_H_
