#include "serve/model_registry.h"

#include <utility>

#include "obs/metrics.h"
#include "util/io.h"
#include "util/string_util.h"

namespace wym::serve {

Status ModelRegistry::LoadModel(const std::string& name,
                                const std::string& path) {
  static obs::Counter& loads =
      obs::Registry::Global().GetCounter("serve.model_loads");
  static obs::Counter& failures =
      obs::Registry::Global().GetCounter("serve.model_load_failures");

  // Load and verify outside the lock: a slow (or corrupt) load must not
  // stall requests being served off already-registered models.
  Result<core::WymModel> loaded = core::WymModel::LoadFromFile(path);
  if (!loaded.ok()) {
    failures.Add(1);
    return loaded.status().Annotate("loading model '" + name + "' from " +
                                    path);
  }
  auto model = std::make_shared<const core::WymModel>(
      std::move(loaded).value());

  std::lock_guard<std::mutex> lock(mu_);
  RegisteredModel& slot = models_[name];
  slot.model = std::move(model);
  slot.generation = ++next_generation_;
  loads.Add(1);
  return Status::Ok();
}

Status ModelRegistry::Retire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no model named '" + name + "'");
  }
  return Status::Ok();
}

RegisteredModel ModelRegistry::Get(const std::string& name) const {
  const std::string& key = name.empty() ? kDefaultModelName : name;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(key);
  return it == models_.end() ? RegisteredModel{} : it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, unused] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

Status ModelRegistry::LoadConfigFile(const std::string& path) {
  std::string text;
  WYM_RETURN_IF_ERROR(
      io::ReadFileToString(path, &text).Annotate("model config"));
  size_t line_number = 0;
  for (size_t start = 0; start <= text.size();) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = strings::Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= line.size()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": expected 'name=path', got '" + line + "'");
    }
    const std::string name = strings::Trim(line.substr(0, eq));
    const std::string model_path = strings::Trim(line.substr(eq + 1));
    WYM_RETURN_IF_ERROR(LoadModel(name, model_path).Annotate(
        path + ":" + std::to_string(line_number)));
  }
  return Status::Ok();
}

}  // namespace wym::serve
