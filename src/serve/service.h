#ifndef WYM_SERVE_SERVICE_H_
#define WYM_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/recorder.h"
#include "obs/window.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// \file
/// The matcher service core: admission control, deadline budgets,
/// watchdog recovery, and graceful drain over a ModelRegistry — the
/// transport-independent heart of `wym_serve` (see DESIGN.md "Serving &
/// overload policy").
///
/// Overload policy, in one paragraph: a bounded queue admits at most
/// `queue_bound` requests; everything beyond is *shed immediately* with
/// a typed `ResourceExhausted` response (never blocked, never dropped).
/// Every admitted request carries a deadline budget; the budget is
/// checked at dequeue and between batch slices, and expired work is
/// answered `DeadlineExceeded` with how far it got. A watchdog turns a
/// wedged worker into a clean error response. Drain stops admission
/// (`ResourceExhausted: draining`), finishes or deadlines-out in-flight
/// work, and leaves the stats snapshot as the last word. Every request
/// is answered exactly once, through every one of those paths.
///
/// The service is transport-free: `Admit` takes a parsed Request plus a
/// responder callback, so the socket server, tests, and an embedding
/// process all share one admission surface.

namespace wym::serve {

struct ServiceOptions {
  /// Maximum queued (admitted, not yet executing) requests; beyond this
  /// Admit sheds with ResourceExhausted.
  size_t queue_bound = 64;
  /// Deadline budget for requests that do not carry their own
  /// `deadline_ms`; 0 = no default deadline.
  uint64_t default_deadline_ms = 0;
  /// A request executing longer than this is considered wedged and is
  /// answered with a typed error by the watchdog; 0 disables.
  uint64_t wedge_timeout_ms = 30000;
  /// Prediction-cache capacity in entries; 0 disables caching.
  size_t cache_entries = 4096;
  /// Pairs scored between deadline re-checks inside one predict
  /// request (the "batch slice" granularity).
  size_t deadline_slice_pairs = 16;
  /// Schedule queued work onto the pool as it is admitted. Tests turn
  /// this off to drive ProcessQueued() deterministically.
  bool auto_dispatch = true;
  /// Allow the test-only debug_sleep op (watchdog fixtures).
  bool enable_debug_ops = false;
  /// Time source for admission stamps, deadlines, and the watchdog.
  /// Defaults to obs::NowNanos; tests install a fake clock to make
  /// deadline and wedge behaviour fully deterministic.
  std::function<uint64_t()> now_ns;
  /// Telemetry sinks, all optional and caller-owned (must outlive the
  /// service). Null = that sink is off (branch-only cost on the serve
  /// path); none of them feeds back into any computation.
  /// Request journal: one wym-journal/v1 line per answered request.
  obs::EventLog* journal = nullptr;
  /// Flight recorder: every answered request is also copied into the
  /// postmortem ring.
  obs::FlightRecorder* recorder = nullptr;
  /// Windowed stats: read (never written) by the stats op, which
  /// embeds WindowsJson() when non-null. Ticking it is the transport
  /// loop's job.
  obs::WindowTracker* windows = nullptr;
};

class MatcherService {
 public:
  /// Invoked exactly once per request with the final response. Called
  /// on whichever thread finishes the request (admission thread for
  /// sheds and inline ops, worker for executed requests, watchdog
  /// thread for wedge recoveries) — must be thread-safe and non-blocking.
  using Responder = std::function<void(const Response&)>;

  /// `registry` must outlive the service. `pool` is the execution
  /// substrate for auto-dispatch (nullptr = the global WYM_THREADS
  /// pool).
  MatcherService(ModelRegistry* registry, ServiceOptions options,
                 util::ThreadPool* pool = nullptr);

  MatcherService(const MatcherService&) = delete;
  MatcherService& operator=(const MatcherService&) = delete;

  /// Admission: answers cheap introspection ops (ping/stats/
  /// list_models) inline; queues work ops within the bound; sheds the
  /// rest. The returned Status is the admission outcome (Ok = admitted
  /// or answered inline); on shed the responder has already been
  /// invoked with the same typed error — callers never answer twice.
  Status Admit(Request request, Responder responder);

  /// Executes the oldest queued request on the calling thread; false
  /// when the queue was empty. The public face of the worker loop, so
  /// tests (auto_dispatch=false) drive execution deterministically.
  bool ProcessOne();

  /// ProcessOne until the queue is empty; returns how many ran.
  size_t ProcessQueued();

  /// Stops admission: every subsequent Admit of a work op is shed with
  /// "draining". Idempotent.
  void BeginDrain();

  /// Blocks until no request is queued or executing.
  void AwaitIdle();

  /// BeginDrain + help finish the backlog on the calling thread +
  /// AwaitIdle. After Drain returns, every admitted request has been
  /// answered (zero in-flight losses).
  void Drain();

  /// Answers every request that has been executing longer than the
  /// wedge timeout (as of `now_ns`) with a typed error; the wedged
  /// worker's own eventual answer is discarded by the answered flag.
  /// Returns how many were recovered. Called by the server's watchdog
  /// thread; takes the timestamp as a parameter so tests can drive it
  /// with a synthetic clock.
  size_t PokeWatchdog(uint64_t now_ns);

  bool draining() const;
  size_t queue_depth() const;
  /// Requests dequeued but not yet finished.
  size_t in_flight() const;

  /// The stats payload served by the `stats` op (and flushed as the
  /// final snapshot on shutdown): queue/cache/model state plus the full
  /// obs metrics registry.
  std::string StatsJson() const;

  const ServiceOptions& options() const { return options_; }

 private:
  /// One admitted request: wire data plus the answered-exactly-once
  /// rendezvous state shared by worker and watchdog.
  struct RequestState {
    Request request;
    Responder responder;
    /// Admission sequence (mints the journal id "q<seq>").
    uint64_t sequence = 0;
    uint64_t admit_ns = 0;
    /// Absolute deadline (admit_ns + budget); 0 = none.
    uint64_t deadline_ns = 0;
    /// 0 until a worker dequeues it (the watchdog only times executing
    /// requests).
    std::atomic<uint64_t> started_ns{0};
    std::atomic<bool> answered{false};
    /// Telemetry progress, written by the executing worker and read by
    /// whichever thread answers (worker or watchdog) — atomic so a
    /// wedge-time journal record sees a consistent partial count.
    std::atomic<uint64_t> generation{0};
    std::atomic<uint32_t> batches{0};
    std::atomic<uint32_t> cached{0};
  };
  using StatePtr = std::shared_ptr<RequestState>;

  uint64_t Now() const;

  /// Invokes the responder exactly once (stamping the minted request
  /// id into the response); false when someone (the watchdog) already
  /// answered.
  bool Respond(const StatePtr& state, Response response);

  /// Fills a journal record for `state` as answered at `end_ns`. Pure
  /// bookkeeping; no clock reads.
  obs::RequestRecord BuildRecord(const RequestState& state, uint64_t end_ns,
                                 obs::RequestOutcome outcome) const;

  /// Appends `record` to the journal and flight recorder (whichever
  /// are configured). The single emission helper behind every answer
  /// path.
  void EmitRecord(const obs::RequestRecord& record);

  /// Journal outcome for an executed (non-shed, non-wedged) response.
  obs::RequestOutcome ClassifyOutcome(const RequestState& state,
                                      const Response& response) const;

  /// Builds the op-specific response (deadline checks included).
  Response Execute(RequestState* state);
  Response ExecutePredict(RequestState* state);
  Response ExecuteRegistryOp(const RequestState& state);
  Response ExecuteDebugSleep(const RequestState& state);

  std::string ModelListJson() const;

  ModelRegistry* const registry_;
  const ServiceOptions options_;
  util::ThreadPool* const pool_;
  PredictionCache cache_;
  /// Admission sequence: every request (inline, queued, or shed) takes
  /// the next value; the journal id namespace.
  std::atomic<uint64_t> next_sequence_{1};

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<StatePtr> queue_;
  /// Dequeued, still executing (watchdog scan set).
  std::vector<StatePtr> in_flight_;
  bool draining_ = false;
};

}  // namespace wym::serve

#endif  // WYM_SERVE_SERVICE_H_
