#include "serve/prediction_cache.h"

#include <vector>

#include "blocking/fingerprint.h"

namespace wym::serve {

uint64_t FingerprintEntity(const data::Entity& entity) {
  // blocking::FingerprintTokens hashes a separator-joined token list;
  // prefixing each value with its attribute index keeps the hash
  // position-sensitive (the cache wants exact-input equality, not the
  // blocking tier's order-insensitive duplicate semantics).
  std::vector<std::string> tokens;
  tokens.reserve(entity.values.size());
  for (size_t i = 0; i < entity.values.size(); ++i) {
    tokens.push_back(std::to_string(i) + '\x1F' + entity.values[i]);
  }
  return blocking::FingerprintTokens(tokens);
}

PredictionKey MakePredictionKey(const data::EmRecord& pair,
                                const std::string& model_id) {
  return PredictionKey{FingerprintEntity(pair.left),
                       FingerprintEntity(pair.right), model_id};
}

}  // namespace wym::serve
