#include "serve/socket_io.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/io.h"

namespace wym::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Result<int> BoundAddress(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  return fd;
}

}  // namespace

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un addr;
  Result<int> fd = BoundAddress(path, &addr);
  WYM_RETURN_IF_ERROR(fd.status());
  ::unlink(path.c_str());
  if (::bind(fd.value(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Errno("bind " + path);
    ::close(fd.value());
    return status;
  }
  if (::listen(fd.value(), SOMAXCONN) != 0) {
    Status status = Errno("listen " + path);
    ::close(fd.value());
    return status;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  Result<int> fd = BoundAddress(path, &addr);
  WYM_RETURN_IF_ERROR(fd.status());
  if (::connect(fd.value(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status = Errno("connect " + path);
    ::close(fd.value());
    return status;
  }
  return fd;
}

LineChannel::LineChannel(int fd) : fd_(fd) {}

LineChannel::~LineChannel() {
  if (fd_ >= 0) ::close(fd_);
}

Status LineChannel::ReadLine(std::string* line, int timeout_ms, bool* eof,
                             bool* timed_out) {
  line->clear();
  *eof = false;
  *timed_out = false;
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::Ok();
    }

    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) {
      *timed_out = true;
      return Status::Ok();
    }

    char chunk[4096];
    size_t want = sizeof(chunk);
    // Fault seam: scripted socket-read faults replace the syscall's
    // outcome so tests exercise the same control flow a flaky peer or
    // kernel would produce.
    if (io::FaultInjector* injector = io::ActiveFaultInjector()) {
      if (const io::Fault* fault = injector->NextSockReadFault()) {
        const io::Fault::Kind kind = fault->kind;
        injector->Spend(fault);
        if (kind == io::Fault::Kind::kSockEintr) continue;
        if (kind == io::Fault::Kind::kSockDisconnect) {
          if (buffer_.empty()) {
            *eof = true;
            return Status::Ok();
          }
          return Status::IoError("connection closed mid-message (" +
                                 std::to_string(buffer_.size()) +
                                 " bytes buffered)");
        }
        // kSockShortRead: the next recv delivers at most offset bytes.
        want = std::min<size_t>(
            want, fault->offset == 0 ? 1 : static_cast<size_t>(fault->offset));
      }
    }

    const ssize_t got = ::recv(fd_, chunk, want, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) {
      if (buffer_.empty()) {
        *eof = true;
        return Status::Ok();
      }
      return Status::IoError("connection closed mid-message (" +
                             std::to_string(buffer_.size()) +
                             " bytes buffered)");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

Status LineChannel::WriteLine(const std::string& line) {
  std::string payload = line;
  payload += '\n';
  size_t sent = 0;
  while (sent < payload.size()) {
    size_t want = payload.size() - sent;
    if (io::FaultInjector* injector = io::ActiveFaultInjector()) {
      if (const io::Fault* fault = injector->NextSockWriteFault()) {
        const io::Fault::Kind kind = fault->kind;
        injector->Spend(fault);
        if (kind == io::Fault::Kind::kSockEintr) continue;
        if (kind == io::Fault::Kind::kSockDisconnect) {
          return Status::IoError("connection reset by peer (" +
                                 std::to_string(sent) + " of " +
                                 std::to_string(payload.size()) +
                                 " bytes sent)");
        }
        // kSockShortWrite: the next send accepts at most offset bytes.
        want = std::min<size_t>(
            want, fault->offset == 0 ? 1 : static_cast<size_t>(fault->offset));
      }
    }
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t wrote =
        ::send(fd_, payload.data() + sent, want, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

}  // namespace wym::serve
