#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace wym::serve {

namespace {

/// Shortest %g rendering that round-trips a double exactly (the same
/// discipline the obs bench reports use): try increasing precision
/// until strtod gives back the identical value. Non-finite values have
/// no JSON spelling; the pipeline's quarantine path guarantees none,
/// and this renders any that slip through as 0 rather than emitting
/// invalid JSON.
std::string RenderDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  for (int precision = 9; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

/// Status::Code <-> wire name. Mirrors CodeName in util/status.cc; an
/// unknown wire name maps to kIoError (fail closed, still typed).
struct CodeNameEntry {
  Status::Code code;
  const char* name;
};

constexpr CodeNameEntry kCodeNames[] = {
    {Status::Code::kInvalidArgument, "InvalidArgument"},
    {Status::Code::kNotFound, "NotFound"},
    {Status::Code::kIoError, "IoError"},
    {Status::Code::kCorruption, "Corruption"},
    {Status::Code::kFailedPrecondition, "FailedPrecondition"},
    {Status::Code::kResourceExhausted, "ResourceExhausted"},
    {Status::Code::kDeadlineExceeded, "DeadlineExceeded"},
};

Status StatusFromWire(const std::string& code, std::string message) {
  for (const CodeNameEntry& entry : kCodeNames) {
    if (code == entry.name) {
      switch (entry.code) {
        case Status::Code::kInvalidArgument:
          return Status::InvalidArgument(std::move(message));
        case Status::Code::kNotFound:
          return Status::NotFound(std::move(message));
        case Status::Code::kCorruption:
          return Status::Corruption(std::move(message));
        case Status::Code::kFailedPrecondition:
          return Status::FailedPrecondition(std::move(message));
        case Status::Code::kResourceExhausted:
          return Status::ResourceExhausted(std::move(message));
        case Status::Code::kDeadlineExceeded:
          return Status::DeadlineExceeded(std::move(message));
        default:
          return Status::IoError(std::move(message));
      }
    }
  }
  return Status::IoError("unknown error code '" + code + "': " + message);
}

/// The Status::Code wire name used in RenderResponse. Pure — part of
/// the response-serialization path.
const char* WireCodeName(Status::Code code) {
  for (const CodeNameEntry& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "IoError";
}

struct OpNameEntry {
  Request::Op op;
  const char* name;
};

constexpr OpNameEntry kOpNames[] = {
    {Request::Op::kPing, "ping"},
    {Request::Op::kPredict, "predict"},
    {Request::Op::kStats, "stats"},
    {Request::Op::kListModels, "list_models"},
    {Request::Op::kLoadModel, "load_model"},
    {Request::Op::kRetireModel, "retire_model"},
    {Request::Op::kShutdown, "shutdown"},
    {Request::Op::kDebugSleep, "debug_sleep"},
};

/// Member lookup helpers over the obs JSON tree; each tolerates an
/// absent member and type-checks a present one.
Status GetString(const obs::JsonValue& object, const std::string& key,
                 std::string* out) {
  const obs::JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->IsString()) {
    return Status::InvalidArgument("'" + key + "' must be a string");
  }
  *out = value->string;
  return Status::Ok();
}

Status GetUint(const obs::JsonValue& object, const std::string& key,
               uint64_t* out) {
  const obs::JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->IsNumber() || value->number < 0) {
    return Status::InvalidArgument("'" + key +
                                   "' must be a non-negative number");
  }
  *out = static_cast<uint64_t>(value->number);
  return Status::Ok();
}

Status GetBool(const obs::JsonValue& object, const std::string& key,
               bool* out) {
  const obs::JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->IsBool()) {
    return Status::InvalidArgument("'" + key + "' must be a boolean");
  }
  *out = value->boolean;
  return Status::Ok();
}

/// Parses one {"left":[...],"right":[...]} pair object.
Status ParsePair(const obs::JsonValue& object, data::EmRecord* out) {
  for (const char* side : {"left", "right"}) {
    const obs::JsonValue* values = object.Find(side);
    if (values == nullptr || !values->IsArray()) {
      return Status::InvalidArgument(
          std::string("pair needs a '") + side + "' array of values");
    }
    std::vector<std::string>& target =
        side[0] == 'l' ? out->left.values : out->right.values;
    for (const obs::JsonValue& value : values->array) {
      if (!value.IsString()) {
        return Status::InvalidArgument(
            std::string("'") + side + "' values must be strings");
      }
      target.push_back(value.string);
    }
  }
  return Status::Ok();
}

/// Re-renders a parsed JSON subtree (client side: recovers the
/// `payload` / `explanation` objects of a response as strings). Member
/// order is preserved by the parser, and numbers re-render through
/// RenderDouble, so server-rendered JSON round-trips byte-identically.
void AppendJsonValue(const obs::JsonValue& value, std::string* out) {
  switch (value.kind) {
    case obs::JsonValue::Kind::kNull:
      *out += "null";
      return;
    case obs::JsonValue::Kind::kBool:
      *out += value.boolean ? "true" : "false";
      return;
    case obs::JsonValue::Kind::kNumber:
      *out += RenderDouble(value.number);
      return;
    case obs::JsonValue::Kind::kString:
      *out += EscapeJsonString(value.string);
      return;
    case obs::JsonValue::Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < value.array.size(); ++i) {
        if (i != 0) *out += ',';
        AppendJsonValue(value.array[i], out);
      }
      *out += ']';
      return;
    }
    case obs::JsonValue::Kind::kObject: {
      *out += '{';
      for (size_t i = 0; i < value.object.size(); ++i) {
        if (i != 0) *out += ',';
        *out += EscapeJsonString(value.object[i].first);
        *out += ':';
        AppendJsonValue(value.object[i].second, out);
      }
      *out += '}';
      return;
    }
  }
}

void AppendPairJson(const data::EmRecord& pair, std::string* out) {
  *out += "{\"left\":[";
  for (size_t i = 0; i < pair.left.values.size(); ++i) {
    if (i != 0) *out += ',';
    *out += EscapeJsonString(pair.left.values[i]);
  }
  *out += "],\"right\":[";
  for (size_t i = 0; i < pair.right.values.size(); ++i) {
    if (i != 0) *out += ',';
    *out += EscapeJsonString(pair.right.values[i]);
  }
  *out += "]}";
}

}  // namespace

std::string EscapeJsonString(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

const char* OpName(Request::Op op) {
  for (const OpNameEntry& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "unknown";
}

Result<Request> ParseRequest(const std::string& line) {
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(line, &root, &error)) {
    return Status::InvalidArgument("malformed request JSON: " + error);
  }
  if (!root.IsObject()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  Request request;
  std::string op;
  WYM_RETURN_IF_ERROR(GetString(root, "op", &op));
  if (op.empty()) {
    return Status::InvalidArgument("request needs an 'op' string");
  }
  bool known = false;
  for (const OpNameEntry& entry : kOpNames) {
    if (op == entry.name) {
      request.op = entry.op;
      known = true;
      break;
    }
  }
  if (!known) return Status::InvalidArgument("unknown op '" + op + "'");

  WYM_RETURN_IF_ERROR(GetString(root, "id", &request.id));
  WYM_RETURN_IF_ERROR(GetString(root, "model", &request.model));
  WYM_RETURN_IF_ERROR(GetString(root, "name", &request.name));
  WYM_RETURN_IF_ERROR(GetString(root, "path", &request.path));
  WYM_RETURN_IF_ERROR(GetBool(root, "explain", &request.explain));
  WYM_RETURN_IF_ERROR(GetUint(root, "deadline_ms", &request.deadline_ms));
  WYM_RETURN_IF_ERROR(GetUint(root, "sleep_ms", &request.sleep_ms));

  const obs::JsonValue* pairs = root.Find("pairs");
  if (pairs != nullptr) {
    if (!pairs->IsArray()) {
      return Status::InvalidArgument("'pairs' must be an array");
    }
    for (const obs::JsonValue& entry : pairs->array) {
      data::EmRecord pair;
      WYM_RETURN_IF_ERROR(ParsePair(entry, &pair));
      request.pairs.push_back(std::move(pair));
    }
  } else if (root.Find("left") != nullptr || root.Find("right") != nullptr) {
    // Single-pair convenience: top-level left/right arrays.
    data::EmRecord pair;
    WYM_RETURN_IF_ERROR(ParsePair(root, &pair));
    request.pairs.push_back(std::move(pair));
  }

  if (request.op == Request::Op::kPredict && request.pairs.empty()) {
    return Status::InvalidArgument(
        "predict needs 'pairs' (or top-level 'left'/'right')");
  }
  if (request.op == Request::Op::kLoadModel &&
      (request.name.empty() || request.path.empty())) {
    return Status::InvalidArgument("load_model needs 'name' and 'path'");
  }
  if (request.op == Request::Op::kRetireModel && request.name.empty()) {
    return Status::InvalidArgument("retire_model needs 'name'");
  }
  return request;
}

std::string RenderRequest(const Request& request) {
  std::string out = "{\"op\":";
  out += EscapeJsonString(OpName(request.op));
  if (!request.id.empty()) out += ",\"id\":" + EscapeJsonString(request.id);
  if (!request.model.empty()) {
    out += ",\"model\":" + EscapeJsonString(request.model);
  }
  if (request.explain) out += ",\"explain\":true";
  if (request.deadline_ms != 0) {
    out += ",\"deadline_ms\":" + std::to_string(request.deadline_ms);
  }
  if (!request.name.empty()) {
    out += ",\"name\":" + EscapeJsonString(request.name);
  }
  if (!request.path.empty()) {
    out += ",\"path\":" + EscapeJsonString(request.path);
  }
  if (request.sleep_ms != 0) {
    out += ",\"sleep_ms\":" + std::to_string(request.sleep_ms);
  }
  if (!request.pairs.empty()) {
    out += ",\"pairs\":[";
    for (size_t i = 0; i < request.pairs.size(); ++i) {
      if (i != 0) out += ',';
      AppendPairJson(request.pairs[i], &out);
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string RenderResponse(const Response& response) {
  std::string out = "{\"proto\":";
  out += EscapeJsonString(kProtocolName);
  if (!response.id.empty()) {
    out += ",\"id\":" + EscapeJsonString(response.id);
  }
  if (!response.request_id.empty()) {
    out += ",\"req\":" + EscapeJsonString(response.request_id);
  }
  if (!response.op.empty()) {
    out += ",\"op\":" + EscapeJsonString(response.op);
  }
  if (!response.status.ok()) {
    out += ",\"ok\":false,\"error\":{\"code\":";
    out += EscapeJsonString(WireCodeName(response.status.code()));
    out += ",\"message\":";
    out += EscapeJsonString(response.status.message());
    out += "}}";
    return out;
  }
  out += ",\"ok\":true";
  if (!response.model.empty()) {
    out += ",\"model\":" + EscapeJsonString(response.model);
  }
  if (!response.results.empty()) {
    out += ",\"results\":[";
    for (size_t i = 0; i < response.results.size(); ++i) {
      const PairResult& result = response.results[i];
      if (i != 0) out += ',';
      out += "{\"prediction\":" + std::to_string(result.prediction);
      out += ",\"probability\":" + RenderDouble(result.probability);
      out += std::string(",\"cached\":") + (result.cached ? "true" : "false");
      if (!result.explanation_json.empty()) {
        out += ",\"explanation\":" + result.explanation_json;
      }
      out += '}';
    }
    out += ']';
  }
  if (!response.payload_json.empty()) {
    out += ",\"payload\":" + response.payload_json;
  }
  out += '}';
  return out;
}

Result<Response> ParseResponse(const std::string& line) {
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(line, &root, &error)) {
    return Status::IoError("malformed response JSON: " + error);
  }
  if (!root.IsObject()) {
    return Status::IoError("response must be a JSON object");
  }
  Response response;
  WYM_RETURN_IF_ERROR(GetString(root, "id", &response.id));
  WYM_RETURN_IF_ERROR(GetString(root, "req", &response.request_id));
  WYM_RETURN_IF_ERROR(GetString(root, "op", &response.op));
  WYM_RETURN_IF_ERROR(GetString(root, "model", &response.model));
  const obs::JsonValue* ok = root.Find("ok");
  if (ok == nullptr || !ok->IsBool()) {
    return Status::IoError("response needs an 'ok' boolean");
  }
  if (!ok->boolean) {
    const obs::JsonValue* err = root.Find("error");
    std::string code, message;
    if (err != nullptr && err->IsObject()) {
      (void)GetString(*err, "code", &code);
      (void)GetString(*err, "message", &message);
    }
    response.status = StatusFromWire(code, std::move(message));
    return response;
  }
  const obs::JsonValue* results = root.Find("results");
  if (results != nullptr && results->IsArray()) {
    for (const obs::JsonValue& entry : results->array) {
      PairResult result;
      const obs::JsonValue* prediction = entry.Find("prediction");
      const obs::JsonValue* probability = entry.Find("probability");
      if (prediction != nullptr && prediction->IsNumber()) {
        result.prediction = static_cast<int>(prediction->number);
      }
      if (probability != nullptr && probability->IsNumber()) {
        result.probability = probability->number;
      }
      (void)GetBool(entry, "cached", &result.cached);
      const obs::JsonValue* explanation = entry.Find("explanation");
      if (explanation != nullptr) {
        AppendJsonValue(*explanation, &result.explanation_json);
      }
      response.results.push_back(result);
    }
  }
  const obs::JsonValue* payload = root.Find("payload");
  if (payload != nullptr) {
    AppendJsonValue(*payload, &response.payload_json);
  }
  return response;
}

}  // namespace wym::serve
