#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <future>
#include <memory>
#include <utility>

#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/socket_io.h"

namespace wym::serve {

SocketServer::SocketServer(MatcherService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

void SocketServer::ServeConnection(int fd) {
  LineChannel channel(fd);
  std::string line;
  while (true) {
    bool eof = false;
    bool timed_out = false;
    const Status read =
        channel.ReadLine(&line, options_.read_timeout_ms, &eof, &timed_out);
    // Socket faults close the connection cleanly; the service (and
    // every other client) keeps running.
    if (!read.ok() || eof) return;
    if (timed_out) {
      // Idle poll: during drain an idle connection is released so the
      // server can finish shutting down without waiting on silence.
      if (stopping_.load() || service_->draining()) return;
      continue;
    }
    if (line.empty()) continue;

    Result<Request> parsed = ParseRequest(line);
    if (!parsed.ok()) {
      // Malformed input answers a typed error on the same line slot —
      // a bad client never crashes the server or hangs unanswered.
      Response response;
      response.op = "error";
      response.status = parsed.status();
      if (!channel.WriteLine(RenderResponse(response)).ok()) return;
      continue;
    }
    Request request = std::move(parsed).value();
    const bool is_shutdown = request.op == Request::Op::kShutdown;

    // Promise/future rendezvous: the responder may run inline (sheds,
    // introspection), on a pool worker (executed work), or on the
    // watchdog thread (wedge recovery); the connection thread writes
    // whichever answer arrives first, keeping one writer per socket.
    auto promise = std::make_shared<std::promise<Response>>();
    std::future<Response> future = promise->get_future();
    const Status admitted = service_->Admit(
        std::move(request),
        [promise](const Response& response) { promise->set_value(response); });
    // Shed or admitted, the service answers exactly once; the admission
    // status is already reflected in the response the future carries.
    (void)admitted;
    const Response response = future.get();
    if (!channel.WriteLine(RenderResponse(response)).ok()) return;
    if (is_shutdown) return;
  }
}

Status SocketServer::Serve() {
  Result<int> listener = ListenUnix(options_.socket_path);
  WYM_RETURN_IF_ERROR(listener.status());
  const int listen_fd = listener.value();

  // Watchdog: periodically converts wedged workers into clean error
  // responses. Scan cadence is wall-clock; wedge age is measured with
  // the service's own time source.
  std::thread watchdog;
  if (options_.watchdog_interval_ms != 0 &&
      service_->options().wedge_timeout_ms != 0) {
    watchdog = std::thread([this] {
      uint64_t slept_ms = 0;
      while (!stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        slept_ms += 10;
        if (slept_ms < options_.watchdog_interval_ms) continue;
        slept_ms = 0;
        const size_t recovered = service_->PokeWatchdog(obs::NowNanos());
        if (recovered > 0 && options_.on_watchdog_recover) {
          options_.on_watchdog_recover(recovered);
        }
      }
    });
  }

  std::vector<std::thread> connections;
  while (true) {
    if (options_.on_tick) options_.on_tick();
    if ((options_.stop_requested && options_.stop_requested()) ||
        service_->draining()) {
      break;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;  // Signal delivery lands here.
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      continue;  // A failed accept drops that client, not the server.
    }
    connections.emplace_back([this, fd] { ServeConnection(fd); });
  }

  // Drain sequence: stop accepting, shed new work, finish in-flight,
  // release idle connections, join everything. After this returns the
  // caller flushes the final stats snapshot.
  stopping_.store(true);
  ::close(listen_fd);
  ::unlink(options_.socket_path.c_str());
  service_->Drain();
  for (std::thread& connection : connections) connection.join();
  if (watchdog.joinable()) watchdog.join();
  return Status::Ok();
}

}  // namespace wym::serve
