#ifndef WYM_SERVE_PREDICTION_CACHE_H_
#define WYM_SERVE_PREDICTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/record.h"
#include "util/bounded_cache.h"

/// \file
/// Hash-keyed prediction cache for the matcher service: repeated
/// (left, right, model) queries — the dominant shape of interactive
/// dedup review traffic — skip the tokenize/encode/units/score/classify
/// pipeline entirely.
///
/// Keys reuse `blocking::fingerprint`'s FNV-1a-64 token hashing: each
/// side hashes its attribute-indexed value list (position-sensitive, so
/// a value moving between attributes is a different entity), and the
/// model component carries the registry *generation*, so hot-reloading
/// a model name can never serve stale predictions. Eviction is
/// deterministic and bounded (util::FifoCache): cached entries are
/// derivable state, so eviction can only ever cost a recomputation.

namespace wym::serve {

/// Cache key: one fingerprint per side plus the generation-qualified
/// model id ("name#3[+x]"; the +x suffix keys explanation-bearing
/// entries separately from probability-only ones).
struct PredictionKey {
  uint64_t left_fp = 0;
  uint64_t right_fp = 0;
  std::string model_id;

  bool operator==(const PredictionKey& other) const = default;
};

struct PredictionKeyHash {
  size_t operator()(const PredictionKey& key) const {
    // FNV-style mix of the two fingerprints with the model id's hash.
    uint64_t h = 0xcbf29ce484222325ull;
    for (const uint64_t part :
         {key.left_fp, key.right_fp,
          static_cast<uint64_t>(std::hash<std::string>{}(key.model_id))}) {
      h ^= part;
      h *= 0x100000001b3ull;
    }
    return static_cast<size_t>(h);
  }
};

/// The cached outcome of one scored pair.
struct CachedPrediction {
  int prediction = 0;
  double probability = 0.0;
  /// Pre-rendered explanation JSON (empty for probability-only entries).
  std::string explanation_json;
};

/// Fingerprint of one entity's attribute-indexed value list (FNV-1a-64
/// via blocking::FingerprintTokens over "<index>\x1F<value>" entries —
/// deterministic, position-sensitive, and shared with the blocking
/// tier's hashing).
uint64_t FingerprintEntity(const data::Entity& entity);

/// Builds the key for one pair under a generation-qualified model id.
PredictionKey MakePredictionKey(const data::EmRecord& pair,
                                const std::string& model_id);

/// Bounded, deterministic-eviction prediction cache. Thin alias over
/// the shared FIFO cache so the service layer reads as policy, not
/// plumbing.
using PredictionCache =
    util::FifoCache<PredictionKey, CachedPrediction, PredictionKeyHash>;

}  // namespace wym::serve

#endif  // WYM_SERVE_PREDICTION_CACHE_H_
