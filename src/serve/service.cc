#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "explain/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wym::serve {

namespace {

constexpr uint64_t kMillisToNanos = 1000000ull;

obs::Counter& RequestsCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.requests");
  return counter;
}

obs::Counter& AdmittedCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.admitted");
  return counter;
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("serve.queue_depth");
  return gauge;
}

obs::Histogram& RequestLatencyHistogram() {
  static obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("serve.request_ns");
  return histogram;
}

obs::Counter& WedgedCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.wedged_recovered");
  return counter;
}

obs::Counter& CacheHitCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.cache_hits");
  return counter;
}

obs::Counter& CacheMissCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.cache_misses");
  return counter;
}

obs::Counter& ShedCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.shed");
  return counter;
}

obs::Counter& DeadlineCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve.deadline_expired");
  return counter;
}

Response ErrorResponse(const Request& request, Status status) {
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.status = std::move(status);
  return response;
}

/// The model's feature pipeline is fixed-width; a client pair with a
/// different attribute count is padded with empty values / truncated
/// rather than rejected, mirroring how ragged CSV rows are normalized
/// at training time. Deterministic: the same wire pair always yields
/// the same normalized record.
data::EmRecord NormalizePair(const data::EmRecord& pair,
                             size_t num_attributes) {
  data::EmRecord out = pair;
  out.left.values.resize(num_attributes);
  out.right.values.resize(num_attributes);
  return out;
}

}  // namespace

MatcherService::MatcherService(ModelRegistry* registry,
                               ServiceOptions options,
                               util::ThreadPool* pool)
    : registry_(registry),
      options_(std::move(options)),
      pool_(pool),
      cache_(options_.cache_entries) {}

uint64_t MatcherService::Now() const {
  return options_.now_ns ? options_.now_ns() : obs::NowNanos();
}

bool MatcherService::Respond(const StatePtr& state, Response response) {
  if (state->answered.exchange(true)) return false;
  // The minted admission id rides every response ("req"), so a client
  // retry (same client id, new admission) is distinguishable in the
  // journal.
  char minted[obs::RequestRecord::kIdBytes];
  response.request_id =
      obs::RenderRequestId(state->sequence, minted, sizeof(minted));
  state->responder(response);
  return true;
}

obs::RequestRecord MatcherService::BuildRecord(
    const RequestState& state, uint64_t end_ns,
    obs::RequestOutcome outcome) const {
  obs::RequestRecord record;
  record.sequence = state.sequence;
  obs::SetRecordField(record.client_id, sizeof(record.client_id),
                      state.request.id);
  obs::SetRecordField(record.op, sizeof(record.op),
                      OpName(state.request.op));
  if (state.request.op == Request::Op::kPredict) {
    const std::string name = state.request.model.empty()
                                 ? kDefaultModelName
                                 : state.request.model;
    obs::SetRecordField(
        record.model, sizeof(record.model),
        name + "#" + std::to_string(state.generation.load(
                         std::memory_order_relaxed)));
  }
  record.admit_ns = state.admit_ns;
  const uint64_t started = state.started_ns.load(std::memory_order_relaxed);
  if (started != 0) {
    record.queue_ns = started > state.admit_ns ? started - state.admit_ns : 0;
    record.run_ns = end_ns > started ? end_ns - started : 0;
  }
  record.total_ns = end_ns > state.admit_ns ? end_ns - state.admit_ns : 0;
  record.pairs = static_cast<uint32_t>(state.request.pairs.size());
  record.batches = state.batches.load(std::memory_order_relaxed);
  record.cached = state.cached.load(std::memory_order_relaxed);
  record.outcome = outcome;
  return record;
}

void MatcherService::EmitRecord(const obs::RequestRecord& record) {
  if (options_.journal != nullptr) options_.journal->Append(record);
  if (options_.recorder != nullptr) options_.recorder->Record(record);
}

obs::RequestOutcome MatcherService::ClassifyOutcome(
    const RequestState& state, const Response& response) const {
  if (!response.status.ok()) {
    return response.status.code() == Status::Code::kDeadlineExceeded
               ? obs::RequestOutcome::kDeadline
               : obs::RequestOutcome::kError;
  }
  if (state.request.op == Request::Op::kPredict &&
      !state.request.pairs.empty() &&
      state.cached.load(std::memory_order_relaxed) ==
          state.request.pairs.size()) {
    return obs::RequestOutcome::kCacheHit;
  }
  return obs::RequestOutcome::kOk;
}

Status MatcherService::Admit(Request request, Responder responder) {
  RequestsCounter().Add(1);
  // Every request — inline, queued, or shed — takes an admission
  // sequence number and stamp; together they mint the journal id.
  const uint64_t sequence =
      next_sequence_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t admit_ns = Now();
  const bool telemetry =
      options_.journal != nullptr || options_.recorder != nullptr;

  // Introspection ops answer inline on the admission thread: they are
  // cheap, must work even under overload (stats during an incident is
  // the whole point), and keep serving during drain.
  Response inline_response;
  bool answered_inline = false;
  switch (request.op) {
    case Request::Op::kPing:
      inline_response.payload_json = "{\"protocol\":\"" +
                                     std::string(kProtocolName) + "\"}";
      answered_inline = true;
      break;
    case Request::Op::kStats:
      inline_response.payload_json = StatsJson();
      answered_inline = true;
      break;
    case Request::Op::kListModels:
      inline_response.payload_json = ModelListJson();
      answered_inline = true;
      break;
    case Request::Op::kShutdown:
      BeginDrain();
      inline_response.payload_json = "{\"draining\":true}";
      answered_inline = true;
      break;
    default:
      break;
  }
  if (request.op == Request::Op::kDebugSleep && !options_.enable_debug_ops) {
    Status status = Status::InvalidArgument("debug ops are disabled");
    inline_response.status = status;
    answered_inline = true;
  }
  if (answered_inline) {
    const Status status = inline_response.status;
    inline_response.id = request.id;
    inline_response.op = OpName(request.op);
    char minted[obs::RequestRecord::kIdBytes];
    inline_response.request_id =
        obs::RenderRequestId(sequence, minted, sizeof(minted));
    responder(inline_response);
    if (telemetry) {
      RequestState scratch;
      scratch.request = std::move(request);
      scratch.sequence = sequence;
      scratch.admit_ns = admit_ns;
      EmitRecord(BuildRecord(scratch, Now(),
                             status.ok() ? obs::RequestOutcome::kOk
                                         : obs::RequestOutcome::kError));
    }
    return status;
  }

  auto state = std::make_shared<RequestState>();
  state->request = std::move(request);
  state->responder = std::move(responder);
  state->sequence = sequence;
  state->admit_ns = admit_ns;
  const uint64_t budget_ms = state->request.deadline_ms != 0
                                 ? state->request.deadline_ms
                                 : options_.default_deadline_ms;
  if (budget_ms != 0) {
    state->deadline_ns = state->admit_ns + budget_ms * kMillisToNanos;
  }

  Status admit_status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      admit_status =
          Status::ResourceExhausted("draining: not accepting new work");
    } else if (queue_.size() >= options_.queue_bound) {
      admit_status = Status::ResourceExhausted(
          "queue full (" + std::to_string(options_.queue_bound) +
          " requests); retry with backoff");
    } else {
      queue_.push_back(state);
      QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
    }
  }
  if (!admit_status.ok()) {
    // Shed: answered immediately with the typed error — never blocked
    // waiting for capacity, never silently dropped. Outside the lock:
    // journal emission is file I/O and must not stall admissions.
    Respond(state, ErrorResponse(state->request, admit_status));
    ShedCounter().Add(1);
    if (telemetry) {
      EmitRecord(BuildRecord(*state, Now(), obs::RequestOutcome::kShed));
    }
    return admit_status;
  }
  AdmittedCounter().Add(1);

  if (options_.auto_dispatch) {
    util::ThreadPool& pool =
        pool_ != nullptr ? *pool_ : util::ThreadPool::Global();
    pool.Submit([this] { ProcessOne(); });
  }
  return Status::Ok();
}

bool MatcherService::ProcessOne() {
  StatePtr state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    state = queue_.front();
    queue_.pop_front();
    in_flight_.push_back(state);
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  state->started_ns.store(Now());

  Response response = Execute(state.get());
  const obs::RequestOutcome outcome = ClassifyOutcome(*state, response);
  const bool answered = Respond(state, std::move(response));

  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(
        std::remove(in_flight_.begin(), in_flight_.end(), state),
        in_flight_.end());
    if (queue_.empty() && in_flight_.empty()) idle_cv_.notify_all();
  }
  const uint64_t end_ns = Now();
  RequestLatencyHistogram().Record(end_ns - state->admit_ns);
  // Journal only when this thread won the answer race: a watchdog that
  // already recovered the request has already journaled it as wedged.
  if (answered) {
    if (outcome == obs::RequestOutcome::kDeadline) DeadlineCounter().Add(1);
    if (options_.journal != nullptr || options_.recorder != nullptr) {
      EmitRecord(BuildRecord(*state, end_ns, outcome));
    }
  }
  return true;
}

size_t MatcherService::ProcessQueued() {
  size_t processed = 0;
  while (ProcessOne()) ++processed;
  return processed;
}

void MatcherService::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void MatcherService::AwaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && in_flight_.empty(); });
}

void MatcherService::Drain() {
  BeginDrain();
  // Help finish the backlog on this thread; pool workers racing us pop
  // under the same lock, so every queued request runs exactly once.
  ProcessQueued();
  AwaitIdle();
}

size_t MatcherService::PokeWatchdog(uint64_t now_ns) {
  if (options_.wedge_timeout_ms == 0) return 0;
  const uint64_t wedge_ns = options_.wedge_timeout_ms * kMillisToNanos;
  std::vector<StatePtr> wedged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const StatePtr& state : in_flight_) {
      const uint64_t started = state->started_ns.load();
      if (started == 0 || state->answered.load()) continue;
      if (now_ns > started && now_ns - started > wedge_ns) {
        wedged.push_back(state);
      }
    }
  }
  size_t recovered = 0;
  for (const StatePtr& state : wedged) {
    Status status = Status::DeadlineExceeded(
        "request wedged for over " +
        std::to_string(options_.wedge_timeout_ms) +
        "ms; answered by watchdog");
    // The wedged worker's eventual answer loses the answered exchange
    // and is discarded; the client sees this typed error instead of a
    // hung connection.
    if (Respond(state, ErrorResponse(state->request, status))) {
      ++recovered;
      WedgedCounter().Add(1);
      if (options_.journal != nullptr || options_.recorder != nullptr) {
        EmitRecord(BuildRecord(*state, now_ns, obs::RequestOutcome::kWedged));
      }
    }
  }
  return recovered;
}

bool MatcherService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t MatcherService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t MatcherService::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size();
}

Response MatcherService::Execute(RequestState* state) {
  // Deadline check at dequeue: work that aged out in the queue is
  // answered without burning model time on a result nobody awaits.
  if (state->deadline_ns != 0 && Now() > state->deadline_ns) {
    return ErrorResponse(
        state->request,
        Status::DeadlineExceeded("deadline expired before execution"));
  }
  switch (state->request.op) {
    case Request::Op::kPredict:
      return ExecutePredict(state);
    case Request::Op::kLoadModel:
    case Request::Op::kRetireModel:
      return ExecuteRegistryOp(*state);
    case Request::Op::kDebugSleep:
      return ExecuteDebugSleep(*state);
    default:
      return ErrorResponse(state->request,
                           Status::InvalidArgument(
                               "op cannot be queued: " +
                               std::string(OpName(state->request.op))));
  }
}

Response MatcherService::ExecutePredict(RequestState* state_ptr) {
  RequestState& state = *state_ptr;
  const Request& request = state.request;
  const RegisteredModel registered = registry_->Get(request.model);
  if (registered.model == nullptr) {
    const std::string name =
        request.model.empty() ? kDefaultModelName : request.model;
    return ErrorResponse(request,
                         Status::NotFound("no model named '" + name + "'"));
  }
  const core::WymModel& model = *registered.model;
  const std::string name =
      request.model.empty() ? kDefaultModelName : request.model;
  // Explanation-bearing entries carry extra payload, so they key
  // separately from probability-only ones.
  const std::string model_id = name + "#" +
                               std::to_string(registered.generation) +
                               (request.explain ? "+x" : "");
  state.generation.store(registered.generation, std::memory_order_relaxed);

  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.model = name;
  response.results.resize(request.pairs.size());

  const size_t slice =
      options_.deadline_slice_pairs == 0 ? 16 : options_.deadline_slice_pairs;
  for (size_t begin = 0; begin < request.pairs.size(); begin += slice) {
    // Deadline re-check between batch slices: a large batch cannot
    // blow past its budget by more than one slice of work.
    if (begin != 0 && state.deadline_ns != 0 && Now() > state.deadline_ns) {
      return ErrorResponse(
          request, Status::DeadlineExceeded(
                       "deadline expired after " + std::to_string(begin) +
                       " of " + std::to_string(request.pairs.size()) +
                       " pairs"));
    }
    const size_t end = std::min(begin + slice, request.pairs.size());
    state.batches.fetch_add(1, std::memory_order_relaxed);

    // Cache pass: resolve hits, collect misses for one batch call.
    std::vector<size_t> miss_indices;
    std::vector<data::EmRecord> miss_records;
    for (size_t i = begin; i < end; ++i) {
      const PredictionKey key =
          MakePredictionKey(request.pairs[i], model_id);
      CachedPrediction cached;
      if (cache_.Lookup(key, &cached)) {
        CacheHitCounter().Add(1);
        state.cached.fetch_add(1, std::memory_order_relaxed);
        response.results[i].prediction = cached.prediction;
        response.results[i].probability = cached.probability;
        response.results[i].explanation_json = cached.explanation_json;
        response.results[i].cached = true;
        continue;
      }
      CacheMissCounter().Add(1);
      miss_indices.push_back(i);
      miss_records.push_back(
          NormalizePair(request.pairs[i], model.num_attributes()));
    }
    if (miss_indices.empty()) continue;

    if (request.explain) {
      for (size_t m = 0; m < miss_indices.size(); ++m) {
        const size_t i = miss_indices[m];
        const core::Explanation explanation =
            model.Explain(miss_records[m]);
        response.results[i].prediction = explanation.prediction;
        response.results[i].probability = explanation.probability;
        response.results[i].explanation_json =
            explain::ExplanationToJson(explanation);
        cache_.Insert(MakePredictionKey(request.pairs[i], model_id),
                      CachedPrediction{
                          explanation.prediction, explanation.probability,
                          response.results[i].explanation_json});
      }
    } else {
      // The offline batch path, verbatim — serve answers are
      // byte-identical to PredictProbaBatch on the same pairs
      // (quarantined records included: same 0.0 fallback).
      core::PredictionReport report;
      const std::vector<double> probabilities =
          model.PredictProbaBatch(miss_records, &report, pool_);
      for (size_t m = 0; m < miss_indices.size(); ++m) {
        const size_t i = miss_indices[m];
        const double probability = probabilities[m];
        const int prediction = probability >= 0.5 ? 1 : 0;
        response.results[i].prediction = prediction;
        response.results[i].probability = probability;
        cache_.Insert(MakePredictionKey(request.pairs[i], model_id),
                      CachedPrediction{prediction, probability, ""});
      }
    }
  }
  return response;
}

Response MatcherService::ExecuteRegistryOp(const RequestState& state) {
  const Request& request = state.request;
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  if (request.op == Request::Op::kLoadModel) {
    response.status = registry_->LoadModel(request.name, request.path);
  } else {
    response.status = registry_->Retire(request.name);
  }
  if (response.status.ok()) response.payload_json = ModelListJson();
  return response;
}

Response MatcherService::ExecuteDebugSleep(const RequestState& state) {
  const Request& request = state.request;
  // Simulated wedge for watchdog tests: holds the worker until the
  // requested wall time passes or the watchdog answers first (the
  // answered flag doubles as the escape hatch, so a recovered "wedge"
  // releases its worker instead of leaking it). Real wall clock on
  // purpose — with a fake service clock the sleep must still end.
  const uint64_t sleep_ns = request.sleep_ms * kMillisToNanos;
  const uint64_t begin_ns = obs::NowNanos();
  while (obs::NowNanos() - begin_ns < sleep_ns &&
         !state.answered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Response response;
  response.id = request.id;
  response.op = OpName(request.op);
  response.payload_json =
      "{\"slept_ms\":" + std::to_string(request.sleep_ms) + "}";
  return response;
}

std::string MatcherService::ModelListJson() const {
  std::string out = "{\"models\":[";
  bool first = true;
  for (const std::string& name : registry_->Names()) {
    if (!first) out += ',';
    first = false;
    out += EscapeJsonString(name);
  }
  out += "]}";
  return out;
}

std::string MatcherService::StatsJson() const {
  size_t depth = 0;
  size_t executing = 0;
  bool draining = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
    executing = in_flight_.size();
    draining = draining_;
  }
  std::string out = "{";
  out += "\"queue_depth\":" + std::to_string(depth);
  out += ",\"queue_bound\":" + std::to_string(options_.queue_bound);
  out += ",\"in_flight\":" + std::to_string(executing);
  out += std::string(",\"draining\":") + (draining ? "true" : "false");
  out += ",\"cache\":{\"entries\":" + std::to_string(cache_.size()) +
         ",\"capacity\":" + std::to_string(cache_.capacity()) +
         ",\"evictions\":" + std::to_string(cache_.evictions()) + "}";
  out += ",\"models\":[";
  bool first = true;
  for (const std::string& name : registry_->Names()) {
    if (!first) out += ',';
    first = false;
    out += EscapeJsonString(name);
  }
  out += "]";
  // Telemetry sections appear only when the matching sink is
  // configured, keeping the payload identical to pre-telemetry serving
  // when everything is off.
  if (options_.windows != nullptr) {
    out += ",\"windows\":" + options_.windows->WindowsJson();
  }
  if (options_.journal != nullptr) {
    out += ",\"journal\":{\"path\":" +
           EscapeJsonString(options_.journal->path()) +
           ",\"lines\":" + std::to_string(options_.journal->lines_written()) +
           ",\"rotations\":" +
           std::to_string(options_.journal->rotations()) + "}";
  }
  if (options_.recorder != nullptr) {
    out += ",\"recorder\":{\"capacity\":" +
           std::to_string(options_.recorder->capacity()) +
           ",\"recorded\":" +
           std::to_string(options_.recorder->recorded()) + "}";
  }
  out += ",\"metrics\":" +
         obs::MetricsToJson(obs::Registry::Global().Snapshot());
  out += "}";
  return out;
}

}  // namespace wym::serve
