#ifndef WYM_SERVE_MODEL_REGISTRY_H_
#define WYM_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/wym.h"
#include "util/status.h"

/// \file
/// Multi-model registry for the matcher service: one long-lived process
/// serves many catalogs, each under a client-visible name.
///
/// Robustness contract:
///  - **Hot load is all-or-nothing.** LoadModel goes through
///    WymModel::LoadFromFile, which verifies every v2 frame CRC before
///    deserializing any state; a corrupt or truncated file is rejected
///    with `Corruption` and the previously registered model (if any)
///    keeps serving untouched.
///  - **Retire never tears a request.** Models are handed out as
///    shared_ptr<const WymModel>; in-flight requests hold their
///    reference across Retire/reload, so the old model dies only when
///    its last request finishes.
///  - **Generations poison stale cache entries.** Every successful load
///    bumps a monotonic generation; the prediction cache keys on
///    "name#generation", so a reloaded name can never serve predictions
///    computed by its predecessor.

namespace wym::serve {

/// A registered model plus its cache-key identity.
struct RegisteredModel {
  std::shared_ptr<const core::WymModel> model;
  /// Monotonic across all loads in this registry ("name#generation" is
  /// the prediction-cache model id).
  uint64_t generation = 0;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads (or hot-reloads) `path` under `name`. On any failure the
  /// registry is unchanged — the old model under `name` keeps serving.
  [[nodiscard]] Status LoadModel(const std::string& name,
                                 const std::string& path);

  /// Removes `name`; NotFound when absent. In-flight requests holding
  /// the shared_ptr finish on the retired model.
  [[nodiscard]] Status Retire(const std::string& name);

  /// The model registered under `name` (empty name = "default"), or a
  /// null model pointer when absent.
  RegisteredModel Get(const std::string& name) const;

  /// Registered names, sorted (deterministic listing).
  std::vector<std::string> Names() const;

  size_t size() const;

  /// Loads a config file of `name=path` lines (blank lines and
  /// '#' comments ignored). Every entry must load; the first failure
  /// aborts with its annotated status (fail fast at startup — a
  /// half-configured service is worse than a dead one).
  [[nodiscard]] Status LoadConfigFile(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::map<std::string, RegisteredModel> models_;
  uint64_t next_generation_ = 0;
};

/// The name an empty model field resolves to.
inline constexpr const char* kDefaultModelName = "default";

}  // namespace wym::serve

#endif  // WYM_SERVE_MODEL_REGISTRY_H_
