#ifndef WYM_SERVE_PROTOCOL_H_
#define WYM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"
#include "util/status.h"

/// \file
/// The wym-serve wire protocol: JSON lines (one request object per
/// line, one response object per line) over a local stream socket.
/// Text-framed on purpose: a human can drive the service with a shell
/// one-liner, and a torn line is trivially detectable (no newline).
///
/// Request shape (fields beyond `op` are op-specific):
///
///   {"op":"predict","id":"r1","model":"default","explain":false,
///    "deadline_ms":250,
///    "pairs":[{"left":["iphone 4s","black"],"right":["iphone 4s","blk"]}]}
///   {"op":"ping"} | {"op":"stats"} | {"op":"list_models"}
///   {"op":"load_model","name":"v2","path":"/models/v2.wym"}
///   {"op":"retire_model","name":"v1"}
///   {"op":"shutdown"}
///
/// Response shape:
///
///   {"proto":"wym-serve/v1","id":"r1","op":"predict","ok":true,...}
///   {"proto":"wym-serve/v1","id":"r1","ok":false,
///    "error":{"code":"ResourceExhausted","message":"queue full ..."}}
///
/// Every response is typed: `ok` plus either op-specific payload or an
/// `error` object whose `code` is the Status::Code name — the serving
/// layer's part of the "never silently dropped" contract.

namespace wym::serve {

/// Protocol tag stamped into every response.
inline constexpr const char* kProtocolName = "wym-serve/v1";

/// A parsed request.
struct Request {
  enum class Op {
    kPing,
    kPredict,
    kStats,
    kListModels,
    kLoadModel,
    kRetireModel,
    kShutdown,
    /// Test-only (ServiceOptions::enable_debug_ops): occupies a worker
    /// for `sleep_ms`, the fixture for watchdog/wedge coverage.
    kDebugSleep,
  };

  Op op = Op::kPing;
  /// Client-chosen correlation id, echoed verbatim into the response.
  std::string id;
  /// Model name (predict); empty means "default".
  std::string model;
  /// Record pairs to score (predict). Labels are unused.
  std::vector<data::EmRecord> pairs;
  /// Attach the full explanation (decision units + impacts) to every
  /// scored pair.
  bool explain = false;
  /// Per-request deadline budget in ms; 0 = the server default.
  uint64_t deadline_ms = 0;
  /// Registry ops.
  std::string name;
  std::string path;
  /// kDebugSleep only.
  uint64_t sleep_ms = 0;
};

/// Wire name of an op ("predict", "load_model", ...).
const char* OpName(Request::Op op);

/// Parses one JSON request line. Malformed JSON, an unknown `op`, or a
/// missing required field yields InvalidArgument naming the problem.
Result<Request> ParseRequest(const std::string& line);

/// Serializes a request back to its wire line (the client side; also
/// makes parse/render round-trips testable).
std::string RenderRequest(const Request& request);

/// Scored result for one pair of a predict request.
struct PairResult {
  int prediction = 0;
  double probability = 0.0;
  /// Served from the prediction cache (diagnostics only).
  bool cached = false;
  /// Pre-rendered explanation object (explain::ExplanationToJson);
  /// empty when the request did not ask for explanations.
  std::string explanation_json;
};

/// One response. `status` carries the error taxonomy; the rest is the
/// op-specific payload.
struct Response {
  std::string id;
  /// Server-minted admission id ("q<seq>", wire key "req"): unique per
  /// admission, so two retries of the same client `id` are
  /// distinguishable in the request journal. Empty for responses not
  /// produced by MatcherService (e.g. transport-level parse errors).
  std::string request_id;
  std::string op;
  Status status;
  std::string model;
  std::vector<PairResult> results;
  /// Pre-rendered JSON payload object (stats snapshot, model list);
  /// empty when the op has none.
  std::string payload_json;
};

/// Serializes a response to its wire line (without the trailing
/// newline). This is the response-serialization sink of the
/// determinism-taint contract: its output must be a pure function of
/// the Response value, so no clock, randomness, or hash-order source
/// may reach it (enforced by `wym_lint taint`).
std::string RenderResponse(const Response& response);

/// Parses a response line back into a Response (the client side).
/// `error.code` strings map back onto Status codes; an unknown code
/// parses as IoError so a confused client still fails closed.
Result<Response> ParseResponse(const std::string& line);

/// JSON string escaping shared by the render functions.
std::string EscapeJsonString(const std::string& text);

}  // namespace wym::serve

#endif  // WYM_SERVE_PROTOCOL_H_
