#include "core/feature_extractor.h"

#include <algorithm>

#include "util/logging.h"

namespace wym::core {

namespace {

/// Statistic kinds emitted over a group of unit indices.
enum class Stat { kCount, kSum, kMean, kMedian, kMax, kMin, kRange };

const char* StatName(Stat stat) {
  switch (stat) {
    case Stat::kCount:
      return "count";
    case Stat::kSum:
      return "sum";
    case Stat::kMean:
      return "mean";
    case Stat::kMedian:
      return "median";
    case Stat::kMax:
      return "max";
    case Stat::kMin:
      return "min";
    case Stat::kRange:
      return "range";
  }
  return "?";
}

/// Emits one statistic over the group `members` (unit indices) and, when
/// `attribution` is non-null, the corresponding per-unit weights.
void EmitStat(Stat stat, const std::vector<size_t>& members,
              const std::vector<double>& scores, size_t feature_index,
              std::vector<double>* features, UnitAttribution* attribution) {
  const size_t n = members.size();
  const bool magnitude = (stat == Stat::kCount);
  auto attribute = [&](size_t unit, double weight) {
    if (attribution != nullptr && weight != 0.0) {
      (*attribution)[unit].push_back({feature_index, weight, magnitude});
    }
  };

  if (n == 0) {
    features->push_back(0.0);
    return;
  }

  switch (stat) {
    case Stat::kCount: {
      features->push_back(static_cast<double>(n));
      const double weight = 1.0 / static_cast<double>(n);
      for (size_t u : members) attribute(u, weight);
      break;
    }
    case Stat::kSum: {
      double sum = 0.0;
      for (size_t u : members) sum += scores[u];
      features->push_back(sum);
      for (size_t u : members) attribute(u, 1.0);
      break;
    }
    case Stat::kMean: {
      double sum = 0.0;
      for (size_t u : members) sum += scores[u];
      features->push_back(sum / static_cast<double>(n));
      const double weight = 1.0 / static_cast<double>(n);
      for (size_t u : members) attribute(u, weight);
      break;
    }
    case Stat::kMedian: {
      std::vector<size_t> sorted = members;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [&](size_t a, size_t b) {
                         return scores[a] < scores[b];
                       });
      if (n % 2 == 1) {
        const size_t mid = sorted[n / 2];
        features->push_back(scores[mid]);
        attribute(mid, 1.0);
      } else {
        const size_t lo = sorted[n / 2 - 1];
        const size_t hi = sorted[n / 2];
        features->push_back(0.5 * (scores[lo] + scores[hi]));
        attribute(lo, 0.5);
        attribute(hi, 0.5);
      }
      break;
    }
    case Stat::kMax: {
      size_t best = members[0];
      for (size_t u : members) {
        if (scores[u] > scores[best]) best = u;
      }
      features->push_back(scores[best]);
      attribute(best, 1.0);
      break;
    }
    case Stat::kMin: {
      size_t best = members[0];
      for (size_t u : members) {
        if (scores[u] < scores[best]) best = u;
      }
      features->push_back(scores[best]);
      attribute(best, 1.0);
      break;
    }
    case Stat::kRange: {
      size_t max_u = members[0], min_u = members[0];
      for (size_t u : members) {
        if (scores[u] > scores[max_u]) max_u = u;
        if (scores[u] < scores[min_u]) min_u = u;
      }
      features->push_back(scores[max_u] - scores[min_u]);
      attribute(max_u, 1.0);
      attribute(min_u, -1.0);
      break;
    }
  }
}

}  // namespace

FeatureExtractor::FeatureExtractor(size_t num_attributes, bool simplified)
    : num_attributes_(num_attributes), simplified_(simplified) {
  auto add = [&](const std::string& group, Stat stat) {
    names_.push_back(group + "_" + StatName(stat));
  };
  if (simplified_) {
    // Paper §5.1.3: 6 features — count and average over all scores, the
    // positive scores and the negative scores.
    add("all", Stat::kCount);
    add("all", Stat::kMean);
    add("pos", Stat::kCount);
    add("pos", Stat::kMean);
    add("neg", Stat::kCount);
    add("neg", Stat::kMean);
    return;
  }
  for (size_t a = 0; a < num_attributes_; ++a) {
    const std::string attr = "attr" + std::to_string(a);
    add(attr + "_paired", Stat::kCount);
    add(attr + "_paired", Stat::kMean);
    add(attr + "_paired", Stat::kMax);
    add(attr + "_paired", Stat::kMin);
    add(attr + "_unpaired", Stat::kCount);
    add(attr + "_unpaired", Stat::kMean);
    add(attr + "_unpaired", Stat::kMin);
  }
  // Entity-description scope.
  add("left_unpaired", Stat::kCount);
  add("left_unpaired", Stat::kMean);
  add("right_unpaired", Stat::kCount);
  add("right_unpaired", Stat::kMean);
  // Record scope.
  add("all", Stat::kCount);
  add("all", Stat::kSum);
  add("all", Stat::kMean);
  add("all", Stat::kMedian);
  add("all", Stat::kMax);
  add("all", Stat::kMin);
  add("all", Stat::kRange);
  add("pos", Stat::kCount);
  add("pos", Stat::kSum);
  add("pos", Stat::kMean);
  add("neg", Stat::kCount);
  add("neg", Stat::kSum);
  add("neg", Stat::kMean);
  add("paired", Stat::kCount);
  add("paired", Stat::kMean);
  add("unpaired", Stat::kCount);
  add("unpaired", Stat::kMean);
}

void FeatureExtractor::Compute(const ScoredUnitSet& set,
                               std::vector<double>* features,
                               UnitAttribution* attribution) const {
  WYM_CHECK_EQ(set.units.size(), set.scores.size());
  features->clear();
  features->reserve(dim());
  if (attribution != nullptr) {
    attribution->assign(set.size(), {});
  }

  // Group memberships.
  std::vector<size_t> all, positive, negative, paired, unpaired;
  std::vector<size_t> left_unpaired, right_unpaired;
  std::vector<std::vector<size_t>> attr_paired(num_attributes_);
  std::vector<std::vector<size_t>> attr_unpaired(num_attributes_);
  for (size_t u = 0; u < set.size(); ++u) {
    const DecisionUnit& unit = set.units[u];
    all.push_back(u);
    (set.scores[u] > 0.0 ? positive : negative).push_back(u);
    const size_t attr = std::min(unit.AnchorAttribute(),
                                 num_attributes_ == 0 ? 0
                                                      : num_attributes_ - 1);
    if (unit.paired) {
      paired.push_back(u);
      if (num_attributes_ > 0) attr_paired[attr].push_back(u);
    } else {
      unpaired.push_back(u);
      if (num_attributes_ > 0) attr_unpaired[attr].push_back(u);
      (unit.unpaired_side == Side::kLeft ? left_unpaired : right_unpaired)
          .push_back(u);
    }
  }

  size_t f = 0;
  auto emit = [&](Stat stat, const std::vector<size_t>& group) {
    EmitStat(stat, group, set.scores, f++, features, attribution);
  };

  if (simplified_) {
    emit(Stat::kCount, all);
    emit(Stat::kMean, all);
    emit(Stat::kCount, positive);
    emit(Stat::kMean, positive);
    emit(Stat::kCount, negative);
    emit(Stat::kMean, negative);
    WYM_CHECK_EQ(f, dim());
    return;
  }

  for (size_t a = 0; a < num_attributes_; ++a) {
    emit(Stat::kCount, attr_paired[a]);
    emit(Stat::kMean, attr_paired[a]);
    emit(Stat::kMax, attr_paired[a]);
    emit(Stat::kMin, attr_paired[a]);
    emit(Stat::kCount, attr_unpaired[a]);
    emit(Stat::kMean, attr_unpaired[a]);
    emit(Stat::kMin, attr_unpaired[a]);
  }
  emit(Stat::kCount, left_unpaired);
  emit(Stat::kMean, left_unpaired);
  emit(Stat::kCount, right_unpaired);
  emit(Stat::kMean, right_unpaired);
  emit(Stat::kCount, all);
  emit(Stat::kSum, all);
  emit(Stat::kMean, all);
  emit(Stat::kMedian, all);
  emit(Stat::kMax, all);
  emit(Stat::kMin, all);
  emit(Stat::kRange, all);
  emit(Stat::kCount, positive);
  emit(Stat::kSum, positive);
  emit(Stat::kMean, positive);
  emit(Stat::kCount, negative);
  emit(Stat::kSum, negative);
  emit(Stat::kMean, negative);
  emit(Stat::kCount, paired);
  emit(Stat::kMean, paired);
  emit(Stat::kCount, unpaired);
  emit(Stat::kMean, unpaired);
  WYM_CHECK_EQ(f, dim());
}

std::vector<double> FeatureExtractor::Extract(const ScoredUnitSet& set) const {
  std::vector<double> features;
  Compute(set, &features, nullptr);
  return features;
}

UnitAttribution FeatureExtractor::Attribution(const ScoredUnitSet& set) const {
  std::vector<double> features;
  UnitAttribution attribution;
  Compute(set, &features, &attribution);
  return attribution;
}

}  // namespace wym::core
