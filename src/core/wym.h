#ifndef WYM_CORE_WYM_H_
#define WYM_CORE_WYM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/explainable_matcher.h"
#include "core/matcher.h"
#include "core/relevance_scorer.h"
#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "data/record.h"
#include "embedding/semantic_encoder.h"
#include "text/tokenizer.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/status.h"

/// \file
/// The WYM facade: the full "Why do You Match?" pipeline of the paper —
/// tokenize -> encode -> discover decision units (Algorithm 1) -> score
/// their relevance -> engineer features -> classify -> attribute impact
/// scores. This is the library's primary public API.
///
/// Typical use:
/// \code
///   wym::core::WymModel model;                 // default WymConfig
///   model.Fit(split.train, split.validation);
///   auto explanation = model.Explain(record);  // prediction + units
/// \endcode

namespace wym::core {

/// End-to-end configuration of the pipeline. Defaults reproduce the
/// paper's setting (theta/eta/epsilon = 0.6/0.65/0.7, SBERT-like encoder,
/// neural relevance scorer, full feature engineering, best-of-pool
/// classifier selection).
struct WymConfig {
  text::TokenizerOptions tokenizer;
  /// Pairing thresholds. The paper's values (0.6 / 0.65 / 0.7) are tuned
  /// to BERT's cosine geometry; the substitute hash-gram + PPMI encoder
  /// has a wider cosine spread, so the calibrated defaults sit lower
  /// while preserving the increasing theta < eta < epsilon ordering the
  /// paper prescribes (§4.1.2). `generator.quantized` (default on)
  /// selects the int8 similarity-matrix fast path; set it false for the
  /// full-precision fp fallback — it is a runtime knob, not part of the
  /// saved model.
  UnitGeneratorOptions generator = {.theta = 0.45,
                                    .eta = 0.50,
                                    .epsilon = 0.55,
                                    .similarity =
                                        PairingSimilarity::kEmbedding,
                                    .rules = {}};
  embedding::SemanticEncoderOptions encoder = {
      .mode = embedding::EncoderMode::kSiamese,
      .hash_dim = 32,
      .cooc_dim = 16,
      .cooc = {},
      .context = {},
      .siamese = {},
      .seed = 0xE11C0DE};
  RelevanceScorerOptions scorer;
  /// Use the 6-feature simplified matcher (Table 4 ablation).
  bool simplified_features = false;
  /// Pin the classifier ("LR", ..., empty = best-of-pool).
  std::string classifier;
  uint64_t seed = 0x3717;
};

/// One explained decision unit.
struct ExplainedUnit {
  DecisionUnit unit;
  double relevance = 0.0;
  double impact = 0.0;
};

/// Per-run quarantine report of the batch prediction APIs. Degenerate
/// records — zero tokens on both sides after tokenization, or a
/// non-finite probability — are not predictable; instead of aborting or
/// propagating NaNs, the batch paths give them the non-match fallback
/// (probability 0.0, prediction 0) and list them here.
struct PredictionReport {
  struct Quarantined {
    size_t index = 0;     ///< Record index within the dataset.
    std::string reason;   ///< Why the record could not be predicted.
  };
  std::vector<Quarantined> quarantined;
  /// Records that went through the full pipeline.
  size_t predicted = 0;

  bool clean() const { return quarantined.empty(); }
};

/// Prediction plus explanation for one record (paper §3.1: EX(r)).
struct Explanation {
  int prediction = 0;
  double probability = 0.0;
  std::vector<ExplainedUnit> units;

  /// Unit indices sorted by |impact| descending (explanation reading
  /// order; also used by the conciseness and MoRF/LeRF evaluations).
  std::vector<size_t> RankByImpactMagnitude() const;
};

/// The intrinsically interpretable EM system.
class WymModel : public Matcher {
 public:
  explicit WymModel(WymConfig config = {});

  const char* name() const override { return "WYM"; }

  /// Trains the full pipeline. `validation` steers classifier selection
  /// (pass an empty dataset to select on training F1).
  void Fit(const data::Dataset& train,
           const data::Dataset& validation) override;

  /// Matching probability for a record.
  double PredictProba(const data::EmRecord& record) const override;

  /// Prediction + decision units with relevance and impact scores.
  Explanation Explain(const data::EmRecord& record) const;

  /// --- batch APIs (deterministic parallel runtime) ---
  ///
  /// Each record's tokenize -> encode -> units -> score -> classify
  /// chain is independent, so the batch APIs fan records across `pool`
  /// (the global WYM_THREADS pool when nullptr) and write results by
  /// record index. Output is bit-identical to the sequential per-record
  /// calls at every thread count — see DESIGN.md "Threading model".

  /// Matching probabilities for every record of `dataset`, in order.
  /// Degenerate records are quarantined into `report` (when non-null)
  /// with the non-match fallback probability 0.0 — the batch paths never
  /// abort on bad records and never emit NaN.
  std::vector<double> PredictProbaBatch(const data::Dataset& dataset,
                                        util::ThreadPool* pool = nullptr) const;
  std::vector<double> PredictProbaBatch(const data::Dataset& dataset,
                                        PredictionReport* report,
                                        util::ThreadPool* pool = nullptr) const;

  /// Matching probabilities for a plain record list — the entry point
  /// the streaming candidate tier (blocking::MatchTables) feeds in
  /// bounded-memory chunks. Same quarantine and determinism contract as
  /// the dataset overloads.
  std::vector<double> PredictProbaBatch(
      const std::vector<data::EmRecord>& records,
      PredictionReport* report = nullptr,
      util::ThreadPool* pool = nullptr) const;

  /// Explanations for every record of `dataset`, in order. Quarantined
  /// records yield an empty explanation (no units, probability 0.0).
  std::vector<Explanation> ExplainBatch(const data::Dataset& dataset,
                                        util::ThreadPool* pool = nullptr) const;
  std::vector<Explanation> ExplainBatch(const data::Dataset& dataset,
                                        PredictionReport* report,
                                        util::ThreadPool* pool = nullptr) const;

  /// Hard predictions through the parallel batch path.
  std::vector<int> PredictDataset(const data::Dataset& dataset) const override;

  /// --- lower-level hooks used by the evaluation harnesses ---

  /// Tokenizes + encodes a record with the trained encoder.
  TokenizedRecord Prepare(const data::EmRecord& record) const;

  /// Decision units of a prepared record.
  std::vector<DecisionUnit> GenerateUnits(const TokenizedRecord& record) const;

  /// Relevance scores for given units.
  std::vector<double> ScoreUnits(const TokenizedRecord& record,
                                 const std::vector<DecisionUnit>& units) const;

  /// Probability from an explicit (possibly perturbed) scored unit set —
  /// the entry point of the MoRF/LeRF/sufficiency experiments, which
  /// remove units and re-predict.
  double PredictProbaFromUnits(const ScoredUnitSet& set) const;

  /// Persists the trained pipeline (encoder state, scorer network,
  /// selected classifier, calibration) in model-file format v2: a framed
  /// container with a magic + format-version header, one
  /// length-prefixed, CRC32C-checksummed section per component, and a
  /// whole-file trailer (see DESIGN.md "Failure model & file-format
  /// v2"). The write is atomic (temp file -> flush -> fsync -> rename),
  /// so a crashed or out-of-space save never clobbers a previous good
  /// model. Custom pairing rules (config().generator.rules) are code,
  /// not data: they are NOT serialized and must be re-registered via
  /// LoadFromFile's config parameter.
  [[nodiscard]] Status SaveToFile(const std::string& path) const;

  /// Legacy format v1 writer (unframed serde stream, no checksums).
  /// Kept only so the v1 -> v2 migration path stays testable; new code
  /// must use SaveToFile.
  [[nodiscard]] Status SaveToFileV1(const std::string& path) const;

  /// Restores a SaveToFile()d model. Format v2 files are verified frame
  /// by frame before any state is deserialized; damage yields
  /// `Status::Corruption` naming the broken section. Legacy v1 files
  /// still load (with a deprecation note on stderr). `rules` re-attaches
  /// the pairing rules that were active at training time (empty = none).
  static Result<WymModel> LoadFromFile(
      const std::string& path, std::vector<PairingRule> rules = {});

  /// Checks a model file's structure and every CRC without
  /// deserializing any model state (the `wym_cli verify` backend).
  /// `summary` (optional) receives a per-frame report. Legacy v1 files
  /// verify vacuously (they carry no checksums) with a note to re-save.
  [[nodiscard]] static Status VerifyFile(const std::string& path,
                                         std::string* summary = nullptr);

  bool fitted() const { return fitted_; }
  const WymConfig& config() const { return config_; }
  const ExplainableMatcher& matcher() const { return matcher_; }
  const embedding::SemanticEncoder& encoder() const { return encoder_; }
  size_t num_attributes() const { return num_attributes_; }

 private:
  ScoredUnitSet BuildScoredUnits(const TokenizedRecord& record) const;

  /// Shared implementation of the PredictProbaBatch overloads over a
  /// contiguous record range.
  std::vector<double> PredictProbaRange(const data::EmRecord* records,
                                        size_t n, PredictionReport* report,
                                        util::ThreadPool* pool) const;

  WymConfig config_;
  text::Tokenizer tokenizer_;
  embedding::SemanticEncoder encoder_;
  DecisionUnitGenerator generator_;
  RelevanceScorer scorer_;
  ExplainableMatcher matcher_;
  size_t num_attributes_ = 0;
  bool fitted_ = false;
};

}  // namespace wym::core

#endif  // WYM_CORE_WYM_H_
