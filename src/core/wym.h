#ifndef WYM_CORE_WYM_H_
#define WYM_CORE_WYM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/explainable_matcher.h"
#include "core/matcher.h"
#include "core/relevance_scorer.h"
#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "data/record.h"
#include "embedding/semantic_encoder.h"
#include "text/tokenizer.h"
#include "util/parallel.h"
#include "util/serde.h"
#include "util/status.h"

/// \file
/// The WYM facade: the full "Why do You Match?" pipeline of the paper —
/// tokenize -> encode -> discover decision units (Algorithm 1) -> score
/// their relevance -> engineer features -> classify -> attribute impact
/// scores. This is the library's primary public API.
///
/// Typical use:
/// \code
///   wym::core::WymModel model;                 // default WymConfig
///   model.Fit(split.train, split.validation);
///   auto explanation = model.Explain(record);  // prediction + units
/// \endcode

namespace wym::core {

/// End-to-end configuration of the pipeline. Defaults reproduce the
/// paper's setting (theta/eta/epsilon = 0.6/0.65/0.7, SBERT-like encoder,
/// neural relevance scorer, full feature engineering, best-of-pool
/// classifier selection).
struct WymConfig {
  text::TokenizerOptions tokenizer;
  /// Pairing thresholds. The paper's values (0.6 / 0.65 / 0.7) are tuned
  /// to BERT's cosine geometry; the substitute hash-gram + PPMI encoder
  /// has a wider cosine spread, so the calibrated defaults sit lower
  /// while preserving the increasing theta < eta < epsilon ordering the
  /// paper prescribes (§4.1.2).
  UnitGeneratorOptions generator = {.theta = 0.45,
                                    .eta = 0.50,
                                    .epsilon = 0.55,
                                    .similarity =
                                        PairingSimilarity::kEmbedding,
                                    .rules = {}};
  embedding::SemanticEncoderOptions encoder = {
      .mode = embedding::EncoderMode::kSiamese,
      .hash_dim = 32,
      .cooc_dim = 16,
      .cooc = {},
      .context = {},
      .siamese = {},
      .seed = 0xE11C0DE};
  RelevanceScorerOptions scorer;
  /// Use the 6-feature simplified matcher (Table 4 ablation).
  bool simplified_features = false;
  /// Pin the classifier ("LR", ..., empty = best-of-pool).
  std::string classifier;
  uint64_t seed = 0x3717;
};

/// One explained decision unit.
struct ExplainedUnit {
  DecisionUnit unit;
  double relevance = 0.0;
  double impact = 0.0;
};

/// Prediction plus explanation for one record (paper §3.1: EX(r)).
struct Explanation {
  int prediction = 0;
  double probability = 0.0;
  std::vector<ExplainedUnit> units;

  /// Unit indices sorted by |impact| descending (explanation reading
  /// order; also used by the conciseness and MoRF/LeRF evaluations).
  std::vector<size_t> RankByImpactMagnitude() const;
};

/// The intrinsically interpretable EM system.
class WymModel : public Matcher {
 public:
  explicit WymModel(WymConfig config = {});

  const char* name() const override { return "WYM"; }

  /// Trains the full pipeline. `validation` steers classifier selection
  /// (pass an empty dataset to select on training F1).
  void Fit(const data::Dataset& train,
           const data::Dataset& validation) override;

  /// Matching probability for a record.
  double PredictProba(const data::EmRecord& record) const override;

  /// Prediction + decision units with relevance and impact scores.
  Explanation Explain(const data::EmRecord& record) const;

  /// --- batch APIs (deterministic parallel runtime) ---
  ///
  /// Each record's tokenize -> encode -> units -> score -> classify
  /// chain is independent, so the batch APIs fan records across `pool`
  /// (the global WYM_THREADS pool when nullptr) and write results by
  /// record index. Output is bit-identical to the sequential per-record
  /// calls at every thread count — see DESIGN.md "Threading model".

  /// Matching probabilities for every record of `dataset`, in order.
  std::vector<double> PredictProbaBatch(const data::Dataset& dataset,
                                        util::ThreadPool* pool = nullptr) const;

  /// Explanations for every record of `dataset`, in order.
  std::vector<Explanation> ExplainBatch(const data::Dataset& dataset,
                                        util::ThreadPool* pool = nullptr) const;

  /// Hard predictions through the parallel batch path.
  std::vector<int> PredictDataset(const data::Dataset& dataset) const override;

  /// --- lower-level hooks used by the evaluation harnesses ---

  /// Tokenizes + encodes a record with the trained encoder.
  TokenizedRecord Prepare(const data::EmRecord& record) const;

  /// Decision units of a prepared record.
  std::vector<DecisionUnit> GenerateUnits(const TokenizedRecord& record) const;

  /// Relevance scores for given units.
  std::vector<double> ScoreUnits(const TokenizedRecord& record,
                                 const std::vector<DecisionUnit>& units) const;

  /// Probability from an explicit (possibly perturbed) scored unit set —
  /// the entry point of the MoRF/LeRF/sufficiency experiments, which
  /// remove units and re-predict.
  double PredictProbaFromUnits(const ScoredUnitSet& set) const;

  /// Persists the trained pipeline (encoder state, scorer network,
  /// selected classifier, calibration). Custom pairing rules
  /// (config().generator.rules) are code, not data: they are NOT
  /// serialized and must be re-registered via LoadFromFile's config
  /// parameter.
  Status SaveToFile(const std::string& path) const;

  /// Restores a SaveToFile()d model. `rules` re-attaches the pairing
  /// rules that were active at training time (empty = none).
  static Result<WymModel> LoadFromFile(
      const std::string& path, std::vector<PairingRule> rules = {});

  bool fitted() const { return fitted_; }
  const WymConfig& config() const { return config_; }
  const ExplainableMatcher& matcher() const { return matcher_; }
  const embedding::SemanticEncoder& encoder() const { return encoder_; }
  size_t num_attributes() const { return num_attributes_; }

 private:
  ScoredUnitSet BuildScoredUnits(const TokenizedRecord& record) const;

  WymConfig config_;
  text::Tokenizer tokenizer_;
  embedding::SemanticEncoder encoder_;
  DecisionUnitGenerator generator_;
  RelevanceScorer scorer_;
  ExplainableMatcher matcher_;
  size_t num_attributes_ = 0;
  bool fitted_ = false;
};

}  // namespace wym::core

#endif  // WYM_CORE_WYM_H_
