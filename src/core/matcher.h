#ifndef WYM_CORE_MATCHER_H_
#define WYM_CORE_MATCHER_H_

#include <string>
#include <vector>

#include "data/record.h"

/// \file
/// The abstract EM-matcher interface shared by WYM and the baseline
/// systems (DM+, AutoML, CorDEL, DITTO stand-ins). Post-hoc explainers
/// (LIME, Landmark) operate on this interface treating the model as a
/// black box.

namespace wym::core {

/// A trained binary entity matcher over records of a fixed schema.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// System name as used in the paper's tables ("WYM", "DM+", ...).
  virtual const char* name() const = 0;

  /// Trains on the given splits (validation may be empty).
  virtual void Fit(const data::Dataset& train,
                   const data::Dataset& validation) = 0;

  /// Matching probability for one record.
  virtual double PredictProba(const data::EmRecord& record) const = 0;

  /// Hard prediction at threshold 0.5.
  int Predict(const data::EmRecord& record) const {
    return PredictProba(record) >= 0.5 ? 1 : 0;
  }

  /// Hard predictions for a whole dataset. Virtual so systems with a
  /// parallel batch path (WymModel) can fan the records across the
  /// thread pool; the default is the sequential record loop.
  virtual std::vector<int> PredictDataset(const data::Dataset& dataset) const {
    std::vector<int> out;
    out.reserve(dataset.records.size());
    for (const auto& record : dataset.records) {
      out.push_back(Predict(record));
    }
    return out;
  }
};

}  // namespace wym::core

#endif  // WYM_CORE_MATCHER_H_
