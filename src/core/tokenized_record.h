#ifndef WYM_CORE_TOKENIZED_RECORD_H_
#define WYM_CORE_TOKENIZED_RECORD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/record.h"
#include "embedding/semantic_encoder.h"
#include "la/vector_ops.h"
#include "text/tokenizer.h"

/// \file
/// Tokenized + encoded view of an EM record: the input representation of
/// the decision-unit generator (paper §4.1.1: tokenize attribute values,
/// assign contextual embeddings).

namespace wym::core {

/// One entity description after tokenization (and optionally encoding).
struct TokenizedEntity {
  /// Flat token list (attribute values concatenated, in schema order).
  std::vector<std::string> tokens;
  /// Attribute index of each flat token.
  std::vector<size_t> attribute_of;
  /// Contextual embedding of each flat token (empty until encoded).
  std::vector<la::Vec> embeddings;

  size_t size() const { return tokens.size(); }

  /// Flat indices of the tokens belonging to attribute `attr`.
  std::vector<size_t> TokensOfAttribute(size_t attr) const;
};

/// A tokenized record: both descriptions plus the label.
struct TokenizedRecord {
  TokenizedEntity left;
  TokenizedEntity right;
  int label = 0;
};

/// Tokenizes one entity over `schema` (embeddings left empty).
TokenizedEntity TokenizeEntity(const data::Entity& entity,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer);

/// Tokenizes a full record.
TokenizedRecord TokenizeRecord(const data::EmRecord& record,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer);

/// Fills `entity->embeddings` with the encoder's contextual vectors.
void EncodeEntity(const embedding::SemanticEncoder& encoder,
                  TokenizedEntity* entity);

}  // namespace wym::core

#endif  // WYM_CORE_TOKENIZED_RECORD_H_
