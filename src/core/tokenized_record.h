#ifndef WYM_CORE_TOKENIZED_RECORD_H_
#define WYM_CORE_TOKENIZED_RECORD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/record.h"
#include "embedding/semantic_encoder.h"
#include "la/vector_ops.h"
#include "text/tokenizer.h"

/// \file
/// Tokenized + encoded view of an EM record: the input representation of
/// the decision-unit generator (paper §4.1.1: tokenize attribute values,
/// assign contextual embeddings).

namespace wym::core {

/// One entity description after tokenization (and optionally encoding).
struct TokenizedEntity {
  /// Flat token list (attribute values concatenated, in schema order).
  std::vector<std::string> tokens;
  /// Attribute index of each flat token.
  std::vector<size_t> attribute_of;
  /// Contextual embedding of each flat token (empty until encoded).
  std::vector<la::Vec> embeddings;
  /// Unit-normalized copies of `embeddings`, packed row-major
  /// (size() x embedding_dim) for the one-shot similarity-matrix kernel
  /// of the decision-unit generator. Filled by PackEmbeddings /
  /// EncodeEntity; all-zero embeddings stay all-zero rows.
  la::Vec packed_embeddings;
  /// Pre-normalization Euclidean norm of each embedding (the encoder
  /// emits unit vectors, so these are ~1; they preserve the full cosine
  /// for entities built with arbitrary vectors).
  std::vector<double> embedding_norms;
  /// Row width of `packed_embeddings` (0 until packed).
  size_t embedding_dim = 0;

  size_t size() const { return tokens.size(); }

  /// Flat indices of the tokens belonging to attribute `attr`.
  std::vector<size_t> TokensOfAttribute(size_t attr) const;

  /// True when packed_embeddings is in sync with embeddings' shape.
  bool HasPackedEmbeddings() const {
    return !embeddings.empty() &&
           packed_embeddings.size() == embeddings.size() * embedding_dim &&
           embedding_norms.size() == embeddings.size();
  }

  /// (Re)builds packed_embeddings + embedding_norms from `embeddings`:
  /// one unit-normalization per token at encode time, so every cosine
  /// downstream collapses to a dot product.
  void PackEmbeddings();
};

/// A tokenized record: both descriptions plus the label.
struct TokenizedRecord {
  TokenizedEntity left;
  TokenizedEntity right;
  int label = 0;
};

/// Packs `embeddings` into unit-normalized row-major float rows and
/// returns the row width. `norms` (optional) receives each row's
/// pre-normalization Euclidean norm. All-zero vectors stay all-zero.
size_t PackUnitRows(const std::vector<la::Vec>& embeddings, la::Vec* packed,
                    std::vector<double>* norms);

/// Tokenizes one entity over `schema` (embeddings left empty).
TokenizedEntity TokenizeEntity(const data::Entity& entity,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer);

/// Tokenizes a full record.
TokenizedRecord TokenizeRecord(const data::EmRecord& record,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer);

/// Fills `entity->embeddings` with the encoder's contextual vectors.
void EncodeEntity(const embedding::SemanticEncoder& encoder,
                  TokenizedEntity* entity);

}  // namespace wym::core

#endif  // WYM_CORE_TOKENIZED_RECORD_H_
