#ifndef WYM_CORE_TOKENIZED_RECORD_H_
#define WYM_CORE_TOKENIZED_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"
#include "embedding/semantic_encoder.h"
#include "la/vector_ops.h"
#include "text/tokenizer.h"

/// \file
/// Tokenized + encoded view of an EM record: the input representation of
/// the decision-unit generator (paper §4.1.1: tokenize attribute values,
/// assign contextual embeddings).

namespace wym::core {

/// One entity description after tokenization (and optionally encoding).
struct TokenizedEntity {
  /// Flat token list (attribute values concatenated, in schema order).
  std::vector<std::string> tokens;
  /// Attribute index of each flat token.
  std::vector<size_t> attribute_of;
  /// Contextual embedding of each flat token (empty until encoded).
  std::vector<la::Vec> embeddings;
  /// Unit-normalized copies of `embeddings`, packed row-major
  /// (size() x embedding_dim) for the one-shot similarity-matrix kernel
  /// of the decision-unit generator. Filled by PackEmbeddings /
  /// EncodeEntity; all-zero embeddings stay all-zero rows.
  la::Vec packed_embeddings;
  /// Pre-normalization Euclidean norm of each embedding (the encoder
  /// emits unit vectors, so these are ~1; they preserve the full cosine
  /// for entities built with arbitrary vectors).
  std::vector<double> embedding_norms;
  /// Row width of `packed_embeddings` (0 until packed).
  size_t embedding_dim = 0;
  /// Symmetric per-row int8 quantization of the packed unit rows
  /// (la::kernels::QuantizeRowsI8), cached at encode time next to the
  /// float packing so the quantized similarity-matrix fast path never
  /// re-quantizes per pair. Same row-major shape as packed_embeddings.
  std::vector<int8_t> quantized_embeddings;
  /// One dequantization scale per row (max|x| / 127; 0 for zero rows).
  std::vector<float> quantized_scales;
  /// One L1 norm per packed fp row, cached for the quantized path's
  /// per-cell refinement bound so it never rescans rows per pair.
  std::vector<float> quantized_l1;

  size_t size() const { return tokens.size(); }

  /// Flat indices of the tokens belonging to attribute `attr`.
  std::vector<size_t> TokensOfAttribute(size_t attr) const;

  /// True when packed_embeddings is in sync with embeddings' shape.
  bool HasPackedEmbeddings() const {
    return !embeddings.empty() &&
           packed_embeddings.size() == embeddings.size() * embedding_dim &&
           embedding_norms.size() == embeddings.size();
  }

  /// True when the quantized cache is in sync with embeddings' shape.
  bool HasQuantizedEmbeddings() const {
    return HasPackedEmbeddings() &&
           quantized_embeddings.size() == embeddings.size() * embedding_dim &&
           quantized_scales.size() == embeddings.size() &&
           quantized_l1.size() == embeddings.size();
  }

  /// (Re)builds packed_embeddings + embedding_norms from `embeddings`
  /// (one unit-normalization per token at encode time, so every cosine
  /// downstream collapses to a dot product), then quantizes the unit
  /// rows into quantized_embeddings + quantized_scales for the int8
  /// fast path.
  void PackEmbeddings();
};

/// A tokenized record: both descriptions plus the label.
struct TokenizedRecord {
  TokenizedEntity left;
  TokenizedEntity right;
  int label = 0;
};

/// Packs `embeddings` into unit-normalized row-major float rows and
/// returns the row width. `norms` (optional) receives each row's
/// pre-normalization Euclidean norm. All-zero vectors stay all-zero.
size_t PackUnitRows(const std::vector<la::Vec>& embeddings, la::Vec* packed,
                    std::vector<double>* norms);

/// Quantizes `n_rows` packed row-major float rows of width `dim` into
/// int8 codes + per-row scales (resizing the outputs). Thin shape-aware
/// wrapper over la::kernels::QuantizeRowsI8. `l1` (optional) receives
/// each fp row's L1 norm (sequential double accumulation, rounded to
/// float) for the refinement error bound of the quantized screen.
void QuantizeUnitRows(const float* rows, size_t n_rows, size_t dim,
                      std::vector<int8_t>* q, std::vector<float>* scales,
                      std::vector<float>* l1 = nullptr);

/// Tokenizes one entity over `schema` (embeddings left empty).
TokenizedEntity TokenizeEntity(const data::Entity& entity,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer);

/// Tokenizes a full record.
TokenizedRecord TokenizeRecord(const data::EmRecord& record,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer);

/// Fills `entity->embeddings` with the encoder's contextual vectors.
void EncodeEntity(const embedding::SemanticEncoder& encoder,
                  TokenizedEntity* entity);

}  // namespace wym::core

#endif  // WYM_CORE_TOKENIZED_RECORD_H_
