#ifndef WYM_CORE_FEATURE_EXTRACTOR_H_
#define WYM_CORE_FEATURE_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/decision_unit.h"

/// \file
/// The explainable matcher's feature engineering (paper §4.3): statistics
/// (max, min, count, sum, mean, median, range) over the relevance scores,
/// aggregated per attribute, per entity description and per record —
/// injecting structural and pragmatic knowledge into the classifier. The
/// extractor also provides the *inverse* transformation: for every
/// feature, the attribution weight of each decision unit (e.g. 1/N for a
/// mean over N units), which routes trained coefficients back to units to
/// form impact scores.

namespace wym::core {

/// A record's decision units plus their relevance scores (parallel).
struct ScoredUnitSet {
  std::vector<DecisionUnit> units;
  std::vector<double> scores;

  size_t size() const { return units.size(); }
};

/// One feature's contribution channel to a unit.
struct FeatureContribution {
  size_t feature = 0;
  double weight = 0.0;
  /// Count-style features carry their direction in the coefficient, so
  /// their impact uses |relevance| instead of the signed relevance
  /// (otherwise an unpaired unit's negative relevance would flip the sign
  /// of a negative "unpaired_count" coefficient into a spurious positive
  /// impact).
  bool magnitude = false;
};

/// Sparse per-unit attribution: attribution[u] lists the contributions.
using UnitAttribution = std::vector<std::vector<FeatureContribution>>;

/// Turns scored units into classifier features.
class FeatureExtractor {
 public:
  /// `num_attributes` = schema width. `simplified` selects the 6-feature
  /// variant of the Table 4 "Matcher / smp. feat." ablation (count and
  /// mean over all / positive / negative scores).
  explicit FeatureExtractor(size_t num_attributes, bool simplified = false);

  /// Number of features produced.
  size_t dim() const { return names_.size(); }

  /// Stable, human-readable feature names (used by tests and benches).
  const std::vector<std::string>& feature_names() const { return names_; }

  bool simplified() const { return simplified_; }
  size_t num_attributes() const { return num_attributes_; }

  /// Extracts the feature row of one record.
  std::vector<double> Extract(const ScoredUnitSet& set) const;

  /// The inverse transformation: per-unit attribution weights over the
  /// features (paper §4.3: a mean over N units contributes 1/N to each;
  /// sums contribute 1; counts spread 1/N; min/max/median attach to the
  /// achieving unit; range is +1 on the max and -1 on the min unit).
  UnitAttribution Attribution(const ScoredUnitSet& set) const;

 private:
  void Compute(const ScoredUnitSet& set, std::vector<double>* features,
               UnitAttribution* attribution) const;

  size_t num_attributes_;
  bool simplified_;
  std::vector<std::string> names_;
};

}  // namespace wym::core

#endif  // WYM_CORE_FEATURE_EXTRACTOR_H_
