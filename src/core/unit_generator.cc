#include "core/unit_generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "la/kernels.h"
#include "la/matrix.h"
#include "matching/stable_marriage.h"
#include "text/string_metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wym::core {

namespace {

/// GetSMPairs of Algorithm 1: stable marriage between the tokens listed
/// in `left_indices` and `right_indices`, preferences read from the
/// precomputed full L x R similarity matrix, truncated at `threshold`.
/// Returns (left flat index, right flat index, similarity) triples.
struct SmPair {
  size_t left;
  size_t right;
  double similarity;
};

std::vector<SmPair> GetSmPairs(const la::Matrix& sim_full,
                               const std::vector<size_t>& left_indices,
                               const std::vector<size_t>& right_indices,
                               double threshold) {
  if (left_indices.empty() || right_indices.empty()) return {};
  la::Matrix sim(left_indices.size(), right_indices.size());
  for (size_t i = 0; i < left_indices.size(); ++i) {
    const double* full_row = sim_full.Row(left_indices[i]);
    double* row = sim.Row(i);
    for (size_t j = 0; j < right_indices.size(); ++j) {
      row[j] = full_row[right_indices[j]];
    }
  }
  std::vector<SmPair> out;
  out.reserve(std::min(left_indices.size(), right_indices.size()));
  for (const auto& pair : matching::StableMarriage(sim, threshold)) {
    out.push_back({left_indices[pair.left], right_indices[pair.right],
                   pair.similarity});
  }
  return out;
}

/// Unit-normalized packed rows of an entity's embeddings: reuses the
/// encode-time packing when present, otherwise packs into `storage`.
const float* PackedRows(const TokenizedEntity& entity, la::Vec* storage,
                        size_t* dim) {
  if (entity.HasPackedEmbeddings()) {
    *dim = entity.embedding_dim;
    return entity.packed_embeddings.data();
  }
  *dim = PackUnitRows(entity.embeddings, storage, /*norms=*/nullptr);
  return storage->data();
}

/// Quantized rows of an entity's embeddings: reuses the encode-time int8
/// cache when present, otherwise quantizes the given packed rows into
/// the scratch vectors. The scratch path quantizes the same
/// unit-normalized rows PackEmbeddings would, so cached and uncached
/// entities agree bit for bit.
struct QuantizedScratch {
  std::vector<int8_t> q;
  std::vector<float> scales;
  std::vector<float> l1;
};

void QuantizedRows(const TokenizedEntity& entity, const float* rows,
                   size_t dim, QuantizedScratch* storage, const int8_t** q,
                   const float** scales, const float** l1) {
  if (entity.HasQuantizedEmbeddings()) {
    *q = entity.quantized_embeddings.data();
    *scales = entity.quantized_scales.data();
    *l1 = entity.quantized_l1.data();
    return;
  }
  QuantizeUnitRows(rows, entity.embeddings.size(), dim, &storage->q,
                   &storage->scales, &storage->l1);
  *q = storage->q.data();
  *scales = storage->scales.data();
  *l1 = storage->l1.data();
}

TokenRef MakeRef(const TokenizedEntity& entity, size_t flat_index) {
  return {entity.attribute_of[flat_index], flat_index,
          entity.tokens[flat_index]};
}

}  // namespace

DecisionUnitGenerator::DecisionUnitGenerator(UnitGeneratorOptions options)
    : options_(std::move(options)) {}

double DecisionUnitGenerator::Similarity(const TokenizedEntity& left,
                                         size_t left_index,
                                         const TokenizedEntity& right,
                                         size_t right_index) const {
  for (const PairingRule& rule : options_.rules) {
    if (!rule(left.tokens[left_index], right.tokens[right_index])) {
      return -1.0;  // Vetoed: below any threshold.
    }
  }
  if (options_.similarity == PairingSimilarity::kJaroWinkler) {
    return text::JaroWinklerSimilarity(left.tokens[left_index],
                                       right.tokens[right_index]);
  }
  WYM_CHECK_EQ(left.embeddings.size(), left.tokens.size())
      << "embeddings missing on the left entity";
  WYM_CHECK_EQ(right.embeddings.size(), right.tokens.size())
      << "embeddings missing on the right entity";
  return la::Cosine(left.embeddings[left_index],
                    right.embeddings[right_index]);
}

la::Matrix DecisionUnitGenerator::PairSimilarityMatrix(
    const TokenizedEntity& left, const TokenizedEntity& right) const {
  la::Matrix sim(left.size(), right.size());
  if (left.size() == 0 || right.size() == 0) return sim;

  if (options_.similarity == PairingSimilarity::kJaroWinkler) {
    for (size_t l = 0; l < left.size(); ++l) {
      double* row = sim.Row(l);
      for (size_t r = 0; r < right.size(); ++r) {
        row[r] = text::JaroWinklerSimilarity(left.tokens[l], right.tokens[r]);
      }
    }
  } else {
    WYM_CHECK_EQ(left.embeddings.size(), left.tokens.size())
        << "embeddings missing on the left entity";
    WYM_CHECK_EQ(right.embeddings.size(), right.tokens.size())
        << "embeddings missing on the right entity";
    if (options_.quantized) {
      // Int8 screen + exact refinement. One A * B^T kernel call over the
      // quantized rows gives approximate cosines, then every cell whose
      // value *could* reach the lowest pairing threshold — screened
      // value plus a per-cell quantization error bound — is recomputed
      // in full precision. Sub-threshold cells keep the cheap int8
      // value; they can never enter a stable-marriage phase, so pairing
      // decisions and unit similarities match the fp path exactly while
      // the bulk of the L x R x dim work runs 8-bit. Token pairs are
      // mostly dissimilar, so the refined fraction stays small.
      la::Vec fp_left_storage, fp_right_storage;
      size_t left_dim = 0, right_dim = 0;
      const float* left_rows = PackedRows(left, &fp_left_storage, &left_dim);
      const float* right_rows =
          PackedRows(right, &fp_right_storage, &right_dim);
      WYM_CHECK_EQ(left_dim, right_dim) << "left/right embedding dims differ";
      const size_t dim = left_dim;

      QuantizedScratch scratch_left, scratch_right;
      const int8_t* left_q = nullptr;
      const int8_t* right_q = nullptr;
      const float* left_scales = nullptr;
      const float* right_scales = nullptr;
      const float* left_l1 = nullptr;
      const float* right_l1 = nullptr;
      QuantizedRows(left, left_rows, dim, &scratch_left, &left_q, &left_scales,
                    &left_l1);
      QuantizedRows(right, right_rows, dim, &scratch_right, &right_q,
                    &right_scales, &right_l1);
      la::kernels::SimilarityMatrixI8(left_q, left.size(), left_scales,
                                      right_q, right.size(), right_scales,
                                      dim, sim.data().data());

      // Per-cell error bound: with x = s_a*qa + ea, y = s_b*qb + eb and
      // |ea_i| <= s_a/2, |eb_i| <= s_b/2,
      //   |x.y - s_a*s_b*(qa.qb)| <= s_b/2*|x|_1 + s_a/2*|y|_1
      //                              + dim*s_a*s_b/4.
      // The 1.0001 factor + 1e-9 absorb float rounding in the quantizer,
      // the float rounding of the cached L1 norms, and the double
      // rounding of the screened value itself.
      const double floor =
          std::min({options_.theta, options_.eta, options_.epsilon});
      const double quarter_dim = 0.25 * static_cast<double>(dim);
      for (size_t l = 0; l < left.size(); ++l) {
        double* row = sim.Row(l);
        const double sa = left_scales[l];
        const double half_l1_l = 0.5 * left_l1[l];
        for (size_t r = 0; r < right.size(); ++r) {
          const double sb = right_scales[r];
          const double bound =
              (sb * half_l1_l + sa * (0.5 * right_l1[r] + quarter_dim * sb)) *
                  1.0001 +
              1e-9;
          if (row[r] + bound >= floor) {
            row[r] = la::kernels::Dot(left_rows + l * dim,
                                      right_rows + r * dim, dim);
          }
        }
      }
    } else {
      la::Vec scratch_left, scratch_right;
      size_t left_dim = 0, right_dim = 0;
      const float* left_rows = PackedRows(left, &scratch_left, &left_dim);
      const float* right_rows = PackedRows(right, &scratch_right, &right_dim);
      WYM_CHECK_EQ(left_dim, right_dim) << "left/right embedding dims differ";
      // Rows are unit vectors, so one A * B^T kernel call yields the
      // full cosine matrix.
      la::kernels::SimilarityMatrix(left_rows, left.size(), right_rows,
                                    right.size(), left_dim,
                                    sim.data().data());
    }
  }

  if (!options_.rules.empty()) {
    for (size_t l = 0; l < left.size(); ++l) {
      double* row = sim.Row(l);
      for (size_t r = 0; r < right.size(); ++r) {
        for (const PairingRule& rule : options_.rules) {
          if (!rule(left.tokens[l], right.tokens[r])) {
            row[r] = -1.0;  // Vetoed: below any threshold.
            break;
          }
        }
      }
    }
  }
  return sim;
}

std::vector<DecisionUnit> DecisionUnitGenerator::Generate(
    const TokenizedEntity& left, const TokenizedEntity& right,
    size_t num_attributes) const {
  // All four stable-marriage phases read the same token-pair
  // similarities, so the full L x R matrix is computed once up front
  // (one kernel call in the embedding case) and indexed per phase.
  const la::Matrix sim = PairSimilarityMatrix(left, right);

  std::vector<DecisionUnit> units;
  std::vector<bool> left_paired(left.size(), false);
  std::vector<bool> right_paired(right.size(), false);

  auto add_pair = [&](const SmPair& pair, UnitPhase phase) {
    DecisionUnit unit;
    unit.paired = true;
    unit.phase = phase;
    unit.left = MakeRef(left, pair.left);
    unit.right = MakeRef(right, pair.right);
    unit.similarity = pair.similarity;
    units.push_back(std::move(unit));
  };

  // Phase 1 — intra-attribute correspondences (threshold theta).
  for (size_t attr = 0; attr < num_attributes; ++attr) {
    const std::vector<size_t> l_attr = left.TokensOfAttribute(attr);
    const std::vector<size_t> r_attr = right.TokensOfAttribute(attr);
    for (const SmPair& pair :
         GetSmPairs(sim, l_attr, r_attr, options_.theta)) {
      left_paired[pair.left] = true;
      right_paired[pair.right] = true;
      add_pair(pair, UnitPhase::kIntraAttribute);
    }
  }

  auto unpaired_of = [](const std::vector<bool>& flags) {
    std::vector<size_t> out;
    for (size_t i = 0; i < flags.size(); ++i) {
      if (!flags[i]) out.push_back(i);
    }
    return out;
  };

  // Phase 2 — inter-attribute correspondences over leftovers (eta).
  for (const SmPair& pair : GetSmPairs(
           sim, unpaired_of(left_paired), unpaired_of(right_paired),
           options_.eta)) {
    left_paired[pair.left] = true;
    right_paired[pair.right] = true;
    add_pair(pair, UnitPhase::kInterAttribute);
  }

  // Phase 3 — one-to-many: leftovers against the *already paired* tokens
  // of the other entity (epsilon). This creates chains representing
  // repetitions and periphrasis (challenge R2).
  std::vector<size_t> right_already_paired;
  for (size_t r = 0; r < right.size(); ++r) {
    if (right_paired[r]) right_already_paired.push_back(r);
  }
  for (const SmPair& pair :
       GetSmPairs(sim, unpaired_of(left_paired), right_already_paired,
                  options_.epsilon)) {
    left_paired[pair.left] = true;  // Right token stays in its other unit.
    add_pair(pair, UnitPhase::kOneToMany);
  }
  std::vector<size_t> left_already_paired;
  for (size_t l = 0; l < left.size(); ++l) {
    if (left_paired[l]) left_already_paired.push_back(l);
  }
  // Mirror direction: unpaired right tokens propose to paired left tokens.
  {
    const std::vector<size_t> r_free = unpaired_of(right_paired);
    if (!r_free.empty() && !left_already_paired.empty()) {
      // Transposed view of the precomputed matrix: right tokens propose.
      la::Matrix sim_matrix(r_free.size(), left_already_paired.size());
      for (size_t i = 0; i < r_free.size(); ++i) {
        double* row = sim_matrix.Row(i);
        for (size_t j = 0; j < left_already_paired.size(); ++j) {
          row[j] = sim.Row(left_already_paired[j])[r_free[i]];
        }
      }
      for (const auto& pair :
           matching::StableMarriage(sim_matrix, options_.epsilon)) {
        const size_t r_index = r_free[pair.left];
        const size_t l_index = left_already_paired[pair.right];
        right_paired[r_index] = true;
        DecisionUnit unit;
        unit.paired = true;
        unit.phase = UnitPhase::kOneToMany;
        unit.left = MakeRef(left, l_index);
        unit.right = MakeRef(right, r_index);
        unit.similarity = pair.similarity;
        units.push_back(std::move(unit));
      }
    }
  }

  // Remaining tokens become unpaired units.
  for (size_t l = 0; l < left.size(); ++l) {
    if (left_paired[l]) continue;
    DecisionUnit unit;
    unit.paired = false;
    unit.phase = UnitPhase::kUnpaired;
    unit.unpaired_side = Side::kLeft;
    unit.left = MakeRef(left, l);
    units.push_back(std::move(unit));
  }
  for (size_t r = 0; r < right.size(); ++r) {
    if (right_paired[r]) continue;
    DecisionUnit unit;
    unit.paired = false;
    unit.phase = UnitPhase::kUnpaired;
    unit.unpaired_side = Side::kRight;
    unit.right = MakeRef(right, r);
    units.push_back(std::move(unit));
  }
  return units;
}

bool CheckUnitConstraints(const std::vector<DecisionUnit>& units,
                          const TokenizedEntity& left,
                          const TokenizedEntity& right) {
  std::set<size_t> left_in_paired, right_in_paired;
  std::set<size_t> left_in_unpaired, right_in_unpaired;
  for (const auto& unit : units) {
    if (unit.paired) {
      left_in_paired.insert(unit.left.position);
      right_in_paired.insert(unit.right.position);
    } else if (unit.unpaired_side == Side::kLeft) {
      left_in_unpaired.insert(unit.left.position);
    } else {
      right_in_unpaired.insert(unit.right.position);
    }
  }
  // Constraint 1: full coverage.
  for (size_t l = 0; l < left.size(); ++l) {
    if (left_in_paired.count(l) == 0 && left_in_unpaired.count(l) == 0) {
      return false;
    }
  }
  for (size_t r = 0; r < right.size(); ++r) {
    if (right_in_paired.count(r) == 0 && right_in_unpaired.count(r) == 0) {
      return false;
    }
  }
  // Constraint 2: exclusivity.
  for (size_t l : left_in_unpaired) {
    if (left_in_paired.count(l) > 0) return false;
  }
  for (size_t r : right_in_unpaired) {
    if (right_in_paired.count(r) > 0) return false;
  }
  return true;
}

PairingRule EqualProductCodeRule() {
  return [](const std::string& left, const std::string& right) {
    if (strings::IsAlphanumericCode(left) &&
        strings::IsAlphanumericCode(right)) {
      return left == right;
    }
    return true;
  };
}

}  // namespace wym::core
