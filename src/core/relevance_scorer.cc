#include "core/relevance_scorer.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/logging.h"
#include "util/random.h"

namespace wym::core {

namespace {

/// Canonical key of a unit for the Eq. 3 averaging: the unordered token
/// pair for paired units, (token, [UNP]) for unpaired ones. Symmetry of
/// the key enforces rs((l,r)) == rs((r,l)) at target level (R3).
std::string UnitKey(const DecisionUnit& unit) {
  if (!unit.paired) return unit.UnpairedToken().token + "\x1f[UNP]";
  const std::string& a = unit.left.token;
  const std::string& b = unit.right.token;
  return (a <= b) ? a + "\x1f" + b : b + "\x1f" + a;
}

const la::Vec& EmbeddingOrZero(const TokenizedEntity& entity, size_t index,
                               const la::Vec& zero) {
  if (entity.embeddings.empty()) return zero;
  WYM_CHECK_LT(index, entity.embeddings.size());
  return entity.embeddings[index];
}

}  // namespace

RelevanceScorer::RelevanceScorer(Options options)
    : options_(options), mlp_(options.mlp) {}

std::vector<double> RelevanceScorer::UnitFeatures(
    const TokenizedRecord& record, const DecisionUnit& unit) {
  WYM_CHECK(!record.left.embeddings.empty() ||
            !record.right.embeddings.empty())
      << "UnitFeatures needs at least one encoded entity";
  const size_t dim = record.left.embeddings.empty()
                         ? record.right.embeddings[0].size()
                         : record.left.embeddings[0].size();
  la::Vec zero = la::Zeros(dim);

  const la::Vec* left = &zero;
  const la::Vec* right = &zero;
  if (unit.paired) {
    left = &EmbeddingOrZero(record.left, unit.left.position, zero);
    right = &EmbeddingOrZero(record.right, unit.right.position, zero);
  } else if (unit.unpaired_side == Side::kLeft) {
    left = &EmbeddingOrZero(record.left, unit.left.position, zero);
  } else {
    right = &EmbeddingOrZero(record.right, unit.right.position, zero);
  }

  const la::Vec mean = la::MeanOf(*left, *right);
  const la::Vec diff = la::AbsDiff(*left, *right);
  std::vector<double> features;
  features.reserve(2 * dim);
  for (float v : mean) features.push_back(v);
  for (float v : diff) features.push_back(v);
  return features;
}

double RelevanceScorer::RawTarget(const DecisionUnit& unit, int label) const {
  if (!unit.paired) {
    // Unpaired evidence is consistent with non-match (-1); in matching
    // records it is neutralized to 0 (the R1 mirror case).
    return label == 1 ? 0.0 : -1.0;
  }
  if (label == 1) {
    return unit.similarity >= options_.alpha ? 1.0 : 0.0;
  }
  return unit.similarity < options_.beta ? -1.0 : 0.0;
}

void RelevanceScorer::Fit(
    const std::vector<TokenizedRecord>& records,
    const std::vector<std::vector<DecisionUnit>>& units_per_record) {
  WYM_CHECK_EQ(records.size(), units_per_record.size());
  if (options_.kind != ScorerKind::kNeural) {
    fitted_ = true;
    return;
  }

  // Eq. 3: average the Eq. 2 targets over all occurrences of each
  // distinct unit.
  struct Aggregate {
    double sum = 0.0;
    size_t count = 0;
  };
  std::unordered_map<std::string, Aggregate> targets;
  size_t total_units = 0;
  for (size_t r = 0; r < records.size(); ++r) {
    for (const auto& unit : units_per_record[r]) {
      Aggregate& agg = targets[UnitKey(unit)];
      agg.sum += RawTarget(unit, records[r].label);
      ++agg.count;
      ++total_units;
    }
  }
  if (total_units == 0) {
    fitted_ = true;
    return;
  }

  // Deterministic subsample when the corpus is large.
  double keep_probability = 1.0;
  if (total_units > options_.max_training_units) {
    keep_probability = static_cast<double>(options_.max_training_units) /
                       static_cast<double>(total_units);
  }
  Rng rng(options_.seed);

  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(std::min(total_units, options_.max_training_units) + 64);
  for (size_t r = 0; r < records.size(); ++r) {
    for (const auto& unit : units_per_record[r]) {
      if (keep_probability < 1.0 && !rng.Bernoulli(keep_probability)) {
        continue;
      }
      const Aggregate& agg = targets[UnitKey(unit)];
      rows.push_back(UnitFeatures(records[r], unit));
      y.push_back(agg.sum / static_cast<double>(agg.count));
    }
  }
  if (rows.empty()) {
    fitted_ = true;
    return;
  }

  la::Matrix x(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) x.At(i, j) = rows[i][j];
  }
  mlp_ = nn::Mlp(options_.mlp);
  mlp_.Fit(x, y);
  fitted_ = true;
}

std::vector<double> RelevanceScorer::Score(
    const TokenizedRecord& record,
    const std::vector<DecisionUnit>& units) const {
  WYM_CHECK(fitted_) << "RelevanceScorer used before Fit";
  std::vector<double> scores;
  scores.reserve(units.size());
  for (const auto& unit : units) {
    switch (options_.kind) {
      case ScorerKind::kBinary:
        scores.push_back(unit.paired ? 1.0 : -1.0);
        break;
      case ScorerKind::kCosine:
        scores.push_back(unit.paired
                             ? std::clamp(unit.similarity, -1.0, 1.0)
                             : -0.5);
        break;
      case ScorerKind::kNeural: {
        if (!mlp_.fitted()) {
          // Degenerate training corpus: fall back to the binary rule.
          scores.push_back(unit.paired ? 1.0 : -1.0);
          break;
        }
        scores.push_back(mlp_.Predict(UnitFeatures(record, unit)));
        break;
      }
    }
  }
  return scores;
}

void RelevanceScorer::Save(serde::Serializer* s) const {
  s->Tag("scorer/v1");
  s->U64(static_cast<uint64_t>(options_.kind));
  s->F64(options_.alpha);
  s->F64(options_.beta);
  s->Bool(fitted_);
  s->Bool(mlp_.fitted());
  if (mlp_.fitted()) mlp_.Save(s);
}

bool RelevanceScorer::Load(serde::Deserializer* d) {
  if (!d->Tag("scorer/v1")) return false;
  options_.kind = static_cast<ScorerKind>(d->U64());
  options_.alpha = d->F64();
  options_.beta = d->F64();
  fitted_ = d->Bool();
  const bool has_mlp = d->Bool();
  if (has_mlp && !mlp_.Load(d)) return false;
  return d->ok();
}

}  // namespace wym::core
