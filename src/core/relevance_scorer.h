#ifndef WYM_CORE_RELEVANCE_SCORER_H_
#define WYM_CORE_RELEVANCE_SCORER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/decision_unit.h"
#include "core/tokenized_record.h"
#include "nn/mlp.h"
#include "util/serde.h"

/// \file
/// The decision-unit relevance scorer (paper §4.2): a regression model
/// mapping each unit to a score in [-1, 1] — negative pushes toward
/// non-match, positive toward match. The training targets implement the
/// label-consistency rules of Eq. 2 (thresholds alpha/beta handle the
/// label-mismatch challenge R1) averaged per distinct unit as in Eq. 3.
/// Unit features are the mean and absolute difference of the two token
/// embeddings — symmetric (challenge R3) — with unpaired units paired
/// against the zero [UNP] embedding (challenge R5).

namespace wym::core {

/// Scorer variants of the Table 4 "Scorer" ablation.
enum class ScorerKind {
  kNeural,  ///< WYM default: the MLP regressor.
  kBinary,  ///< +1 for paired units, -1 for unpaired.
  kCosine,  ///< Pairing similarity for paired units, -0.5 for unpaired.
};

/// Options for RelevanceScorer.
struct RelevanceScorerOptions {
  ScorerKind kind = ScorerKind::kNeural;
  /// Eq. 2 similarity thresholds: alpha gates "consistent" paired units in
  /// matching records, beta in non-matching records.
  double alpha = 0.55;
  double beta = 0.45;
  /// Cap on training rows (subsampled deterministically beyond this).
  size_t max_training_units = 60000;
  /// MLP topology/training (scaled to the substitute embedding dims; the
  /// paper's BERT-sized network is {300, 64, 32} over 768-d embeddings).
  nn::MlpOptions mlp = {.hidden = {64, 32},
                        .epochs = 12,
                        .batch_size = 128,
                        .learning_rate = 2e-3,
                        .weight_decay = 1e-5,
                        .clamp_output = true,
                        .seed = 0x5c03e};
  uint64_t seed = 0x5c03e;
};

/// Learns and applies relevance scores.
class RelevanceScorer {
 public:
  using Options = RelevanceScorerOptions;

  explicit RelevanceScorer(Options options = {});

  /// Builds the Eq. 2/3 training set from the units of the training
  /// records (labels taken from the records) and fits the regressor.
  /// A no-op for the binary/cosine variants.
  void Fit(const std::vector<TokenizedRecord>& records,
           const std::vector<std::vector<DecisionUnit>>& units_per_record);

  /// Relevance scores for the units of one record, in unit order.
  std::vector<double> Score(const TokenizedRecord& record,
                            const std::vector<DecisionUnit>& units) const;

  /// The symmetric feature row of a unit (mean ++ |diff| of the two token
  /// embeddings, zero vector for the missing side). Exposed for tests.
  static std::vector<double> UnitFeatures(
      const TokenizedRecord& record, const DecisionUnit& unit);

  /// Eq. 2: target for one unit occurrence given the record label.
  /// Exposed for tests.
  double RawTarget(const DecisionUnit& unit, int label) const;

  /// Serialization of the fitted scorer (see util/serde.h).
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

  bool fitted() const { return fitted_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  bool fitted_ = false;
  nn::Mlp mlp_;
};

}  // namespace wym::core

#endif  // WYM_CORE_RELEVANCE_SCORER_H_
