#include "core/tokenized_record.h"

#include "util/logging.h"

namespace wym::core {

std::vector<size_t> TokenizedEntity::TokensOfAttribute(size_t attr) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attribute_of.size(); ++i) {
    if (attribute_of[i] == attr) out.push_back(i);
  }
  return out;
}

TokenizedEntity TokenizeEntity(const data::Entity& entity,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer) {
  WYM_CHECK_EQ(entity.values.size(), schema.size());
  TokenizedEntity out;
  for (size_t attr = 0; attr < entity.values.size(); ++attr) {
    for (auto& token : tokenizer.Tokenize(entity.values[attr])) {
      out.tokens.push_back(std::move(token));
      out.attribute_of.push_back(attr);
    }
  }
  return out;
}

TokenizedRecord TokenizeRecord(const data::EmRecord& record,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer) {
  TokenizedRecord out;
  out.left = TokenizeEntity(record.left, schema, tokenizer);
  out.right = TokenizeEntity(record.right, schema, tokenizer);
  out.label = record.label;
  return out;
}

void EncodeEntity(const embedding::SemanticEncoder& encoder,
                  TokenizedEntity* entity) {
  entity->embeddings = encoder.EncodeTokens(entity->tokens);
}

}  // namespace wym::core
