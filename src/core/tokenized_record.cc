#include "core/tokenized_record.h"

#include <cmath>
#include <cstring>

#include "la/kernels.h"
#include "util/logging.h"

namespace wym::core {

std::vector<size_t> TokenizedEntity::TokensOfAttribute(size_t attr) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attribute_of.size(); ++i) {
    if (attribute_of[i] == attr) out.push_back(i);
  }
  return out;
}

TokenizedEntity TokenizeEntity(const data::Entity& entity,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer) {
  WYM_CHECK_EQ(entity.values.size(), schema.size());
  TokenizedEntity out;
  for (size_t attr = 0; attr < entity.values.size(); ++attr) {
    for (auto& token : tokenizer.Tokenize(entity.values[attr])) {
      out.tokens.push_back(std::move(token));
      out.attribute_of.push_back(attr);
    }
  }
  return out;
}

TokenizedRecord TokenizeRecord(const data::EmRecord& record,
                               const data::Schema& schema,
                               const text::Tokenizer& tokenizer) {
  TokenizedRecord out;
  out.left = TokenizeEntity(record.left, schema, tokenizer);
  out.right = TokenizeEntity(record.right, schema, tokenizer);
  out.label = record.label;
  return out;
}

size_t PackUnitRows(const std::vector<la::Vec>& embeddings, la::Vec* packed,
                    std::vector<double>* norms) {
  const size_t dim = embeddings.empty() ? 0 : embeddings.front().size();
  packed->assign(embeddings.size() * dim, 0.0f);
  if (norms != nullptr) norms->assign(embeddings.size(), 0.0);
  for (size_t i = 0; i < embeddings.size(); ++i) {
    const la::Vec& v = embeddings[i];
    WYM_CHECK_EQ(v.size(), dim) << "ragged embedding dimensions on row " << i;
    float* row = packed->data() + i * dim;
    if (dim > 0) std::memcpy(row, v.data(), dim * sizeof(float));
    const double norm = std::sqrt(la::kernels::SquaredNorm(row, dim));
    if (norms != nullptr) (*norms)[i] = norm;
    if (norm > 0.0) la::kernels::Scale(1.0 / norm, row, dim);
  }
  return dim;
}

void QuantizeUnitRows(const float* rows, size_t n_rows, size_t dim,
                      std::vector<int8_t>* q, std::vector<float>* scales,
                      std::vector<float>* l1) {
  q->resize(n_rows * dim);
  scales->resize(n_rows);
  la::kernels::QuantizeRowsI8(rows, n_rows, dim, q->data(), scales->data());
  if (l1 != nullptr) {
    l1->resize(n_rows);
    for (size_t r = 0; r < n_rows; ++r) {
      const float* row = rows + r * dim;
      double acc = 0.0;
      for (size_t i = 0; i < dim; ++i) acc += std::fabs(row[i]);
      (*l1)[r] = static_cast<float>(acc);
    }
  }
}

void TokenizedEntity::PackEmbeddings() {
  embedding_dim = PackUnitRows(embeddings, &packed_embeddings, &embedding_norms);
  QuantizeUnitRows(packed_embeddings.data(), embeddings.size(), embedding_dim,
                   &quantized_embeddings, &quantized_scales, &quantized_l1);
}

void EncodeEntity(const embedding::SemanticEncoder& encoder,
                  TokenizedEntity* entity) {
  entity->embeddings = encoder.EncodeTokens(entity->tokens);
  entity->PackEmbeddings();
}

}  // namespace wym::core
