#include "core/explainable_matcher.h"

#include <cmath>

#include "ml/classifier_pool.h"
#include "ml/metrics.h"
#include "util/logging.h"

namespace wym::core {

ExplainableMatcher::ExplainableMatcher(size_t num_attributes, bool simplified,
                                       Options options)
    : extractor_(num_attributes, simplified), options_(std::move(options)) {}

la::Matrix ExplainableMatcher::ToMatrix(
    const std::vector<ScoredUnitSet>& sets) const {
  la::Matrix x(sets.size(), extractor_.dim());
  for (size_t i = 0; i < sets.size(); ++i) {
    const std::vector<double> row = extractor_.Extract(sets[i]);
    for (size_t j = 0; j < row.size(); ++j) x.At(i, j) = row[j];
  }
  return x;
}

void ExplainableMatcher::Fit(const std::vector<ScoredUnitSet>& train,
                             const std::vector<int>& train_labels,
                             const std::vector<ScoredUnitSet>& validation,
                             const std::vector<int>& validation_labels) {
  WYM_CHECK_EQ(train.size(), train_labels.size());
  WYM_CHECK_EQ(validation.size(), validation_labels.size());
  WYM_CHECK_GT(train.size(), 0u);

  const la::Matrix raw_train = ToMatrix(train);
  scaler_.Fit(raw_train);
  const la::Matrix x_train = scaler_.Transform(raw_train);
  const la::Matrix x_val =
      validation.empty() ? la::Matrix() : scaler_.Transform(ToMatrix(validation));

  pool_.clear();
  if (options_.classifier.empty()) {
    pool_ = ml::MakePool(options_.seed);
  } else {
    auto single = ml::MakeClassifier(options_.classifier, options_.seed);
    WYM_CHECK(single != nullptr)
        << "unknown classifier " << options_.classifier;
    pool_.push_back(std::move(single));
  }

  // Calibration rows: the validation split when present, else training.
  const la::Matrix& x_calibration = validation.empty() ? x_train : x_val;
  const std::vector<int>& y_calibration =
      validation.empty() ? train_labels : validation_labels;

  best_ = nullptr;
  best_validation_f1_ = -1.0;
  thresholds_.assign(pool_.size(), 0.5);
  for (size_t c = 0; c < pool_.size(); ++c) {
    ml::Classifier& classifier = *pool_[c];
    classifier.Fit(x_train, train_labels);
    // Decision-threshold calibration: the benchmark label priors are
    // heavily skewed (~10% matches), so each model's best-F1 operating
    // point is found on the calibration split.
    std::vector<double> probas(x_calibration.rows());
    for (size_t i = 0; i < probas.size(); ++i) {
      probas[i] = classifier.PredictProba(x_calibration.RowVector(i));
    }
    thresholds_[c] = ml::BestF1Threshold(probas, y_calibration);
    std::vector<int> predicted(probas.size());
    for (size_t i = 0; i < probas.size(); ++i) {
      predicted[i] = probas[i] >= thresholds_[c] ? 1 : 0;
    }
    const double f1 = ml::F1Score(y_calibration, predicted);
    if (f1 > best_validation_f1_) {
      best_validation_f1_ = f1;
      best_ = &classifier;
      best_threshold_ = thresholds_[c];
    }
  }
  WYM_CHECK(best_ != nullptr);
  best_name_ = best_->name();
  raw_coefficients_ = scaler_.RawCoefficients(best_->SignedImportance());
}

double ExplainableMatcher::PredictProba(const ScoredUnitSet& set) const {
  WYM_CHECK(fitted()) << "ExplainableMatcher used before Fit";
  const double raw =
      best_->PredictProba(scaler_.TransformRow(extractor_.Extract(set)));
  return ml::RecalibrateProba(raw, best_threshold_);
}

int ExplainableMatcher::PredictWith(const ml::Classifier& classifier,
                                    const ScoredUnitSet& set) const {
  WYM_CHECK(scaler_.fitted());
  double threshold = 0.5;
  for (size_t c = 0; c < pool_.size(); ++c) {
    if (pool_[c].get() == &classifier) {
      threshold = thresholds_[c];
      break;
    }
  }
  return classifier.PredictProba(
             scaler_.TransformRow(extractor_.Extract(set))) >= threshold
             ? 1
             : 0;
}

std::vector<double> ExplainableMatcher::UnitImpacts(
    const ScoredUnitSet& set) const {
  WYM_CHECK(fitted()) << "ExplainableMatcher used before Fit";
  const UnitAttribution attribution = extractor_.Attribution(set);
  std::vector<double> impacts(set.size(), 0.0);
  for (size_t u = 0; u < set.size(); ++u) {
    // Paper §4.3: "the related coefficients are then multiplied by the
    // relevance score, and the results averaged". Count-style features
    // use the relevance magnitude (direction lives in the coefficient).
    double sum = 0.0;
    size_t touched = 0;
    for (const FeatureContribution& c : attribution[u]) {
      const double relevance =
          c.magnitude ? std::abs(set.scores[u]) : set.scores[u];
      sum += raw_coefficients_[c.feature] * c.weight * relevance;
      ++touched;
    }
    if (touched == 0) continue;
    impacts[u] = sum / static_cast<double>(touched);
  }
  return impacts;
}

void ExplainableMatcher::Save(serde::Serializer* s) const {
  s->Tag("matcher/v1");
  s->U64(extractor_.num_attributes());
  s->Bool(extractor_.simplified());
  s->Bool(fitted());
  if (!fitted()) return;
  scaler_.Save(s);
  s->Str(best_name_);
  best_->SaveState(s);
  s->F64(best_validation_f1_);
  s->F64(best_threshold_);
  s->VecF64(raw_coefficients_);
}

bool ExplainableMatcher::Load(serde::Deserializer* d) {
  if (!d->Tag("matcher/v1")) return false;
  const size_t num_attributes = d->U64();
  const bool simplified = d->Bool();
  extractor_ = FeatureExtractor(num_attributes, simplified);
  const bool was_fitted = d->Bool();
  pool_.clear();
  best_ = nullptr;
  if (!was_fitted) return d->ok();
  if (!scaler_.Load(d)) return false;
  best_name_ = d->Str();
  auto classifier = ml::MakeClassifier(best_name_, /*seed=*/0);
  if (classifier == nullptr) return false;
  if (!classifier->LoadState(d)) return false;
  best_validation_f1_ = d->F64();
  best_threshold_ = d->F64();
  raw_coefficients_ = d->VecF64();
  if (!d->ok() || raw_coefficients_.size() != extractor_.dim()) return false;
  pool_.push_back(std::move(classifier));
  best_ = pool_.back().get();
  thresholds_.assign(1, best_threshold_);
  return true;
}

}  // namespace wym::core
