#ifndef WYM_CORE_EXPLAINABLE_MATCHER_H_
#define WYM_CORE_EXPLAINABLE_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/feature_extractor.h"
#include "ml/classifier.h"
#include "ml/scaler.h"
#include "util/serde.h"

/// \file
/// The explainable matcher (paper §4.3): trains the pool of ten
/// interpretable classifiers on the engineered features, keeps the one
/// with the best validation F1, and computes per-unit impact scores by
/// routing the learned coefficients back through the feature extractor's
/// inverse transformation and multiplying by the relevance scores.

namespace wym::core {

/// Options for ExplainableMatcher.
struct ExplainableMatcherOptions {
  /// Train only this pool member ("LR", "RF", ...); empty = train the
  /// whole pool and select by validation F1 as the paper does.
  std::string classifier;
  uint64_t seed = 0xBEA7;
};

/// Pool-backed binary matcher with unit-impact explanations.
class ExplainableMatcher {
 public:
  using Options = ExplainableMatcherOptions;

  /// `num_attributes`/`simplified` configure the feature extractor.
  ExplainableMatcher(size_t num_attributes, bool simplified,
                     Options options = {});

  /// Trains the pool and selects the best member by validation F1
  /// (falls back to training F1 when the validation set is empty).
  void Fit(const std::vector<ScoredUnitSet>& train,
           const std::vector<int>& train_labels,
           const std::vector<ScoredUnitSet>& validation,
           const std::vector<int>& validation_labels);

  /// Matching probability / hard prediction for one record's units.
  double PredictProba(const ScoredUnitSet& set) const;
  int Predict(const ScoredUnitSet& set) const {
    return PredictProba(set) >= 0.5 ? 1 : 0;
  }

  /// Prediction using a specific trained pool member (Table 5).
  int PredictWith(const ml::Classifier& classifier,
                  const ScoredUnitSet& set) const;

  /// Impact score of each decision unit (paper §4.3): for unit u,
  /// mean over features f touching u of (coef_f * attribution_{f,u}),
  /// multiplied by u's relevance score. Positive impact pushes toward
  /// match.
  std::vector<double> UnitImpacts(const ScoredUnitSet& set) const;

  const FeatureExtractor& extractor() const { return extractor_; }
  const std::string& best_name() const { return best_name_; }
  double best_validation_f1() const { return best_validation_f1_; }
  /// Calibrated decision threshold of the selected model (PredictProba
  /// already folds it in via a monotone recalibration).
  double best_threshold() const { return best_threshold_; }
  bool fitted() const { return best_ != nullptr; }

  /// The trained pool (empty when a single classifier was requested).
  const std::vector<std::unique_ptr<ml::Classifier>>& pool() const {
    return pool_;
  }

  /// Serialization: persists the *selected* classifier (not the whole
  /// pool), the scaler and the impact bookkeeping — everything inference
  /// and explanation need (see util/serde.h).
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

 private:
  la::Matrix ToMatrix(const std::vector<ScoredUnitSet>& sets) const;

  FeatureExtractor extractor_;
  Options options_;
  ml::StandardScaler scaler_;
  std::vector<std::unique_ptr<ml::Classifier>> pool_;
  ml::Classifier* best_ = nullptr;
  std::string best_name_;
  double best_validation_f1_ = 0.0;
  double best_threshold_ = 0.5;
  std::vector<double> thresholds_;
  /// Coefficients of the best model translated to raw feature space.
  std::vector<double> raw_coefficients_;
};

}  // namespace wym::core

#endif  // WYM_CORE_EXPLAINABLE_MATCHER_H_
