#ifndef WYM_CORE_UNIT_GENERATOR_H_
#define WYM_CORE_UNIT_GENERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "core/decision_unit.h"
#include "core/tokenized_record.h"
#include "la/matrix.h"

/// \file
/// Algorithm 1 of the paper (DecisionUnitDiscovery): three phases of
/// relaxed stable-marriage pairing over token similarities —
///   1. intra-attribute pairs at threshold theta,
///   2. inter-attribute pairs over the leftovers at threshold eta,
///   3. one-to-many pairs between leftovers and already-paired tokens of
///      the other description at threshold epsilon —
/// followed by collection of the remaining tokens as unpaired units.

namespace wym::core {

/// Similarity used to build the preference lists.
enum class PairingSimilarity {
  /// Cosine of the contextual token embeddings (WYM default).
  kEmbedding,
  /// Jaro-Winkler over the token strings (Table 4 syntactic baseline).
  kJaroWinkler,
};

/// A domain-knowledge rule (paper §5.1.1 / §6 future work): returning
/// false vetoes a candidate pairing. Example: "alphanumeric product codes
/// may only pair when equal" raised T-AB F1 from 0.645 to 0.754.
using PairingRule =
    std::function<bool(const std::string& left, const std::string& right)>;

/// Options for DecisionUnitGenerator.
struct UnitGeneratorOptions {
  /// Intra-attribute threshold (paper setting theta = 0.6).
  double theta = 0.6;
  /// Inter-attribute threshold (eta = 0.65).
  double eta = 0.65;
  /// One-to-many threshold (epsilon = 0.7).
  double epsilon = 0.7;
  PairingSimilarity similarity = PairingSimilarity::kEmbedding;
  /// Optional pairing veto rules (all must accept a pairing).
  std::vector<PairingRule> rules;
  /// Compute the kEmbedding similarity matrix on the int8 quantized
  /// rows (la::kernels::SimilarityMatrixI8) instead of the float path.
  /// The int8 matrix is a pruning *screen*: every cell whose screened
  /// value plus a rigorous per-cell quantization error bound could reach
  /// min(theta, eta, epsilon) is recomputed in full precision, so
  /// pairing decisions and unit similarities match the fp path exactly;
  /// only cells provably below every pairing threshold keep the int8
  /// approximation. Table-3 F1 drift measured ≤ 0.002 absolute (see
  /// EXPERIMENTS.md); set false to select the full-precision fallback.
  /// Runtime execution knob — not serialized into model files, so a
  /// loaded model honors whatever the serving config sets here.
  bool quantized = true;
};

/// Extracts the decision units of a record.
class DecisionUnitGenerator {
 public:
  explicit DecisionUnitGenerator(UnitGeneratorOptions options = {});

  /// Runs Algorithm 1. Requires embeddings to be filled when the
  /// similarity source is kEmbedding. `num_attributes` is the schema
  /// width. Paired units come first (discovery order), then unpaired.
  ///
  /// The full L x R token similarity matrix is computed once up front —
  /// a single SIMD kernel call over the packed unit embeddings in the
  /// kEmbedding case (see la/kernels.h) — and all four stable-marriage
  /// phases index into it instead of re-evaluating per-cell similarity.
  std::vector<DecisionUnit> Generate(const TokenizedEntity& left,
                                     const TokenizedEntity& right,
                                     size_t num_attributes) const;

  /// The precomputed similarity matrix Generate works from: cosine of
  /// unit embeddings (or Jaro-Winkler), with vetoed cells forced to -1.
  /// Exposed for tests and the micro benches.
  la::Matrix PairSimilarityMatrix(const TokenizedEntity& left,
                                  const TokenizedEntity& right) const;

  const UnitGeneratorOptions& options() const { return options_; }

 private:
  /// Reference per-cell similarity (rules veto, then Jaro-Winkler or
  /// full cosine). PairSimilarityMatrix is the batched equivalent.
  double Similarity(const TokenizedEntity& left, size_t left_index,
                    const TokenizedEntity& right, size_t right_index) const;

  UnitGeneratorOptions options_;
};

/// Checks the two structural constraints of §3.1.1 on a generated unit
/// set: full token coverage and paired/unpaired exclusivity. Used by
/// tests and by WymModel's debug mode.
bool CheckUnitConstraints(const std::vector<DecisionUnit>& units,
                          const TokenizedEntity& left,
                          const TokenizedEntity& right);

/// The product-code rule from the paper's error analysis: alphanumeric
/// model codes pair only when string-equal.
PairingRule EqualProductCodeRule();

}  // namespace wym::core

#endif  // WYM_CORE_UNIT_GENERATOR_H_
