#include "core/decision_unit.h"

namespace wym::core {

std::string DecisionUnit::Label() const {
  if (paired) {
    return "(" + left.token + ", " + right.token + ")";
  }
  return "(" + UnpairedToken().token + ")";
}

}  // namespace wym::core
