#ifndef WYM_CORE_DECISION_UNIT_H_
#define WYM_CORE_DECISION_UNIT_H_

#include <cstddef>
#include <string>

/// \file
/// The decision unit (paper §3.1, Eq. 1): the atomic information unit of
/// an EM explanation. A *paired* unit couples two semantically similar
/// tokens, one from each entity description; an *unpaired* unit is a
/// token with no counterpart. Units must cover every token and a token
/// in an unpaired unit may not also appear in a paired unit.

namespace wym::core {

/// Which entity description a token comes from.
enum class Side { kLeft, kRight };

/// Which phase of Algorithm 1 produced a pairing.
enum class UnitPhase {
  kIntraAttribute,  ///< Phase 1, threshold theta.
  kInterAttribute,  ///< Phase 2, threshold eta.
  kOneToMany,       ///< Phase 3, threshold epsilon.
  kUnpaired,        ///< Leftover token.
};

/// Reference to one token inside a tokenized entity description.
struct TokenRef {
  size_t attribute = 0;  ///< Schema attribute the token came from.
  size_t position = 0;   ///< Index into the entity's flat token list.
  std::string token;     ///< The token text.
};

/// A paired or unpaired decision unit.
struct DecisionUnit {
  bool paired = false;
  UnitPhase phase = UnitPhase::kUnpaired;
  /// Valid when paired; for unpaired units only the side given by
  /// `unpaired_side` is meaningful.
  TokenRef left;
  TokenRef right;
  Side unpaired_side = Side::kLeft;
  /// Cosine (or Jaro-Winkler) similarity at pairing time; 0 for unpaired.
  double similarity = 0.0;

  /// The token reference of an unpaired unit.
  const TokenRef& UnpairedToken() const {
    return unpaired_side == Side::kLeft ? left : right;
  }

  /// Attribute used for per-attribute feature aggregation: the left
  /// token's attribute for paired units, the token's own for unpaired.
  size_t AnchorAttribute() const {
    return paired ? left.attribute : UnpairedToken().attribute;
  }

  /// Human-readable form: "(exch, exch)" or "(eng)".
  std::string Label() const;
};

}  // namespace wym::core

#endif  // WYM_CORE_DECISION_UNIT_H_
