#include "core/wym.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/framed_file.h"
#include "util/io.h"
#include "util/logging.h"

namespace wym::core {

namespace {

/// Model-file format v2 container identity (util/framed_file.h).
constexpr char kModelMagic[] = "WYM2";
constexpr uint32_t kModelFormatVersion = 1;

/// Section names of the v2 container, in write order.
constexpr char kSectionConfig[] = "config";
constexpr char kSectionEncoder[] = "encoder";
constexpr char kSectionScorer[] = "scorer";
constexpr char kSectionMatcher[] = "matcher";

/// Serialized prefix of a legacy (format v1) model stream: the
/// length-prefixed "wym-model/v1" tag the old SaveToFile wrote first.
constexpr char kLegacyPrefix[] = "12 wym-model/v1";

const std::string* FindFrame(const std::vector<io::FileFrame>& frames,
                             const char* name) {
  for (const io::FileFrame& frame : frames) {
    if (frame.name == name) return &frame.payload;
  }
  return nullptr;
}

}  // namespace

std::vector<size_t> Explanation::RankByImpactMagnitude() const {
  std::vector<size_t> order(units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return std::fabs(units[a].impact) > std::fabs(units[b].impact);
  });
  return order;
}

WymModel::WymModel(WymConfig config)
    : config_(std::move(config)),
      tokenizer_(config_.tokenizer),
      encoder_(config_.encoder),
      generator_(config_.generator),
      scorer_(config_.scorer),
      matcher_(0, config_.simplified_features) {}

void WymModel::Fit(const data::Dataset& train,
                   const data::Dataset& validation) {
  WYM_CHECK_GT(train.size(), 0u) << "empty training set";
  obs::SpanScope fit_span("fit");
  {
    static obs::Counter& records =
        obs::Registry::Global().GetCounter("fit.records");
    records.Add(train.size());
  }
  num_attributes_ = train.schema.size();

  // Rebuild stateful components so Fit is idempotent.
  encoder_ = embedding::SemanticEncoder(config_.encoder);
  scorer_ = RelevanceScorer(config_.scorer);
  ExplainableMatcherOptions matcher_options;
  matcher_options.classifier = config_.classifier;
  matcher_options.seed = config_.seed;
  matcher_ = ExplainableMatcher(num_attributes_, config_.simplified_features,
                                matcher_options);

  // 1. Tokenize the training corpus and fit the encoder on it. Records
  // tokenize independently; results are written by record index so the
  // corpus order matches the sequential loop exactly.
  std::vector<TokenizedRecord> train_tokens(train.size());
  std::vector<std::vector<std::string>> corpus(2 * train.size());
  {
    obs::SpanScope span("fit.tokenize");
    util::ParallelFor(
        train.size(), /*grain=*/16, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            TokenizedRecord tokenized =
                TokenizeRecord(train.records[i], train.schema, tokenizer_);
            corpus[2 * i] = tokenized.left.tokens;
            corpus[2 * i + 1] = tokenized.right.tokens;
            train_tokens[i] = std::move(tokenized);
          }
        });
  }
  {
    obs::SpanScope span("fit.encoder_fit");
    encoder_.Fit(corpus);
  }

  // 2. Encode; then (kSiamese) calibrate on pooled pair embeddings and
  // re-encode with the calibrated metric.
  auto encode_all = [this](std::vector<TokenizedRecord>* records) {
    util::ParallelFor(
        records->size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            EncodeEntity(encoder_, &(*records)[i].left);
            EncodeEntity(encoder_, &(*records)[i].right);
          }
        });
  };
  {
    obs::SpanScope span("fit.encode");
    encode_all(&train_tokens);
  }
  if (config_.encoder.mode == embedding::EncoderMode::kSiamese) {
    obs::SpanScope span("fit.siamese_calibrate");
    std::vector<std::pair<la::Vec, la::Vec>> pairs;
    std::vector<int> labels;
    for (const auto& record : train_tokens) {
      if (record.left.embeddings.empty() || record.right.embeddings.empty()) {
        continue;
      }
      pairs.emplace_back(
          embedding::SemanticEncoder::PoolTokens(record.left.embeddings),
          embedding::SemanticEncoder::PoolTokens(record.right.embeddings));
      labels.push_back(record.label);
    }
    encoder_.FitSiamese(pairs, labels);
    encode_all(&train_tokens);  // Calibration changes the vectors.
  }

  // 3. Discover decision units (Algorithm 1) on every training record.
  std::vector<std::vector<DecisionUnit>> train_units(train_tokens.size());
  {
    obs::SpanScope span("fit.unit_generation");
    util::ParallelFor(
        train_tokens.size(), /*grain=*/8,
        [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            train_units[i] = generator_.Generate(
                train_tokens[i].left, train_tokens[i].right, num_attributes_);
          }
        });
  }

  // 4. Fit the relevance scorer (Eq. 2/3 targets).
  {
    obs::SpanScope span("fit.scorer_fit");
    scorer_.Fit(train_tokens, train_units);
  }

  // 5. Score units and extract features for train + validation.
  auto scored_sets = [&](const std::vector<TokenizedRecord>& records,
                         const std::vector<std::vector<DecisionUnit>>& units) {
    std::vector<ScoredUnitSet> sets(records.size());
    util::ParallelFor(
        records.size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            sets[i].units = units[i];
            sets[i].scores = scorer_.Score(records[i], units[i]);
          }
        });
    return sets;
  };
  std::vector<ScoredUnitSet> train_sets;
  {
    obs::SpanScope span("fit.score_units");
    train_sets = scored_sets(train_tokens, train_units);
  }

  std::vector<TokenizedRecord> val_tokens(validation.size());
  std::vector<std::vector<DecisionUnit>> val_units(validation.size());
  std::vector<ScoredUnitSet> val_sets;
  {
    obs::SpanScope span("fit.validation_prepare");
    util::ParallelFor(
        validation.size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            TokenizedRecord tokenized =
                TokenizeRecord(validation.records[i], validation.schema,
                               tokenizer_);
            EncodeEntity(encoder_, &tokenized.left);
            EncodeEntity(encoder_, &tokenized.right);
            val_units[i] = generator_.Generate(tokenized.left, tokenized.right,
                                               num_attributes_);
            val_tokens[i] = std::move(tokenized);
          }
        });
    val_sets = scored_sets(val_tokens, val_units);
  }

  // 6. Train the classifier pool and select by validation F1.
  {
    obs::SpanScope span("fit.classifier_fit");
    matcher_.Fit(train_sets, train.Labels(), val_sets, validation.Labels());
  }
  fitted_ = true;
}

TokenizedRecord WymModel::Prepare(const data::EmRecord& record) const {
  WYM_CHECK(fitted_) << "WymModel used before Fit";
  data::Schema schema;
  schema.attributes.resize(num_attributes_);  // Names are not needed here.
  WYM_CHECK_EQ(record.left.values.size(), num_attributes_);
  WYM_CHECK_EQ(record.right.values.size(), num_attributes_);
  TokenizedRecord tokenized = TokenizeRecord(record, schema, tokenizer_);
  EncodeEntity(encoder_, &tokenized.left);
  EncodeEntity(encoder_, &tokenized.right);
  return tokenized;
}

std::vector<DecisionUnit> WymModel::GenerateUnits(
    const TokenizedRecord& record) const {
  return generator_.Generate(record.left, record.right, num_attributes_);
}

std::vector<double> WymModel::ScoreUnits(
    const TokenizedRecord& record,
    const std::vector<DecisionUnit>& units) const {
  return scorer_.Score(record, units);
}

ScoredUnitSet WymModel::BuildScoredUnits(const TokenizedRecord& record) const {
  ScoredUnitSet set;
  set.units = GenerateUnits(record);
  set.scores = ScoreUnits(record, set.units);
  // Scorer stage boundary: relevance scores feed both the matcher and
  // the ranked explanation, so a NaN here corrupts both.
  WYM_DCHECK_FINITE(set.scores.data(), set.scores.size())
      << "non-finite unit relevance score";
  return set;
}

double WymModel::PredictProba(const data::EmRecord& record) const {
  return PredictProbaFromUnits(BuildScoredUnits(Prepare(record)));
}

double WymModel::PredictProbaFromUnits(const ScoredUnitSet& set) const {
  const double proba = matcher_.PredictProba(set);
  // Matcher stage boundary: probabilities must be finite (the classifier
  // pool squashes through a logistic, so NaN means poisoned features).
  WYM_DCHECK(std::isfinite(proba)) << "non-finite match probability";
  return proba;
}

Explanation WymModel::Explain(const data::EmRecord& record) const {
  const TokenizedRecord tokenized = Prepare(record);
  const ScoredUnitSet set = BuildScoredUnits(tokenized);

  Explanation out;
  out.probability = matcher_.PredictProba(set);
  out.prediction = out.probability >= 0.5 ? 1 : 0;
  const std::vector<double> impacts = matcher_.UnitImpacts(set);
  out.units.reserve(set.size());
  for (size_t u = 0; u < set.size(); ++u) {
    out.units.push_back({set.units[u], set.scores[u], impacts[u]});
  }
  return out;
}

namespace {

/// Reason a record cannot be predicted, or empty. Zero tokens on both
/// sides would trip the relevance scorer's at-least-one-entity contract
/// (an abort) — the batch paths quarantine such records instead.
std::string DegenerateReason(const TokenizedRecord& tokenized) {
  if (tokenized.left.tokens.empty() && tokenized.right.tokens.empty()) {
    return "zero tokens on both sides after tokenization";
  }
  return "";
}

/// Compacts per-index quarantine reasons (collected in parallel, by
/// index, so the result is deterministic) into the report.
void FillReport(const std::vector<std::string>& reasons,
                PredictionReport* report) {
  if (report == nullptr) return;
  *report = PredictionReport{};
  for (size_t i = 0; i < reasons.size(); ++i) {
    if (reasons[i].empty()) {
      ++report->predicted;
    } else {
      report->quarantined.push_back({i, reasons[i]});
    }
  }
}

/// Bumps the batch-level counters (`<prefix>.records`,
/// `<prefix>.records_quarantined`) from the per-index reason vector —
/// after the parallel loop, so counting never touches the hot path.
void CountBatch(const std::vector<std::string>& reasons,
                obs::Counter& records, obs::Counter& quarantined) {
  if (!obs::MetricsEnabled()) return;
  records.Add(reasons.size());
  size_t bad = 0;
  for (const std::string& reason : reasons) {
    if (!reason.empty()) ++bad;
  }
  if (bad > 0) quarantined.Add(bad);
}

}  // namespace

std::vector<double> WymModel::PredictProbaBatch(const data::Dataset& dataset,
                                                util::ThreadPool* pool) const {
  return PredictProbaBatch(dataset, nullptr, pool);
}

std::vector<double> WymModel::PredictProbaBatch(const data::Dataset& dataset,
                                                PredictionReport* report,
                                                util::ThreadPool* pool) const {
  return PredictProbaRange(dataset.records.data(), dataset.records.size(),
                           report, pool);
}

std::vector<double> WymModel::PredictProbaBatch(
    const std::vector<data::EmRecord>& records, PredictionReport* report,
    util::ThreadPool* pool) const {
  return PredictProbaRange(records.data(), records.size(), report, pool);
}

std::vector<double> WymModel::PredictProbaRange(const data::EmRecord* batch,
                                                size_t n,
                                                PredictionReport* report,
                                                util::ThreadPool* pool) const {
  WYM_CHECK(fitted_) << "WymModel used before Fit";
  obs::SpanScope batch_span("predict.batch");
  const bool metrics = obs::MetricsEnabled();
  static obs::Histogram& record_ns =
      obs::Registry::Global().GetHistogram("predict.record_ns");
  std::vector<double> out(n);
  std::vector<std::string> reasons(n);
  util::ParallelFor(
      n, /*grain=*/1,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          obs::SpanScope span("predict.record");
          const std::uint64_t t0 = metrics ? obs::NowNanos() : 0;
          const TokenizedRecord tokenized = Prepare(batch[i]);
          reasons[i] = DegenerateReason(tokenized);
          if (!reasons[i].empty()) {
            out[i] = 0.0;  // Non-match fallback; reported, never NaN.
            continue;
          }
          out[i] = PredictProbaFromUnits(BuildScoredUnits(tokenized));
          if (!std::isfinite(out[i])) {
            reasons[i] = "non-finite match probability";
            out[i] = 0.0;
          }
          if (metrics) record_ns.Record(obs::NowNanos() - t0);
        }
      },
      pool);
  FillReport(reasons, report);
  static obs::Counter& records =
      obs::Registry::Global().GetCounter("predict.records");
  static obs::Counter& quarantined =
      obs::Registry::Global().GetCounter("predict.records_quarantined");
  CountBatch(reasons, records, quarantined);
  return out;
}

std::vector<Explanation> WymModel::ExplainBatch(const data::Dataset& dataset,
                                                util::ThreadPool* pool) const {
  return ExplainBatch(dataset, nullptr, pool);
}

std::vector<Explanation> WymModel::ExplainBatch(const data::Dataset& dataset,
                                                PredictionReport* report,
                                                util::ThreadPool* pool) const {
  WYM_CHECK(fitted_) << "WymModel used before Fit";
  obs::SpanScope batch_span("explain.batch");
  const bool metrics = obs::MetricsEnabled();
  static obs::Histogram& record_ns =
      obs::Registry::Global().GetHistogram("explain.record_ns");
  std::vector<Explanation> out(dataset.size());
  std::vector<std::string> reasons(dataset.size());
  util::ParallelFor(
      dataset.size(), /*grain=*/1,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          obs::SpanScope span("explain.record");
          const std::uint64_t t0 = metrics ? obs::NowNanos() : 0;
          const TokenizedRecord tokenized = Prepare(dataset.records[i]);
          reasons[i] = DegenerateReason(tokenized);
          if (!reasons[i].empty()) {
            out[i] = Explanation{};  // Empty: prediction 0, no units.
            continue;
          }
          out[i] = Explain(dataset.records[i]);
          if (metrics) record_ns.Record(obs::NowNanos() - t0);
        }
      },
      pool);
  FillReport(reasons, report);
  static obs::Counter& records =
      obs::Registry::Global().GetCounter("explain.records");
  static obs::Counter& quarantined =
      obs::Registry::Global().GetCounter("explain.records_quarantined");
  CountBatch(reasons, records, quarantined);
  return out;
}

std::vector<int> WymModel::PredictDataset(const data::Dataset& dataset) const {
  // Chunked through the batch path so per-record scratch stays bounded
  // by the chunk, not the dataset — the same discipline the streaming
  // candidate tier applies on the blocking side.
  constexpr size_t kChunkRecords = 8192;
  std::vector<int> out(dataset.size());
  for (size_t begin = 0; begin < dataset.size(); begin += kChunkRecords) {
    const size_t n = std::min(kChunkRecords, dataset.size() - begin);
    const std::vector<double> probabilities =
        PredictProbaRange(dataset.records.data() + begin, n,
                          /*report=*/nullptr, /*pool=*/nullptr);
    for (size_t i = 0; i < n; ++i) {
      out[begin + i] = probabilities[i] >= 0.5 ? 1 : 0;
    }
  }
  return out;
}

namespace {

/// Serializes the config scalars needed to rebuild the stateless
/// components (shared by the v1 stream and the v2 "config" section).
void WriteConfigFields(serde::Serializer* s, const WymConfig& config,
                       size_t num_attributes) {
  s->Bool(config.tokenizer.lowercase);
  s->Bool(config.tokenizer.remove_stopwords);
  s->U64(config.tokenizer.min_token_length);
  s->F64(config.generator.theta);
  s->F64(config.generator.eta);
  s->F64(config.generator.epsilon);
  s->U64(static_cast<uint64_t>(config.generator.similarity));
  s->U64(config.generator.rules.size());  // Informational only.
  s->Bool(config.simplified_features);
  s->Str(config.classifier);
  s->U64(num_attributes);
}

/// Reads WriteConfigFields output. `rule_count` and `num_attributes`
/// are returned separately (rules are code, not data).
void ReadConfigFields(serde::Deserializer* d, WymConfig* config,
                      uint64_t* rule_count, uint64_t* num_attributes) {
  config->tokenizer.lowercase = d->Bool();
  config->tokenizer.remove_stopwords = d->Bool();
  config->tokenizer.min_token_length = d->U64();
  config->generator.theta = d->F64();
  config->generator.eta = d->F64();
  config->generator.epsilon = d->F64();
  config->generator.similarity = static_cast<PairingSimilarity>(d->U64());
  *rule_count = d->U64();
  config->simplified_features = d->Bool();
  config->classifier = d->Str();
  *num_attributes = d->U64();
}

Status CheckRuleCount(uint64_t rule_count,
                      const std::vector<PairingRule>& rules) {
  if (rule_count != rules.size()) {
    return Status::InvalidArgument(
        "model was trained with " + std::to_string(rule_count) +
        " pairing rule(s); pass the same rules to LoadFromFile");
  }
  return Status::Ok();
}

}  // namespace

Status WymModel::SaveToFile(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted WymModel");
  }
  // One checksummed frame per pipeline component: damage localizes to a
  // named section, and `wym_cli verify` can audit the file without
  // deserializing any of it.
  std::vector<io::FileFrame> frames;
  const auto add_frame = [&frames](const char* name, auto&& write) {
    std::ostringstream payload;
    serde::Serializer s(&payload);
    write(&s);
    frames.push_back(io::FileFrame{name, payload.str()});
  };
  add_frame(kSectionConfig, [this](serde::Serializer* s) {
    s->Tag("wym-config/v2");
    WriteConfigFields(s, config_, num_attributes_);
  });
  add_frame(kSectionEncoder,
            [this](serde::Serializer* s) { encoder_.Save(s); });
  add_frame(kSectionScorer, [this](serde::Serializer* s) { scorer_.Save(s); });
  add_frame(kSectionMatcher,
            [this](serde::Serializer* s) { matcher_.Save(s); });
  return io::WriteFileAtomic(
             path, io::EncodeFramedFile(kModelMagic, kModelFormatVersion,
                                        frames))
      .Annotate("saving model to " + path);
}

Status WymModel::SaveToFileV1(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted WymModel");
  }
  std::ostringstream out;
  serde::Serializer s(&out);
  s.Tag("wym-model/v1");
  WriteConfigFields(&s, config_, num_attributes_);
  encoder_.Save(&s);
  scorer_.Save(&s);
  matcher_.Save(&s);
  return io::WriteFileAtomic(path, out.str())
      .Annotate("saving legacy v1 model to " + path);
}

Result<WymModel> WymModel::LoadFromFile(const std::string& path,
                                        std::vector<PairingRule> rules) {
  std::string bytes;
  const Status read = io::ReadFileToString(path, &bytes);
  if (!read.ok()) return read.Annotate("loading model");

  if (!io::LooksFramed(bytes, kModelMagic)) {
    // Legacy format v1: a bare serde stream opening with the v1 tag.
    if (bytes.compare(0, sizeof(kLegacyPrefix) - 1, kLegacyPrefix) != 0) {
      return Status::Corruption("not a WYM model file: " + path);
    }
    std::cerr << "wym: note: " << path
              << " is a legacy v1 model file (no integrity checksums); "
                 "re-save with SaveToFile to upgrade to format v2\n";
    std::istringstream in(bytes);
    serde::Deserializer d(&in);
    if (!d.Tag("wym-model/v1")) {
      return Status::Corruption("not a WYM model file: " + path);
    }
    WymConfig config;
    uint64_t rule_count = 0;
    uint64_t num_attributes = 0;
    ReadConfigFields(&d, &config, &rule_count, &num_attributes);
    if (!d.ok()) return Status::Corruption("truncated model header: " + path);
    WYM_RETURN_IF_ERROR(CheckRuleCount(rule_count, rules));
    config.generator.rules = std::move(rules);
    WymModel model(config);
    model.num_attributes_ = num_attributes;
    if (!model.encoder_.Load(&d)) {
      return Status::Corruption("bad encoder state: " + path);
    }
    if (!model.scorer_.Load(&d)) {
      return Status::Corruption("bad scorer state: " + path);
    }
    if (!model.matcher_.Load(&d)) {
      return Status::Corruption("bad matcher state: " + path);
    }
    if (!d.ok()) return Status::Corruption("truncated model file: " + path);
    model.fitted_ = true;
    return model;
  }

  // Format v2: verify the container — structure, per-section CRCs,
  // whole-file trailer — before deserializing anything.
  std::vector<io::FileFrame> frames;
  const Status decoded = io::DecodeFramedFile(
      bytes, kModelMagic, kModelFormatVersion, nullptr, &frames);
  if (!decoded.ok()) return decoded.Annotate("loading model " + path);

  const auto section = [&frames,
                        &path](const char* name) -> Result<const std::string*> {
    const std::string* payload = FindFrame(frames, name);
    if (payload == nullptr) {
      return Status::Corruption("model file missing section '" +
                                std::string(name) + "': " + path);
    }
    return payload;
  };

  auto config_bytes = section(kSectionConfig);
  if (!config_bytes.ok()) return config_bytes.status();
  std::istringstream config_in(*config_bytes.value());
  serde::Deserializer config_reader(&config_in);
  WymConfig config;
  uint64_t rule_count = 0;
  uint64_t num_attributes = 0;
  if (!config_reader.Tag("wym-config/v2")) {
    return Status::Corruption("bad config section tag: " + path);
  }
  ReadConfigFields(&config_reader, &config, &rule_count, &num_attributes);
  if (!config_reader.ok()) {
    return Status::Corruption("bad config section: " + path);
  }
  WYM_RETURN_IF_ERROR(CheckRuleCount(rule_count, rules));
  config.generator.rules = std::move(rules);

  WymModel model(config);
  model.num_attributes_ = num_attributes;
  const auto load_component = [&path](const std::string& payload,
                                      const char* name,
                                      auto&& load) -> Status {
    std::istringstream in(payload);
    serde::Deserializer d(&in);
    if (!load(&d) || !d.ok()) {
      return Status::Corruption("bad " + std::string(name) +
                                " state in section '" + name + "': " + path);
    }
    return Status::Ok();
  };
  auto payload = section(kSectionEncoder);
  if (!payload.ok()) return payload.status();
  WYM_RETURN_IF_ERROR(load_component(
      *payload.value(), kSectionEncoder,
      [&model](serde::Deserializer* d) { return model.encoder_.Load(d); }));
  payload = section(kSectionScorer);
  if (!payload.ok()) return payload.status();
  WYM_RETURN_IF_ERROR(load_component(
      *payload.value(), kSectionScorer,
      [&model](serde::Deserializer* d) { return model.scorer_.Load(d); }));
  payload = section(kSectionMatcher);
  if (!payload.ok()) return payload.status();
  WYM_RETURN_IF_ERROR(load_component(
      *payload.value(), kSectionMatcher,
      [&model](serde::Deserializer* d) { return model.matcher_.Load(d); }));
  model.fitted_ = true;
  return model;
}

Status WymModel::VerifyFile(const std::string& path, std::string* summary) {
  std::string bytes;
  WYM_RETURN_IF_ERROR(
      io::ReadFileToString(path, &bytes).Annotate("verifying " + path));
  if (!io::LooksFramed(bytes, kModelMagic)) {
    if (bytes.compare(0, sizeof(kLegacyPrefix) - 1, kLegacyPrefix) == 0) {
      if (summary != nullptr) {
        *summary = "legacy v1 model file (" + std::to_string(bytes.size()) +
                   " bytes): no integrity frames to verify; re-save to "
                   "upgrade to format v2\n";
      }
      return Status::Ok();
    }
    return Status::Corruption("not a WYM model file: " + path);
  }
  return io::VerifyFramedFile(bytes, kModelMagic, summary).Annotate(path);
}

}  // namespace wym::core
