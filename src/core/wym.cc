#include "core/wym.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/logging.h"

namespace wym::core {

std::vector<size_t> Explanation::RankByImpactMagnitude() const {
  std::vector<size_t> order(units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return std::fabs(units[a].impact) > std::fabs(units[b].impact);
  });
  return order;
}

WymModel::WymModel(WymConfig config)
    : config_(std::move(config)),
      tokenizer_(config_.tokenizer),
      encoder_(config_.encoder),
      generator_(config_.generator),
      scorer_(config_.scorer),
      matcher_(0, config_.simplified_features) {}

void WymModel::Fit(const data::Dataset& train,
                   const data::Dataset& validation) {
  WYM_CHECK_GT(train.size(), 0u) << "empty training set";
  num_attributes_ = train.schema.size();

  // Rebuild stateful components so Fit is idempotent.
  encoder_ = embedding::SemanticEncoder(config_.encoder);
  scorer_ = RelevanceScorer(config_.scorer);
  ExplainableMatcherOptions matcher_options;
  matcher_options.classifier = config_.classifier;
  matcher_options.seed = config_.seed;
  matcher_ = ExplainableMatcher(num_attributes_, config_.simplified_features,
                                matcher_options);

  // 1. Tokenize the training corpus and fit the encoder on it. Records
  // tokenize independently; results are written by record index so the
  // corpus order matches the sequential loop exactly.
  std::vector<TokenizedRecord> train_tokens(train.size());
  std::vector<std::vector<std::string>> corpus(2 * train.size());
  util::ParallelFor(
      train.size(), /*grain=*/16, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          TokenizedRecord tokenized =
              TokenizeRecord(train.records[i], train.schema, tokenizer_);
          corpus[2 * i] = tokenized.left.tokens;
          corpus[2 * i + 1] = tokenized.right.tokens;
          train_tokens[i] = std::move(tokenized);
        }
      });
  encoder_.Fit(corpus);

  // 2. Encode; then (kSiamese) calibrate on pooled pair embeddings and
  // re-encode with the calibrated metric.
  auto encode_all = [this](std::vector<TokenizedRecord>* records) {
    util::ParallelFor(
        records->size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            EncodeEntity(encoder_, &(*records)[i].left);
            EncodeEntity(encoder_, &(*records)[i].right);
          }
        });
  };
  encode_all(&train_tokens);
  if (config_.encoder.mode == embedding::EncoderMode::kSiamese) {
    std::vector<std::pair<la::Vec, la::Vec>> pairs;
    std::vector<int> labels;
    for (const auto& record : train_tokens) {
      if (record.left.embeddings.empty() || record.right.embeddings.empty()) {
        continue;
      }
      pairs.emplace_back(
          embedding::SemanticEncoder::PoolTokens(record.left.embeddings),
          embedding::SemanticEncoder::PoolTokens(record.right.embeddings));
      labels.push_back(record.label);
    }
    encoder_.FitSiamese(pairs, labels);
    encode_all(&train_tokens);  // Calibration changes the vectors.
  }

  // 3. Discover decision units (Algorithm 1) on every training record.
  std::vector<std::vector<DecisionUnit>> train_units(train_tokens.size());
  util::ParallelFor(
      train_tokens.size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          train_units[i] = generator_.Generate(
              train_tokens[i].left, train_tokens[i].right, num_attributes_);
        }
      });

  // 4. Fit the relevance scorer (Eq. 2/3 targets).
  scorer_.Fit(train_tokens, train_units);

  // 5. Score units and extract features for train + validation.
  auto scored_sets = [&](const std::vector<TokenizedRecord>& records,
                         const std::vector<std::vector<DecisionUnit>>& units) {
    std::vector<ScoredUnitSet> sets(records.size());
    util::ParallelFor(
        records.size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
          for (size_t i = begin; i < end; ++i) {
            sets[i].units = units[i];
            sets[i].scores = scorer_.Score(records[i], units[i]);
          }
        });
    return sets;
  };
  const std::vector<ScoredUnitSet> train_sets =
      scored_sets(train_tokens, train_units);

  std::vector<TokenizedRecord> val_tokens(validation.size());
  std::vector<std::vector<DecisionUnit>> val_units(validation.size());
  util::ParallelFor(
      validation.size(), /*grain=*/8, [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          TokenizedRecord tokenized =
              TokenizeRecord(validation.records[i], validation.schema,
                             tokenizer_);
          EncodeEntity(encoder_, &tokenized.left);
          EncodeEntity(encoder_, &tokenized.right);
          val_units[i] = generator_.Generate(tokenized.left, tokenized.right,
                                             num_attributes_);
          val_tokens[i] = std::move(tokenized);
        }
      });
  const std::vector<ScoredUnitSet> val_sets =
      scored_sets(val_tokens, val_units);

  // 6. Train the classifier pool and select by validation F1.
  matcher_.Fit(train_sets, train.Labels(), val_sets, validation.Labels());
  fitted_ = true;
}

TokenizedRecord WymModel::Prepare(const data::EmRecord& record) const {
  WYM_CHECK(fitted_) << "WymModel used before Fit";
  data::Schema schema;
  schema.attributes.resize(num_attributes_);  // Names are not needed here.
  WYM_CHECK_EQ(record.left.values.size(), num_attributes_);
  WYM_CHECK_EQ(record.right.values.size(), num_attributes_);
  TokenizedRecord tokenized = TokenizeRecord(record, schema, tokenizer_);
  EncodeEntity(encoder_, &tokenized.left);
  EncodeEntity(encoder_, &tokenized.right);
  return tokenized;
}

std::vector<DecisionUnit> WymModel::GenerateUnits(
    const TokenizedRecord& record) const {
  return generator_.Generate(record.left, record.right, num_attributes_);
}

std::vector<double> WymModel::ScoreUnits(
    const TokenizedRecord& record,
    const std::vector<DecisionUnit>& units) const {
  return scorer_.Score(record, units);
}

ScoredUnitSet WymModel::BuildScoredUnits(const TokenizedRecord& record) const {
  ScoredUnitSet set;
  set.units = GenerateUnits(record);
  set.scores = ScoreUnits(record, set.units);
  // Scorer stage boundary: relevance scores feed both the matcher and
  // the ranked explanation, so a NaN here corrupts both.
  WYM_DCHECK_FINITE(set.scores.data(), set.scores.size())
      << "non-finite unit relevance score";
  return set;
}

double WymModel::PredictProba(const data::EmRecord& record) const {
  return PredictProbaFromUnits(BuildScoredUnits(Prepare(record)));
}

double WymModel::PredictProbaFromUnits(const ScoredUnitSet& set) const {
  const double proba = matcher_.PredictProba(set);
  // Matcher stage boundary: probabilities must be finite (the classifier
  // pool squashes through a logistic, so NaN means poisoned features).
  WYM_DCHECK(std::isfinite(proba)) << "non-finite match probability";
  return proba;
}

Explanation WymModel::Explain(const data::EmRecord& record) const {
  const TokenizedRecord tokenized = Prepare(record);
  const ScoredUnitSet set = BuildScoredUnits(tokenized);

  Explanation out;
  out.probability = matcher_.PredictProba(set);
  out.prediction = out.probability >= 0.5 ? 1 : 0;
  const std::vector<double> impacts = matcher_.UnitImpacts(set);
  out.units.reserve(set.size());
  for (size_t u = 0; u < set.size(); ++u) {
    out.units.push_back({set.units[u], set.scores[u], impacts[u]});
  }
  return out;
}

std::vector<double> WymModel::PredictProbaBatch(const data::Dataset& dataset,
                                                util::ThreadPool* pool) const {
  WYM_CHECK(fitted_) << "WymModel used before Fit";
  std::vector<double> out(dataset.size());
  util::ParallelFor(
      dataset.size(), /*grain=*/1,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          out[i] = PredictProba(dataset.records[i]);
        }
      },
      pool);
  return out;
}

std::vector<Explanation> WymModel::ExplainBatch(const data::Dataset& dataset,
                                                util::ThreadPool* pool) const {
  WYM_CHECK(fitted_) << "WymModel used before Fit";
  std::vector<Explanation> out(dataset.size());
  util::ParallelFor(
      dataset.size(), /*grain=*/1,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          out[i] = Explain(dataset.records[i]);
        }
      },
      pool);
  return out;
}

std::vector<int> WymModel::PredictDataset(const data::Dataset& dataset) const {
  const std::vector<double> probabilities = PredictProbaBatch(dataset);
  std::vector<int> out(probabilities.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = probabilities[i] >= 0.5 ? 1 : 0;
  }
  return out;
}

Status WymModel::SaveToFile(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("cannot save an unfitted WymModel");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  serde::Serializer s(&out);
  s.Tag("wym-model/v1");
  // Config scalars needed to rebuild the stateless components.
  s.Bool(config_.tokenizer.lowercase);
  s.Bool(config_.tokenizer.remove_stopwords);
  s.U64(config_.tokenizer.min_token_length);
  s.F64(config_.generator.theta);
  s.F64(config_.generator.eta);
  s.F64(config_.generator.epsilon);
  s.U64(static_cast<uint64_t>(config_.generator.similarity));
  s.U64(config_.generator.rules.size());  // Informational only.
  s.Bool(config_.simplified_features);
  s.Str(config_.classifier);
  s.U64(num_attributes_);
  // Fitted components.
  encoder_.Save(&s);
  scorer_.Save(&s);
  matcher_.Save(&s);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<WymModel> WymModel::LoadFromFile(const std::string& path,
                                        std::vector<PairingRule> rules) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  serde::Deserializer d(&in);
  if (!d.Tag("wym-model/v1")) {
    return Status::Corruption("not a WYM model file: " + path);
  }
  WymConfig config;
  config.tokenizer.lowercase = d.Bool();
  config.tokenizer.remove_stopwords = d.Bool();
  config.tokenizer.min_token_length = d.U64();
  config.generator.theta = d.F64();
  config.generator.eta = d.F64();
  config.generator.epsilon = d.F64();
  config.generator.similarity = static_cast<PairingSimilarity>(d.U64());
  const uint64_t rule_count = d.U64();
  config.simplified_features = d.Bool();
  config.classifier = d.Str();
  if (!d.ok()) return Status::Corruption("truncated model header: " + path);
  if (rule_count != rules.size()) {
    return Status::InvalidArgument(
        "model was trained with " + std::to_string(rule_count) +
        " pairing rule(s); pass the same rules to LoadFromFile");
  }
  config.generator.rules = std::move(rules);

  WymModel model(config);
  model.num_attributes_ = d.U64();
  if (!model.encoder_.Load(&d)) {
    return Status::Corruption("bad encoder state: " + path);
  }
  if (!model.scorer_.Load(&d)) {
    return Status::Corruption("bad scorer state: " + path);
  }
  if (!model.matcher_.Load(&d)) {
    return Status::Corruption("bad matcher state: " + path);
  }
  if (!d.ok()) return Status::Corruption("truncated model file: " + path);
  model.fitted_ = true;
  return model;
}

}  // namespace wym::core
