#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace wym::nn {

namespace {

/// Adam state for one parameter tensor (flat).
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
};

constexpr double kBeta1 = 0.9;
constexpr double kBeta2 = 0.999;
constexpr double kEpsilon = 1e-8;

void AdamStep(std::vector<double>* params, const std::vector<double>& grads,
              AdamState* state, double lr, double weight_decay, size_t t) {
  if (state->m.empty()) {
    state->m.assign(params->size(), 0.0);
    state->v.assign(params->size(), 0.0);
  }
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(t));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(t));
  for (size_t i = 0; i < params->size(); ++i) {
    const double g = grads[i] + weight_decay * (*params)[i];
    state->m[i] = kBeta1 * state->m[i] + (1.0 - kBeta1) * g;
    state->v[i] = kBeta2 * state->v[i] + (1.0 - kBeta2) * g * g;
    const double m_hat = state->m[i] / bias1;
    const double v_hat = state->v[i] / bias2;
    (*params)[i] -= lr * m_hat / (std::sqrt(v_hat) + kEpsilon);
  }
}

}  // namespace

Mlp::Mlp(MlpOptions options) : options_(std::move(options)) {}

double Mlp::Forward(const std::vector<double>& row,
                    std::vector<std::vector<double>>* activations) const {
  WYM_CHECK_EQ(row.size(), input_dim_);
  std::vector<double> current = row;
  if (activations) {
    activations->clear();
    activations->push_back(current);
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.bias);
    for (size_t o = 0; o < layer.weights.rows(); ++o) {
      const double* w = layer.weights.Row(o);
      double sum = 0.0;
      for (size_t i = 0; i < current.size(); ++i) sum += w[i] * current[i];
      next[o] += sum;
    }
    const bool is_output = (l + 1 == layers_.size());
    if (!is_output) {
      for (double& v : next) v = std::max(0.0, v);  // ReLU
    }
    current = std::move(next);
    if (activations) activations->push_back(current);
  }
  WYM_CHECK_EQ(current.size(), 1u);
  return current[0];
}

void Mlp::Fit(const la::Matrix& x, const std::vector<double>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  input_dim_ = x.cols();

  // He-initialized layers: hidden... -> 1 linear output.
  Rng rng(options_.seed);
  std::vector<size_t> sizes;
  sizes.push_back(input_dim_);
  for (size_t h : options_.hidden) sizes.push_back(h);
  sizes.push_back(1);
  layers_.clear();
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.weights = la::Matrix(sizes[l + 1], sizes[l]);
    layer.bias.assign(sizes[l + 1], 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    for (size_t o = 0; o < sizes[l + 1]; ++o) {
      for (size_t i = 0; i < sizes[l]; ++i) {
        layer.weights.At(o, i) = rng.Normal(0.0, scale);
      }
    }
    layers_.push_back(std::move(layer));
  }

  // Per-layer Adam state.
  std::vector<AdamState> weight_state(layers_.size());
  std::vector<AdamState> bias_state(layers_.size());

  std::vector<size_t> order(x.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  size_t step = 0;
  std::vector<std::vector<double>> activations;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end = std::min(order.size(), start + options_.batch_size);
      const double inv_batch = 1.0 / static_cast<double>(end - start);

      // Accumulated gradients, flat per layer (weights then handled as
      // row-major grid matching la::Matrix storage).
      std::vector<std::vector<double>> grad_w(layers_.size());
      std::vector<std::vector<double>> grad_b(layers_.size());
      for (size_t l = 0; l < layers_.size(); ++l) {
        grad_w[l].assign(layers_[l].weights.data().size(), 0.0);
        grad_b[l].assign(layers_[l].bias.size(), 0.0);
      }

      for (size_t s = start; s < end; ++s) {
        const size_t row = order[s];
        const double out = Forward(x.RowVector(row), &activations);
        // d(0.5*(out-y)^2)/dout
        double delta_scalar = (out - y[row]) * inv_batch;

        // Backprop. activations[l] is the input of layer l.
        std::vector<double> delta = {delta_scalar};
        for (size_t l = layers_.size(); l-- > 0;) {
          const std::vector<double>& input = activations[l];
          Layer& layer = layers_[l];
          // Gradients of this layer.
          for (size_t o = 0; o < layer.weights.rows(); ++o) {
            const double d = delta[o];
            if (d == 0.0) continue;
            double* gw = grad_w[l].data() + o * layer.weights.cols();
            for (size_t i = 0; i < input.size(); ++i) gw[i] += d * input[i];
            grad_b[l][o] += d;
          }
          if (l == 0) break;
          // Delta for the previous layer (through this layer's weights and
          // the previous layer's ReLU).
          std::vector<double> prev_delta(layer.weights.cols(), 0.0);
          for (size_t o = 0; o < layer.weights.rows(); ++o) {
            const double d = delta[o];
            if (d == 0.0) continue;
            const double* w = layer.weights.Row(o);
            for (size_t i = 0; i < prev_delta.size(); ++i) {
              prev_delta[i] += d * w[i];
            }
          }
          const std::vector<double>& prev_act = activations[l];
          for (size_t i = 0; i < prev_delta.size(); ++i) {
            if (prev_act[i] <= 0.0) prev_delta[i] = 0.0;  // ReLU'
          }
          delta = std::move(prev_delta);
        }
      }

      ++step;
      for (size_t l = 0; l < layers_.size(); ++l) {
        AdamStep(&layers_[l].weights.data(), grad_w[l], &weight_state[l],
                 options_.learning_rate, options_.weight_decay, step);
        AdamStep(&layers_[l].bias, grad_b[l], &bias_state[l],
                 options_.learning_rate, 0.0, step);
      }
    }
  }
  fitted_ = true;
}

void Mlp::Save(serde::Serializer* s) const {
  s->Tag("mlp/v1");
  s->Bool(fitted_);
  s->Bool(options_.clamp_output);
  s->U64(input_dim_);
  s->U64(layers_.size());
  for (const Layer& layer : layers_) {
    layer.weights.Save(s);
    s->VecF64(layer.bias);
  }
}

bool Mlp::Load(serde::Deserializer* d) {
  if (!d->Tag("mlp/v1")) return false;
  fitted_ = d->Bool();
  options_.clamp_output = d->Bool();
  input_dim_ = d->U64();
  const uint64_t n_layers = d->U64();
  if (!d->ok() || n_layers > 64) return false;
  layers_.assign(n_layers, {});
  for (Layer& layer : layers_) {
    if (!layer.weights.Load(d)) return false;
    layer.bias = d->VecF64();
    if (!d->ok() || layer.bias.size() != layer.weights.rows()) return false;
  }
  return d->ok();
}

double Mlp::Predict(const std::vector<double>& row) const {
  WYM_CHECK(fitted_) << "Mlp used before Fit";
  double out = Forward(row, nullptr);
  if (options_.clamp_output) out = std::clamp(out, -1.0, 1.0);
  return out;
}

std::vector<double> Mlp::PredictBatch(const la::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = Predict(x.RowVector(r));
  return out;
}

}  // namespace wym::nn
