#ifndef WYM_NN_MLP_H_
#define WYM_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "util/serde.h"

/// \file
/// A dense feed-forward network with ReLU hidden activations trained with
/// Adam on minibatches. This is the substrate for WYM's decision-unit
/// relevance scorer (paper §4.2: 3 hidden layers of 300/64/32 ReLU units,
/// minibatch training). The output is a single linear unit; regression
/// targets live in [-1, 1].

namespace wym::nn {

/// Training hyper-parameters.
struct MlpOptions {
  /// Hidden layer widths (paper: {300, 64, 32}).
  std::vector<size_t> hidden = {300, 64, 32};
  size_t epochs = 40;
  size_t batch_size = 256;
  double learning_rate = 3e-4;
  /// L2 weight decay.
  double weight_decay = 1e-5;
  /// Clamp network outputs to [-1, 1] at prediction time (relevance-score
  /// range, paper §3.1.2).
  bool clamp_output = true;
  uint64_t seed = 0x317a;
};

/// Multi-layer perceptron regressor.
class Mlp {
 public:
  explicit Mlp(MlpOptions options = {});

  /// Trains on rows of `x` against scalar targets `y` with MSE loss.
  /// Requires x.rows() == y.size() and x.rows() > 0.
  void Fit(const la::Matrix& x, const std::vector<double>& y);

  /// Predicts a scalar for one feature row (size = input dim).
  double Predict(const std::vector<double>& row) const;

  /// Batch prediction.
  std::vector<double> PredictBatch(const la::Matrix& x) const;

  /// Serializes the trained network (topology + weights + the
  /// inference-relevant options).
  void Save(serde::Serializer* s) const;
  /// Restores a Save()d network; returns false on malformed input.
  bool Load(serde::Deserializer* d);

  bool fitted() const { return fitted_; }
  size_t input_dim() const { return input_dim_; }

 private:
  struct Layer {
    la::Matrix weights;        // out x in
    std::vector<double> bias;  // out
  };

  /// Forward pass; fills per-layer activations (post-ReLU, last = linear).
  double Forward(const std::vector<double>& row,
                 std::vector<std::vector<double>>* activations) const;

  MlpOptions options_;
  bool fitted_ = false;
  size_t input_dim_ = 0;
  std::vector<Layer> layers_;
};

}  // namespace wym::nn

#endif  // WYM_NN_MLP_H_
