#include "la/eigen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace wym::la {

EigenResult TopEigenpairs(const SparseMatrix& a, size_t k, size_t iterations,
                          uint64_t seed) {
  const size_t n = a.size();
  k = std::min(k, n);
  WYM_CHECK_GT(k, 0u);

  Rng rng(seed);
  Matrix q(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      q.At(i, j) = rng.Normal();
    }
  }
  q.OrthonormalizeColumns();

  for (size_t it = 0; it < iterations; ++it) {
    q = a.MultiplyDense(q);
    q.OrthonormalizeColumns();
  }

  // Rayleigh quotients lambda_j = q_j' A q_j. Row-major traversal so
  // each row is touched once through an unchecked pointer; every
  // values[j] still accumulates over i in increasing order, identical
  // to the column-at-a-time sum.
  const Matrix aq = a.MultiplyDense(q);
  std::vector<double> values(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* q_row = q.Row(i);
    const double* aq_row = aq.Row(i);
    for (size_t j = 0; j < k; ++j) values[j] += q_row[j] * aq_row[j];
  }

  return {std::move(q), std::move(values)};
}

Matrix EigenEmbedding(const EigenResult& eigen) {
  Matrix out = eigen.vectors;
  for (size_t j = 0; j < out.cols(); ++j) {
    const double scale = std::sqrt(std::max(eigen.values[j], 0.0));
    for (size_t i = 0; i < out.rows(); ++i) out.At(i, j) *= scale;
  }
  return out;
}

}  // namespace wym::la
