#ifndef WYM_LA_SPARSE_MATRIX_H_
#define WYM_LA_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

/// \file
/// Sparse symmetric matrix used for the PPMI co-occurrence matrix of the
/// distributional embedder. Only matrix * dense-block products are needed
/// (for orthogonal iteration).

namespace wym::la {

/// Row-indexed sparse matrix of doubles. Entries are appended and then the
/// matrix is used read-only.
class SparseMatrix {
 public:
  /// Square n x n matrix with no entries.
  explicit SparseMatrix(size_t n);

  size_t size() const { return rows_.size(); }

  /// Adds `value` at (row, col). Duplicate coordinates accumulate on
  /// multiplication (no merging is performed).
  void Add(size_t row, size_t col, double value);

  /// Number of stored entries.
  size_t EntryCount() const;

  /// Dense product this * block, where block is n x k. Returns n x k.
  Matrix MultiplyDense(const Matrix& block) const;

 private:
  struct Entry {
    uint32_t col;
    double value;
  };
  std::vector<std::vector<Entry>> rows_;
};

}  // namespace wym::la

#endif  // WYM_LA_SPARSE_MATRIX_H_
