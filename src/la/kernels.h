#ifndef WYM_LA_KERNELS_H_
#define WYM_LA_KERNELS_H_

#include <cstddef>

/// \file
/// Vectorized inner-loop kernels with runtime SIMD dispatch.
///
/// Every kernel is implemented three times — portable scalar, SSE2 and
/// AVX2 — and all paths are **bit-identical**: reductions accumulate
/// into a fixed set of 8 partial sums (partial sum k holds the elements
/// whose index is congruent to k mod 8, added in increasing index
/// order) and collapse them in one fixed tree order, so the result does
/// not depend on the selected path, the vector width, or the thread
/// count. Products of float inputs are formed in double (exact) and
/// accumulated in double, matching the precision of the scalar code the
/// kernels replaced. The kernel translation units are compiled with
/// `-ffp-contract=off` so no path silently fuses multiply-add.
///
/// The path is chosen once per process: `WYM_SIMD=avx2|sse2|off`
/// overrides the default (the best level compiled in and supported by
/// the CPU). An unavailable request falls back to the best available
/// level at or below it. See DESIGN.md "Kernel layer & runtime
/// dispatch".

namespace wym::la::kernels {

/// Dispatchable implementation levels, in increasing capability.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Printable name ("scalar" / "sse2" / "avx2").
const char* SimdLevelName(SimdLevel level);

/// Best level compiled into this binary and supported by this CPU.
SimdLevel DetectedSimdLevel();

/// The level the kernels currently dispatch to (WYM_SIMD-resolved at
/// first use).
SimdLevel ActiveSimdLevel();

/// Forces dispatch to `level` (clamped to DetectedSimdLevel()); returns
/// the level actually applied. Test hook for the parity suites — not
/// thread-safe against concurrent kernel calls.
SimdLevel SetSimdLevel(SimdLevel level);

/// sum_i a[i] * b[i], accumulated in double.
double Dot(const float* a, const float* b, size_t n);
double Dot(const double* a, const double* b, size_t n);

/// sum_i a[i]^2, accumulated in double.
double SquaredNorm(const float* a, size_t n);
double SquaredNorm(const double* a, size_t n);

/// sum_i (a[i] - b[i])^2 — the kNN Euclidean hot loop.
double SquaredDistance(const double* a, const double* b, size_t n);

/// y[i] += scale * x[i]. The float form keeps the historical semantics
/// of la::Axpy: the product is formed in double, rounded to float, then
/// added in float.
void Axpy(double scale, const float* x, float* y, size_t n);
void Axpy(double scale, const double* x, double* y, size_t n);

/// a[i] = a[i] * factor (float form: double product rounded to float).
void Scale(double factor, float* a, size_t n);
void Scale(double factor, double* a, size_t n);

/// Blocked GEMM over unit-normalized embedding rows:
///   out[i * b_rows + j] = dot(a + i*dim, b + j*dim, dim)
/// i.e. out = A * B^T with A (a_rows x dim) and B (b_rows x dim) packed
/// row-major. Rows are expected unit-normalized, making each cell a
/// cosine similarity. Blocking only reorders *cells* (each cell is one
/// independent Dot), so the result is bit-identical across paths.
void SimilarityMatrix(const float* a, size_t a_rows, const float* b,
                      size_t b_rows, size_t dim, double* out);

namespace internal {

/// One fully-populated implementation table; the dispatcher selects one
/// of these per process. Exposed for the per-level parity tests.
struct KernelTable {
  double (*dot_f32)(const float*, const float*, size_t);
  double (*dot_f64)(const double*, const double*, size_t);
  double (*sqdist_f64)(const double*, const double*, size_t);
  void (*axpy_f32)(double, const float*, float*, size_t);
  void (*axpy_f64)(double, const double*, double*, size_t);
  void (*scale_f32)(double, float*, size_t);
  void (*scale_f64)(double, double*, size_t);
};

/// Scalar table (always available).
const KernelTable* ScalarKernels();
/// SSE2 table, or nullptr when not compiled for this target.
const KernelTable* Sse2Kernels();
/// AVX2 table, or nullptr when the AVX2 TU was not built (WYM_NATIVE=OFF
/// or unsupported compiler).
const KernelTable* Avx2Kernels();

}  // namespace internal

}  // namespace wym::la::kernels

#endif  // WYM_LA_KERNELS_H_
