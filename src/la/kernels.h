#ifndef WYM_LA_KERNELS_H_
#define WYM_LA_KERNELS_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Vectorized inner-loop kernels with runtime SIMD dispatch.
///
/// Every kernel is implemented three times — portable scalar, SSE2 and
/// AVX2 — and all paths are **bit-identical**: reductions accumulate
/// into a fixed set of 8 partial sums (partial sum k holds the elements
/// whose index is congruent to k mod 8, added in increasing index
/// order) and collapse them in one fixed tree order, so the result does
/// not depend on the selected path, the vector width, or the thread
/// count. Products of float inputs are formed in double (exact) and
/// accumulated in double, matching the precision of the scalar code the
/// kernels replaced. The kernel translation units are compiled with
/// `-ffp-contract=off` so no path silently fuses multiply-add.
///
/// The path is chosen once per process: `WYM_SIMD=avx2|sse2|off`
/// overrides the default (the best level compiled in and supported by
/// the CPU). An unavailable request falls back to the best available
/// level at or below it. See DESIGN.md "Kernel layer & runtime
/// dispatch".

namespace wym::la::kernels {

/// Dispatchable implementation levels, in increasing capability.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Printable name ("scalar" / "sse2" / "avx2").
const char* SimdLevelName(SimdLevel level);

/// Best level compiled into this binary and supported by this CPU.
SimdLevel DetectedSimdLevel();

/// The level the kernels currently dispatch to (WYM_SIMD-resolved at
/// first use).
SimdLevel ActiveSimdLevel();

/// Forces dispatch to `level` (clamped to DetectedSimdLevel()); returns
/// the level actually applied. Test hook for the parity suites — not
/// thread-safe against concurrent kernel calls.
SimdLevel SetSimdLevel(SimdLevel level);

/// sum_i a[i] * b[i], accumulated in double.
double Dot(const float* a, const float* b, size_t n);
double Dot(const double* a, const double* b, size_t n);

/// sum_i a[i]^2, accumulated in double.
double SquaredNorm(const float* a, size_t n);
double SquaredNorm(const double* a, size_t n);

/// sum_i (a[i] - b[i])^2 — the kNN Euclidean hot loop.
double SquaredDistance(const double* a, const double* b, size_t n);

/// y[i] += scale * x[i]. The float form keeps the historical semantics
/// of la::Axpy: the product is formed in double, rounded to float, then
/// added in float.
void Axpy(double scale, const float* x, float* y, size_t n);
void Axpy(double scale, const double* x, double* y, size_t n);

/// a[i] = a[i] * factor (float form: double product rounded to float).
void Scale(double factor, float* a, size_t n);
void Scale(double factor, double* a, size_t n);

/// Blocked GEMM over unit-normalized embedding rows:
///   out[i * b_rows + j] = dot(a + i*dim, b + j*dim, dim)
/// i.e. out = A * B^T with A (a_rows x dim) and B (b_rows x dim) packed
/// row-major. Rows are expected unit-normalized, making each cell a
/// cosine similarity. Blocking only reorders *cells* (each cell is one
/// independent Dot), so the result is bit-identical across paths.
void SimilarityMatrix(const float* a, size_t a_rows, const float* b,
                      size_t b_rows, size_t dim, double* out);

// ---------------------------------------------------------------------
// Quantized int8 tier. Symmetric per-row scaling: a float row maps to
// int8 codes q[i] plus one float scale with x[i] ≈ q[i] * scale. Unlike
// the float kernels above (bit-identical *per level*, levels distinct),
// the int8 kernels accumulate in int32 — exact and associative — so
// every dispatch level produces identical results for identical inputs.
// ---------------------------------------------------------------------

/// Quantizes `n_rows` row-major float rows of width `dim` into
/// `q` (n_rows * dim int8 codes) and `scales` (one float per row).
///
/// Per row: scale = max|x| / 127, and each element maps to
/// clamp(round(x * (127 / max|x|)), -127, 127) with round-half-away-
/// from-zero (±0.5 rounds to ±1). The clamp is a saturation guard:
/// for finite inputs the pre-clamp value already lies in (-128, 128),
/// so codes use the symmetric range [-127, 127] and -128 never occurs.
/// An all-zero row gets scale 0 and all-zero codes. Inputs must be
/// finite. Every dispatch level emits byte-identical codes and
/// bit-identical scales: each level computes the same single float
/// multiply, half-away adjust and truncation per element.
void QuantizeRowsI8(const float* rows, size_t n_rows, size_t dim, int8_t* q,
                    float* scales);

/// Raw int32 dot product sum_i a[i] * b[i]. Exact (integer) — identical
/// across all dispatch levels and accumulation orders. Safe from int32
/// overflow for n < 2^17 (max |product| is 127 * 127 = 16129).
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

/// Dequantized dot of two quantized rows: the int32 raw dot with both
/// scales applied once in double, as
///   double(DotI8(a, b, n)) * (double(scale_a) * double(scale_b)).
/// This exact expression is used by every caller, so the float→double
/// widening never varies.
double DotI8(const int8_t* a, const int8_t* b, size_t n, float scale_a,
             float scale_b);

/// Blocked A·Bᵀ over quantized rows — the int8 counterpart of
/// SimilarityMatrix:
///   out[i * b_rows + j] = DotI8(a + i*dim, b + j*dim, dim,
///                               a_scales[i], b_scales[j])
/// For unit-normalized source rows each cell approximates a cosine
/// similarity; quantization error can push a cell slightly past ±1.
void SimilarityMatrixI8(const int8_t* a, size_t a_rows, const float* a_scales,
                        const int8_t* b, size_t b_rows, const float* b_scales,
                        size_t dim, double* out);

namespace internal {

/// One fully-populated implementation table; the dispatcher selects one
/// of these per process. Exposed for the per-level parity tests.
struct KernelTable {
  double (*dot_f32)(const float*, const float*, size_t);
  double (*dot_f64)(const double*, const double*, size_t);
  double (*sqdist_f64)(const double*, const double*, size_t);
  void (*axpy_f32)(double, const float*, float*, size_t);
  void (*axpy_f64)(double, const double*, double*, size_t);
  void (*scale_f32)(double, float*, size_t);
  void (*scale_f64)(double, double*, size_t);
  int32_t (*dot_i8)(const int8_t*, const int8_t*, size_t);
  void (*quantize_row_i8)(const float*, size_t, int8_t*, float*);
};

/// Scalar table (always available).
const KernelTable* ScalarKernels();
/// SSE2 table, or nullptr when not compiled for this target.
const KernelTable* Sse2Kernels();
/// AVX2 table, or nullptr when the AVX2 TU was not built (WYM_NATIVE=OFF
/// or unsupported compiler).
const KernelTable* Avx2Kernels();

}  // namespace internal

}  // namespace wym::la::kernels

#endif  // WYM_LA_KERNELS_H_
