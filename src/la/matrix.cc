#include "la/matrix.h"

#include <algorithm>
#include <cmath>

#include "la/kernels.h"
#include "util/logging.h"

namespace wym::la {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::RowVector(size_t r) const {
  const double* p = Row(r);
  return std::vector<double>(p, p + cols_);
}

Matrix Matrix::Multiply(const Matrix& other) const {
  WYM_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = Row(i);
    double* out_row = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      kernels::Axpy(a, other.Row(k), out_row, other.cols_);
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    double* out_data = out.data_.data();
    for (size_t j = 0; j < cols_; ++j) {
      out_data[j * rows_ + i] = row[j];
    }
  }
  return out;
}

void Matrix::OrthonormalizeColumns() {
  constexpr double kEpsilon = 1e-12;
  // Work on the transpose so each column is one contiguous row: the
  // projection/renormalization loops become kernel Dot/Axpy/Scale calls
  // instead of stride-cols_ element walks through the checked At().
  Matrix t = Transposed();
  for (size_t j = 0; j < cols_; ++j) {
    double* col_j = t.Row(j);
    // Subtract projections on the previous columns (modified Gram-Schmidt).
    for (size_t k = 0; k < j; ++k) {
      const double* col_k = t.Row(k);
      const double dot = kernels::Dot(col_j, col_k, rows_);
      kernels::Axpy(-dot, col_k, col_j, rows_);
    }
    const double norm = std::sqrt(kernels::SquaredNorm(col_j, rows_));
    if (norm < kEpsilon) {
      std::fill(col_j, col_j + rows_, 0.0);
      continue;
    }
    kernels::Scale(1.0 / norm, col_j, rows_);
  }
  *this = t.Transposed();
}

void Matrix::Save(serde::Serializer* s) const {
  s->Tag("matrix/v1");
  s->U64(rows_);
  s->U64(cols_);
  s->VecF64(data_);
}

bool Matrix::Load(serde::Deserializer* d) {
  if (!d->Tag("matrix/v1")) return false;
  rows_ = d->U64();
  cols_ = d->U64();
  data_ = d->VecF64();
  if (!d->ok() || data_.size() != rows_ * cols_) return false;
  return true;
}

std::vector<double> SolveLinearSystem(Matrix a, std::vector<double> b,
                                      double ridge) {
  const size_t n = a.rows();
  WYM_CHECK_EQ(a.cols(), n);
  WYM_CHECK_EQ(b.size(), n);
  for (size_t i = 0; i < n; ++i) a.At(i, i) += ridge;

  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) continue;  // Singular direction; leave as-is.
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(col, c), a.At(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double diagonal = a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) / diagonal;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a.At(r, c) -= factor * a.At(col, c);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t j = i + 1; j < n; ++j) sum -= a.At(i, j) * x[j];
    const double diagonal = a.At(i, i);
    x[i] = (std::fabs(diagonal) < 1e-12) ? 0.0 : sum / diagonal;
  }
  return x;
}

}  // namespace wym::la
