#ifndef WYM_LA_EIGEN_H_
#define WYM_LA_EIGEN_H_

#include <cstdint>

#include "la/matrix.h"
#include "la/sparse_matrix.h"

/// \file
/// Truncated symmetric eigendecomposition via randomized orthogonal
/// (block power) iteration. Factorizes the PPMI matrix into low-dimensional
/// token embeddings, standing in for the SVD step of count-based
/// distributional embeddings.

namespace wym::la {

/// Result of TopEigenpairs: `vectors` is n x k (columns are eigenvectors),
/// `values[j]` the Rayleigh-quotient estimate of the j-th eigenvalue.
struct EigenResult {
  Matrix vectors;
  std::vector<double> values;
};

/// Computes the k dominant eigenpairs of the symmetric matrix `a` with
/// `iterations` rounds of orthogonal iteration from a seeded random start.
/// k is clamped to the matrix size.
EigenResult TopEigenpairs(const SparseMatrix& a, size_t k, size_t iterations,
                          uint64_t seed);

/// Embedding rows E = V * diag(sqrt(max(lambda, 0))): the classic
/// symmetric-PPMI factorization (returns n x k).
Matrix EigenEmbedding(const EigenResult& eigen);

}  // namespace wym::la

#endif  // WYM_LA_EIGEN_H_
