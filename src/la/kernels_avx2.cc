// AVX2 kernel path. Compiled with -mavx2 only when the CMake option
// WYM_NATIVE is ON and the compiler supports the flag (the dispatcher
// additionally checks CPU support at runtime before selecting it).
//
// Bit-identity with the scalar/SSE2 paths: the 8 partial sums of the
// reference accumulation order live in two 4-lane double accumulators,
// added in the same per-lane order and collapsed with the same fixed
// tree. Float products are widened to double before multiplying
// (exact). Multiplies and adds stay separate instructions — no FMA —
// and the TU is compiled with -ffp-contract=off so the compiler cannot
// fuse them behind our back.

#include "la/kernels.h"

#include <immintrin.h>

namespace wym::la::kernels::internal {

namespace {

inline double Reduce8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

double DotF32Avx2(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();  // Elements 8j+0 .. 8j+3.
  __m256d acc_hi = _mm256_setzero_pd();  // Elements 8j+4 .. 8j+7.
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(a_lo, b_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(a_hi, b_hi));
  }
  double s[8];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) {
    s[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return Reduce8(s);
}

double DotF64Avx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc_hi = _mm256_add_pd(
        acc_hi,
        _mm256_mul_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4)));
  }
  double s[8];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  return Reduce8(s);
}

double SqDistF64Avx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256d d_lo =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d_hi =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
  }
  double s[8];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s[i % 8] += d * d;
  }
  return Reduce8(s);
}

void AxpyF32Avx2(double scale, const float* x, float* y, size_t n) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vx));
    const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1));
    // Double product rounded back to float, then float add — the
    // elementwise semantics of the scalar path.
    const __m128 p_lo = _mm256_cvtpd_ps(_mm256_mul_pd(x_lo, vscale));
    const __m128 p_hi = _mm256_cvtpd_ps(_mm256_mul_pd(x_hi, vscale));
    const __m256 product = _mm256_set_m128(p_hi, p_lo);
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), product));
  }
  for (; i < n; ++i) {
    y[i] += static_cast<float>(scale * static_cast<double>(x[i]));
  }
}

void AxpyF64Avx2(double scale, const double* x, double* y, size_t n) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    const __m256d product = _mm256_mul_pd(_mm256_loadu_pd(x + i), vscale);
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), product));
  }
  for (; i < n; ++i) y[i] += scale * x[i];
}

void ScaleF32Avx2(double factor, float* a, size_t n) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m128 p_lo = _mm256_cvtpd_ps(_mm256_mul_pd(a_lo, vfactor));
    const __m128 p_hi = _mm256_cvtpd_ps(_mm256_mul_pd(a_hi, vfactor));
    _mm256_storeu_ps(a + i, _mm256_set_m128(p_hi, p_lo));
  }
  for (; i < n; ++i) {
    a[i] = static_cast<float>(static_cast<double>(a[i]) * factor);
  }
}

void ScaleF64Avx2(double factor, double* a, size_t n) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    _mm256_storeu_pd(a + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vfactor));
  }
  for (; i < n; ++i) a[i] *= factor;
}

const KernelTable kAvx2Table = {
    DotF32Avx2,  DotF64Avx2,   SqDistF64Avx2, AxpyF32Avx2,
    AxpyF64Avx2, ScaleF32Avx2, ScaleF64Avx2,
};

bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const bool supported = CpuHasAvx2();
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace wym::la::kernels::internal
