// AVX2 kernel path. Compiled with -mavx2 only when the CMake option
// WYM_NATIVE is ON and the compiler supports the flag (the dispatcher
// additionally checks CPU support at runtime before selecting it).
//
// Bit-identity with the scalar/SSE2 paths: the 8 partial sums of the
// reference accumulation order live in two 4-lane double accumulators,
// added in the same per-lane order and collapsed with the same fixed
// tree. Float products are widened to double before multiplying
// (exact). Multiplies and adds stay separate instructions — no FMA —
// and the TU is compiled with -ffp-contract=off so the compiler cannot
// fuse them behind our back.

#include "la/kernels.h"

#include <cmath>
#include <cstring>

#include <immintrin.h>

namespace wym::la::kernels::internal {

namespace {

inline double Reduce8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

double DotF32Avx2(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();  // Elements 8j+0 .. 8j+3.
  __m256d acc_hi = _mm256_setzero_pd();  // Elements 8j+4 .. 8j+7.
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(a_lo, b_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(a_hi, b_hi));
  }
  double s[8];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) {
    s[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return Reduce8(s);
}

double DotF64Avx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc_hi = _mm256_add_pd(
        acc_hi,
        _mm256_mul_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4)));
  }
  double s[8];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  return Reduce8(s);
}

double SqDistF64Avx2(const double* a, const double* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256d d_lo =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d_hi =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
  }
  double s[8];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s[i % 8] += d * d;
  }
  return Reduce8(s);
}

void AxpyF32Avx2(double scale, const float* x, float* y, size_t n) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256d x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vx));
    const __m256d x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vx, 1));
    // Double product rounded back to float, then float add — the
    // elementwise semantics of the scalar path.
    const __m128 p_lo = _mm256_cvtpd_ps(_mm256_mul_pd(x_lo, vscale));
    const __m128 p_hi = _mm256_cvtpd_ps(_mm256_mul_pd(x_hi, vscale));
    const __m256 product = _mm256_set_m128(p_hi, p_lo);
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), product));
  }
  for (; i < n; ++i) {
    y[i] += static_cast<float>(scale * static_cast<double>(x[i]));
  }
}

void AxpyF64Avx2(double scale, const double* x, double* y, size_t n) {
  const __m256d vscale = _mm256_set1_pd(scale);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    const __m256d product = _mm256_mul_pd(_mm256_loadu_pd(x + i), vscale);
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), product));
  }
  for (; i < n; ++i) y[i] += scale * x[i];
}

void ScaleF32Avx2(double factor, float* a, size_t n) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m128 p_lo = _mm256_cvtpd_ps(_mm256_mul_pd(a_lo, vfactor));
    const __m128 p_hi = _mm256_cvtpd_ps(_mm256_mul_pd(a_hi, vfactor));
    _mm256_storeu_ps(a + i, _mm256_set_m128(p_hi, p_lo));
  }
  for (; i < n; ++i) {
    a[i] = static_cast<float>(static_cast<double>(a[i]) * factor);
  }
}

void ScaleF64Avx2(double factor, double* a, size_t n) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    _mm256_storeu_pd(a + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vfactor));
  }
  for (; i < n; ++i) a[i] *= factor;
}

// Int8 dot via the signed path: _mm256_cvtepi8_epi16 sign-extension +
// _mm256_madd_epi16. Deliberately avoids _mm256_maddubs_epi16 (whose
// unsigned×signed int16 saturation could differ from the scalar/SSE2
// totals) so every level produces identical int32 partials. Integer
// accumulation is exact, so lane layout never matters.
int32_t DotI8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  // Two accumulators break the add dependency chain in the main loop;
  // 16- and 8-wide tail steps keep the typical embedding dims (48, 72)
  // off the scalar fallback entirely. All reassociation is free: the
  // int32 total is exact regardless of order.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a16_lo = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i a16_hi = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 16)));
    const __m256i b16_lo = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i b16_hi = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i + 16)));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a16_lo, b16_lo));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a16_hi, b16_hi));
  }
  if (i + 16 <= n) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a16, b16));
    i += 16;
  }
  acc0 = _mm256_add_epi32(acc0, acc1);
  __m128i acc_tail = _mm_setzero_si128();
  if (i + 8 <= n) {
    const __m128i a16 = _mm_cvtepi8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i)));
    const __m128i b16 = _mm_cvtepi8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i)));
    acc_tail = _mm_madd_epi16(a16, b16);
    i += 8;
  }
  acc_tail = _mm_add_epi32(acc_tail,
                           _mm_add_epi32(_mm256_castsi256_si128(acc0),
                                         _mm256_extracti128_si256(acc0, 1)));
  int32_t lanes[4];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc_tail);
  int32_t sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

// Byte-identical to QuantizeRowI8Scalar — same per-element multiply,
// copysign(0.5f) adjust, float clamp and truncation; float max is
// exact so the 8-lane max equals the scalar running max.
void QuantizeRowI8Avx2(const float* row, size_t dim, int8_t* q,
                       float* scale) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  const size_t blocks = dim - dim % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    vmax =
        _mm256_max_ps(vmax, _mm256_and_ps(_mm256_loadu_ps(row + i), abs_mask));
  }
  float max_lanes[8];
  _mm256_storeu_ps(max_lanes, vmax);
  float max_abs = max_lanes[0];
  for (int k = 1; k < 8; ++k) {
    if (max_lanes[k] > max_abs) max_abs = max_lanes[k];
  }
  for (; i < dim; ++i) {
    const float a = std::fabs(row[i]);
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0f) {
    *scale = 0.0f;
    if (dim > 0) std::memset(q, 0, dim);
    return;
  }
  const float inv = 127.0f / max_abs;
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 sign_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int32_t>(0x80000000u)));
  const __m256 vhi = _mm256_set1_ps(127.0f);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  i = 0;
  for (; i < blocks; i += 8) {
    const __m256 v = _mm256_mul_ps(_mm256_loadu_ps(row + i), vinv);
    const __m256 half = _mm256_or_ps(_mm256_and_ps(v, sign_mask), vhalf);
    __m256 r = _mm256_add_ps(v, half);
    r = _mm256_min_ps(_mm256_max_ps(r, vlo), vhi);
    int32_t code_lanes[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(code_lanes),
                        _mm256_cvttps_epi32(r));
    for (int k = 0; k < 8; ++k) {
      q[i + static_cast<size_t>(k)] = static_cast<int8_t>(code_lanes[k]);
    }
  }
  for (; i < dim; ++i) {
    const float v = row[i] * inv;
    float r = v + std::copysign(0.5f, v);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<int8_t>(static_cast<int32_t>(r));
  }
  *scale = max_abs / 127.0f;
}

const KernelTable kAvx2Table = {
    DotF32Avx2,  DotF64Avx2,   SqDistF64Avx2, AxpyF32Avx2,
    AxpyF64Avx2, ScaleF32Avx2, ScaleF64Avx2,
    DotI8Avx2,   QuantizeRowI8Avx2,
};

bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const bool supported = CpuHasAvx2();
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace wym::la::kernels::internal
