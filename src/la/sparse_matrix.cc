#include "la/sparse_matrix.h"

#include "la/kernels.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace wym::la {

SparseMatrix::SparseMatrix(size_t n) : rows_(n) {}

void SparseMatrix::Add(size_t row, size_t col, double value) {
  WYM_CHECK_LT(row, rows_.size());
  WYM_CHECK_LT(col, rows_.size());
  rows_[row].push_back({static_cast<uint32_t>(col), value});
}

size_t SparseMatrix::EntryCount() const {
  size_t count = 0;
  for (const auto& row : rows_) count += row.size();
  return count;
}

Matrix SparseMatrix::MultiplyDense(const Matrix& block) const {
  WYM_CHECK_EQ(block.rows(), rows_.size());
  Matrix out(rows_.size(), block.cols());
  // Output rows are independent, so row-parallelism is bit-identical to
  // the sequential loop at any thread count (the power-iteration hot
  // loop of la::TopEigenpairs runs through here).
  util::ParallelFor(
      rows_.size(), /*grain=*/64,
      [&](size_t begin, size_t end, size_t /*chunk*/) {
        for (size_t r = begin; r < end; ++r) {
          double* out_row = out.Row(r);
          for (const Entry& e : rows_[r]) {
            WYM_DCHECK_LT(e.col, block.rows());
            kernels::Axpy(e.value, block.Row(e.col), out_row, block.cols());
          }
        }
      });
  return out;
}

}  // namespace wym::la
