#ifndef WYM_LA_MATRIX_H_
#define WYM_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/serde.h"

/// \file
/// Row-major dense double matrix used by the neural network, the
/// classifier pool and the eigensolver.

namespace wym::la {

/// Dense row-major matrix of doubles. Copyable; cheap default construction.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Element access. Inline (this is the eigensolver/LDA hot path);
  /// bounds-checked only under WYM_DEBUG_CHECKS builds.
  double& At(size_t r, size_t c) {
    WYM_DCHECK_LT(r, rows_);
    WYM_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    WYM_DCHECK_LT(r, rows_);
    WYM_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to row r (cols() contiguous doubles); bounds-checked only
  /// under WYM_DEBUG_CHECKS builds.
  double* Row(size_t r) {
    WYM_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    WYM_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r into a vector.
  std::vector<double> RowVector(size_t r) const;

  /// this * other (standard matmul).
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// In-place Gram-Schmidt orthonormalization of the columns.
  /// Near-dependent columns are replaced with zeros.
  void OrthonormalizeColumns();

  /// Serializes shape + data (see util/serde.h).
  void Save(serde::Serializer* s) const;
  /// Restores a Save()d matrix; returns false on malformed input.
  bool Load(serde::Deserializer* d);

  /// Raw storage (row-major).
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite-ish A via Gaussian
/// elimination with partial pivoting; adds `ridge` to the diagonal first.
/// Used by LDA and the LIME ridge regression. A is n x n, b has n entries.
std::vector<double> SolveLinearSystem(Matrix a, std::vector<double> b,
                                      double ridge = 0.0);

}  // namespace wym::la

#endif  // WYM_LA_MATRIX_H_
