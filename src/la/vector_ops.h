#ifndef WYM_LA_VECTOR_OPS_H_
#define WYM_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

/// \file
/// Dense float-vector operations for token embeddings. Embeddings are
/// float to halve memory; model mathematics (nn/, ml/) uses double.

namespace wym::la {

/// Embedding vector type.
using Vec = std::vector<float>;

/// Dot product; vectors must have equal length.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double Norm(const Vec& a);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
/// Recomputes both norms on every call — prefer CosineUnit when the
/// inputs are already unit-normalized (all SemanticEncoder outputs are).
double Cosine(const Vec& a, const Vec& b);

/// Cosine of two unit-normalized vectors: a plain dot product, skipping
/// the two norm recomputations of Cosine. Also correct for all-zero
/// vectors (returns 0 like Cosine).
double CosineUnit(const Vec& a, const Vec& b);

/// a += scale * b (in place).
void Axpy(double scale, const Vec& b, Vec* a);

/// Scales a vector in place.
void Scale(double factor, Vec* a);

/// Normalizes to unit length in place; leaves an all-zero vector untouched.
void Normalize(Vec* a);

/// Element-wise mean of two vectors.
Vec MeanOf(const Vec& a, const Vec& b);

/// Element-wise absolute difference.
Vec AbsDiff(const Vec& a, const Vec& b);

/// All-zero vector of the given dimension (the paper's [UNP] embedding).
Vec Zeros(size_t dim);

/// True when every component is exactly zero.
bool IsZero(const Vec& a);

}  // namespace wym::la

#endif  // WYM_LA_VECTOR_OPS_H_
