#include "la/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace wym::la::kernels {

namespace {

// ---------------------------------------------------------------------
// Portable scalar implementations. These define the reference
// accumulation order: 8 partial sums (index mod 8, increasing index
// within each), collapsed in one fixed tree. The SIMD paths reproduce
// this order lane-for-lane, so all paths are bit-identical.
// ---------------------------------------------------------------------

inline double Reduce8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

double DotF32Scalar(const float* a, const float* b, size_t n) {
  double s[8] = {0.0};
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    for (size_t k = 0; k < 8; ++k) {
      s[k] += static_cast<double>(a[i + k]) * static_cast<double>(b[i + k]);
    }
  }
  for (; i < n; ++i) {
    s[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return Reduce8(s);
}

double DotF64Scalar(const double* a, const double* b, size_t n) {
  double s[8] = {0.0};
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    for (size_t k = 0; k < 8; ++k) s[k] += a[i + k] * b[i + k];
  }
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  return Reduce8(s);
}

double SqDistF64Scalar(const double* a, const double* b, size_t n) {
  double s[8] = {0.0};
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    for (size_t k = 0; k < 8; ++k) {
      const double d = a[i + k] - b[i + k];
      s[k] += d * d;
    }
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s[i % 8] += d * d;
  }
  return Reduce8(s);
}

void AxpyF32Scalar(double scale, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += static_cast<float>(scale * static_cast<double>(x[i]));
  }
}

void AxpyF64Scalar(double scale, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += scale * x[i];
}

void ScaleF32Scalar(double factor, float* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(static_cast<double>(a[i]) * factor);
  }
}

void ScaleF64Scalar(double factor, double* a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= factor;
}

int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

// Reference quantization order: the SIMD paths perform the exact same
// per-element float multiply, half-away-from-zero adjust (add
// copysign(0.5f, v)), saturation clamp in float, and truncating
// conversion — so codes are byte-identical at every level. The clamp
// precedes the int conversion so an out-of-range float never hits the
// (undefined / level-dependent) overflowing cast.
void QuantizeRowI8Scalar(const float* row, size_t dim, int8_t* q,
                         float* scale) {
  float max_abs = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    const float a = std::fabs(row[i]);
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0f) {  // All-zero row: scale 0, all-zero codes.
    *scale = 0.0f;
    if (dim > 0) std::memset(q, 0, dim);
    return;
  }
  const float inv = 127.0f / max_abs;
  for (size_t i = 0; i < dim; ++i) {
    const float v = row[i] * inv;
    float r = v + std::copysign(0.5f, v);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<int8_t>(static_cast<int32_t>(r));
  }
  *scale = max_abs / 127.0f;
}

const internal::KernelTable kScalarTable = {
    DotF32Scalar, DotF64Scalar,   SqDistF64Scalar, AxpyF32Scalar,
    AxpyF64Scalar, ScaleF32Scalar, ScaleF64Scalar,
    DotI8Scalar,  QuantizeRowI8Scalar,
};

// ---------------------------------------------------------------------
// Dispatch. Resolved once per process from WYM_SIMD + CPU detection;
// SetSimdLevel re-points the table for the parity tests.
// ---------------------------------------------------------------------

struct Dispatch {
  const internal::KernelTable* table;
  SimdLevel level;
};

const internal::KernelTable* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return internal::Avx2Kernels();
    case SimdLevel::kSse2:
      return internal::Sse2Kernels();
    case SimdLevel::kScalar:
      return internal::ScalarKernels();
  }
  return nullptr;
}

Dispatch ResolveAtOrBelow(SimdLevel requested) {
  for (int level = static_cast<int>(requested); level > 0; --level) {
    if (const internal::KernelTable* table =
            TableFor(static_cast<SimdLevel>(level))) {
      return {table, static_cast<SimdLevel>(level)};
    }
  }
  return {internal::ScalarKernels(), SimdLevel::kScalar};
}

SimdLevel EnvRequestedLevel() {
  const char* raw = std::getenv("WYM_SIMD");
  if (raw == nullptr) return SimdLevel::kAvx2;  // "auto": best available.
  if (std::strcmp(raw, "off") == 0 || std::strcmp(raw, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(raw, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(raw, "avx2") == 0) return SimdLevel::kAvx2;
  return SimdLevel::kAvx2;  // Unknown value: behave like "auto".
}

std::atomic<const internal::KernelTable*> g_table{nullptr};
std::atomic<SimdLevel> g_level{SimdLevel::kScalar};

/// Counts each dispatch (re-)resolution under `simd.dispatch.<level>`.
/// Resolution happens once per process (plus explicit SetSimdLevel
/// calls), so this is off every hot path.
void CountDispatch(SimdLevel level) {
  obs::Registry::Global()
      .GetCounter(std::string("simd.dispatch.") + SimdLevelName(level))
      .Add(1);
}

const internal::KernelTable& Active() {
  const internal::KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  const Dispatch resolved = ResolveAtOrBelow(EnvRequestedLevel());
  g_level.store(resolved.level, std::memory_order_relaxed);
  g_table.store(resolved.table, std::memory_order_release);
  CountDispatch(resolved.level);
  return *resolved.table;
}

}  // namespace

namespace internal {

const KernelTable* ScalarKernels() { return &kScalarTable; }

#ifndef WYM_HAVE_AVX2
const KernelTable* Avx2Kernels() { return nullptr; }
#endif

}  // namespace internal

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  return ResolveAtOrBelow(SimdLevel::kAvx2).level;
}

SimdLevel ActiveSimdLevel() {
  Active();  // Force resolution.
  return g_level.load(std::memory_order_relaxed);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const Dispatch resolved = ResolveAtOrBelow(level);
  g_level.store(resolved.level, std::memory_order_relaxed);
  g_table.store(resolved.table, std::memory_order_release);
  CountDispatch(resolved.level);
  return resolved.level;
}

double Dot(const float* a, const float* b, size_t n) {
  WYM_DCHECK(n == 0 || (a != nullptr && b != nullptr));
  return Active().dot_f32(a, b, n);
}

double Dot(const double* a, const double* b, size_t n) {
  WYM_DCHECK(n == 0 || (a != nullptr && b != nullptr));
  return Active().dot_f64(a, b, n);
}

double SquaredNorm(const float* a, size_t n) {
  WYM_DCHECK(n == 0 || a != nullptr);
  return Active().dot_f32(a, a, n);
}

double SquaredNorm(const double* a, size_t n) {
  WYM_DCHECK(n == 0 || a != nullptr);
  return Active().dot_f64(a, a, n);
}

double SquaredDistance(const double* a, const double* b, size_t n) {
  WYM_DCHECK(n == 0 || (a != nullptr && b != nullptr));
  return Active().sqdist_f64(a, b, n);
}

void Axpy(double scale, const float* x, float* y, size_t n) {
  WYM_DCHECK(n == 0 || (x != nullptr && y != nullptr));
  Active().axpy_f32(scale, x, y, n);
}

void Axpy(double scale, const double* x, double* y, size_t n) {
  WYM_DCHECK(n == 0 || (x != nullptr && y != nullptr));
  Active().axpy_f64(scale, x, y, n);
}

void Scale(double factor, float* a, size_t n) {
  WYM_DCHECK(n == 0 || a != nullptr);
  Active().scale_f32(factor, a, n);
}

void Scale(double factor, double* a, size_t n) {
  WYM_DCHECK(n == 0 || a != nullptr);
  Active().scale_f64(factor, a, n);
}

void SimilarityMatrix(const float* a, size_t a_rows, const float* b,
                      size_t b_rows, size_t dim, double* out) {
  WYM_DCHECK(a_rows == 0 || b_rows == 0 ||
             (dim > 0 && a != nullptr && b != nullptr && out != nullptr));
  // One relaxed increment per matrix (never per Dot): the whole-matrix
  // granularity keeps instrumentation under the <2% unit-generation
  // overhead budget (DESIGN.md "Observability").
  static obs::Counter& calls =
      obs::Registry::Global().GetCounter("kernels.similarity_matrix_calls");
  calls.Add(1);
  const internal::KernelTable& table = Active();
  // Block over rows so a block of B rows stays cache-resident while a
  // block of A rows streams over it. Each cell is one independent Dot,
  // so blocking reorders cells only — bit-identity is untouched.
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < a_rows; ib += kBlock) {
    const size_t i_end = ib + kBlock < a_rows ? ib + kBlock : a_rows;
    for (size_t jb = 0; jb < b_rows; jb += kBlock) {
      const size_t j_end = jb + kBlock < b_rows ? jb + kBlock : b_rows;
      for (size_t i = ib; i < i_end; ++i) {
        const float* a_row = a + i * dim;
        double* out_row = out + i * b_rows;
        for (size_t j = jb; j < j_end; ++j) {
          out_row[j] = table.dot_f32(a_row, b + j * dim, dim);
        }
      }
    }
  }
}

void QuantizeRowsI8(const float* rows, size_t n_rows, size_t dim, int8_t* q,
                    float* scales) {
  WYM_DCHECK(n_rows == 0 ||
             (scales != nullptr &&
              (dim == 0 || (q != nullptr && rows != nullptr))));
  const internal::KernelTable& table = Active();
  for (size_t r = 0; r < n_rows; ++r) {
    table.quantize_row_i8(rows + r * dim, dim, q + r * dim, scales + r);
  }
}

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  WYM_DCHECK(n == 0 || (a != nullptr && b != nullptr));
  return Active().dot_i8(a, b, n);
}

double DotI8(const int8_t* a, const int8_t* b, size_t n, float scale_a,
             float scale_b) {
  WYM_DCHECK(n == 0 || (a != nullptr && b != nullptr));
  return static_cast<double>(Active().dot_i8(a, b, n)) *
         (static_cast<double>(scale_a) * static_cast<double>(scale_b));
}

void SimilarityMatrixI8(const int8_t* a, size_t a_rows, const float* a_scales,
                        const int8_t* b, size_t b_rows, const float* b_scales,
                        size_t dim, double* out) {
  WYM_DCHECK(a_rows == 0 || b_rows == 0 ||
             (a != nullptr && a_scales != nullptr && b != nullptr &&
              b_scales != nullptr && out != nullptr));
  // Whole-matrix counter granularity, matching SimilarityMatrix.
  static obs::Counter& calls = obs::Registry::Global().GetCounter(
      "kernels.similarity_matrix_i8_calls");
  calls.Add(1);
  const internal::KernelTable& table = Active();
  // Same cell-blocking as the float path; each cell is one independent
  // integer dot, and int32 accumulation is exact, so the result is
  // identical for any cell order and any dispatch level.
  constexpr size_t kBlock = 32;
  for (size_t ib = 0; ib < a_rows; ib += kBlock) {
    const size_t i_end = ib + kBlock < a_rows ? ib + kBlock : a_rows;
    for (size_t jb = 0; jb < b_rows; jb += kBlock) {
      const size_t j_end = jb + kBlock < b_rows ? jb + kBlock : b_rows;
      for (size_t i = ib; i < i_end; ++i) {
        const int8_t* a_row = a + i * dim;
        const double a_scale = static_cast<double>(a_scales[i]);
        double* out_row = out + i * b_rows;
        for (size_t j = jb; j < j_end; ++j) {
          out_row[j] =
              static_cast<double>(table.dot_i8(a_row, b + j * dim, dim)) *
              (a_scale * static_cast<double>(b_scales[j]));
        }
      }
    }
  }
}

}  // namespace wym::la::kernels
