// SSE2 kernel path. SSE2 is part of the x86-64 baseline, so this TU
// needs no special compile flags; on non-x86 targets it compiles to a
// nullptr table and the dispatcher falls back to scalar.
//
// Bit-identity with the scalar path: every reduction keeps the same 8
// partial sums (element index mod 8) as the scalar reference — here as
// four 2-lane double accumulators — added in the same per-lane order,
// and collapses them with the same fixed tree. Float products are
// widened to double before multiplying (exact), exactly like the scalar
// code. No FMA is used anywhere.

#include "la/kernels.h"

#include <cmath>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define WYM_SSE2_AVAILABLE 1
#include <emmintrin.h>
#else
#define WYM_SSE2_AVAILABLE 0
#endif

namespace wym::la::kernels::internal {

#if WYM_SSE2_AVAILABLE

namespace {

inline double Reduce8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

// Converts float lanes {2,3} of v to double.
inline __m128d CvtHighPd(__m128 v) {
  return _mm_cvtps_pd(_mm_movehl_ps(v, v));
}

double DotF32Sse2(const float* a, const float* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // Elements 8j+0, 8j+1.
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m128 va_lo = _mm_loadu_ps(a + i);
    const __m128 vb_lo = _mm_loadu_ps(b + i);
    const __m128 va_hi = _mm_loadu_ps(a + i + 4);
    const __m128 vb_hi = _mm_loadu_ps(b + i + 4);
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_cvtps_pd(va_lo), _mm_cvtps_pd(vb_lo)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(CvtHighPd(va_lo), CvtHighPd(vb_lo)));
    acc45 = _mm_add_pd(
        acc45, _mm_mul_pd(_mm_cvtps_pd(va_hi), _mm_cvtps_pd(vb_hi)));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(CvtHighPd(va_hi), CvtHighPd(vb_hi)));
  }
  double s[8];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  _mm_storeu_pd(s + 4, acc45);
  _mm_storeu_pd(s + 6, acc67);
  for (; i < n; ++i) {
    s[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return Reduce8(s);
}

double DotF64Sse2(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
    acc45 = _mm_add_pd(
        acc45, _mm_mul_pd(_mm_loadu_pd(a + i + 4), _mm_loadu_pd(b + i + 4)));
    acc67 = _mm_add_pd(
        acc67, _mm_mul_pd(_mm_loadu_pd(a + i + 6), _mm_loadu_pd(b + i + 6)));
  }
  double s[8];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  _mm_storeu_pd(s + 4, acc45);
  _mm_storeu_pd(s + 6, acc67);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  return Reduce8(s);
}

double SqDistF64Sse2(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    const __m128d d45 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 4), _mm_loadu_pd(b + i + 4));
    const __m128d d67 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 6), _mm_loadu_pd(b + i + 6));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
  }
  double s[8];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  _mm_storeu_pd(s + 4, acc45);
  _mm_storeu_pd(s + 6, acc67);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s[i % 8] += d * d;
  }
  return Reduce8(s);
}

void AxpyF32Sse2(double scale, const float* x, float* y, size_t n) {
  const __m128d vscale = _mm_set1_pd(scale);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    const __m128 vx = _mm_loadu_ps(x + i);
    // Double product rounded to float, then float add — elementwise, so
    // identical to the scalar semantics.
    const __m128 lo =
        _mm_cvtpd_ps(_mm_mul_pd(_mm_cvtps_pd(vx), vscale));
    const __m128 hi = _mm_cvtpd_ps(_mm_mul_pd(CvtHighPd(vx), vscale));
    const __m128 product = _mm_movelh_ps(lo, hi);
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i), product));
  }
  for (; i < n; ++i) {
    y[i] += static_cast<float>(scale * static_cast<double>(x[i]));
  }
}

void AxpyF64Sse2(double scale, const double* x, double* y, size_t n) {
  const __m128d vscale = _mm_set1_pd(scale);
  const size_t blocks = n - n % 2;
  size_t i = 0;
  for (; i < blocks; i += 2) {
    const __m128d product = _mm_mul_pd(_mm_loadu_pd(x + i), vscale);
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), product));
  }
  for (; i < n; ++i) y[i] += scale * x[i];
}

void ScaleF32Sse2(double factor, float* a, size_t n) {
  const __m128d vfactor = _mm_set1_pd(factor);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    const __m128 va = _mm_loadu_ps(a + i);
    const __m128 lo = _mm_cvtpd_ps(_mm_mul_pd(_mm_cvtps_pd(va), vfactor));
    const __m128 hi = _mm_cvtpd_ps(_mm_mul_pd(CvtHighPd(va), vfactor));
    _mm_storeu_ps(a + i, _mm_movelh_ps(lo, hi));
  }
  for (; i < n; ++i) {
    a[i] = static_cast<float>(static_cast<double>(a[i]) * factor);
  }
}

void ScaleF64Sse2(double factor, double* a, size_t n) {
  const __m128d vfactor = _mm_set1_pd(factor);
  const size_t blocks = n - n % 2;
  size_t i = 0;
  for (; i < blocks; i += 2) {
    _mm_storeu_pd(a + i, _mm_mul_pd(_mm_loadu_pd(a + i), vfactor));
  }
  for (; i < n; ++i) a[i] *= factor;
}

// Int8 dot: int32 accumulation is exact, so unlike the float kernels no
// accumulation-order discipline is needed — any lane layout gives the
// same total. SSE2 has no epi8 multiply; sign-extend bytes to int16
// (unpack-with-self + arithmetic shift, no SSE4.1 needed), then
// _mm_madd_epi16 forms pairwise int32 products.
int32_t DotI8Sse2(const int8_t* a, const int8_t* b, size_t n) {
  // Two accumulators break the add dependency chain; the 8-wide tail
  // step keeps dims like 72 (4x16 + 8) off the scalar fallback. Free
  // reassociation: the int32 total is exact regardless of order.
  __m128i acc0 = _mm_setzero_si128();
  __m128i acc1 = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
    const __m128i a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(va, va), 8);
    const __m128i b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
    const __m128i b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(vb, vb), 8);
    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(a_lo, b_lo));
    acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(a_hi, b_hi));
  }
  if (i + 8 <= n) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    const __m128i a16 = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
    const __m128i b16 = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(a16, b16));
    i += 8;
  }
  const __m128i acc = _mm_add_epi32(acc0, acc1);
  int32_t lanes[4];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int32_t sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

// Byte-identical to QuantizeRowI8Scalar: the same single float multiply,
// copysign(0.5f) adjust, float-domain clamp and truncating conversion
// per element; float max is exact so the lane max equals the running
// scalar max.
void QuantizeRowI8Sse2(const float* row, size_t dim, int8_t* q,
                       float* scale) {
  const __m128 abs_mask =
      _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  __m128 vmax = _mm_setzero_ps();
  const size_t blocks = dim - dim % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    vmax = _mm_max_ps(vmax, _mm_and_ps(_mm_loadu_ps(row + i), abs_mask));
  }
  float max_lanes[4];
  _mm_storeu_ps(max_lanes, vmax);
  float max_abs = max_lanes[0];
  for (int k = 1; k < 4; ++k) {
    if (max_lanes[k] > max_abs) max_abs = max_lanes[k];
  }
  for (; i < dim; ++i) {
    const float a = std::fabs(row[i]);
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0f) {
    *scale = 0.0f;
    if (dim > 0) std::memset(q, 0, dim);
    return;
  }
  const float inv = 127.0f / max_abs;
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128 vhalf = _mm_set1_ps(0.5f);
  const __m128 sign_mask =
      _mm_castsi128_ps(_mm_set1_epi32(static_cast<int32_t>(0x80000000u)));
  const __m128 vhi = _mm_set1_ps(127.0f);
  const __m128 vlo = _mm_set1_ps(-127.0f);
  i = 0;
  for (; i < blocks; i += 4) {
    const __m128 v = _mm_mul_ps(_mm_loadu_ps(row + i), vinv);
    const __m128 half = _mm_or_ps(_mm_and_ps(v, sign_mask), vhalf);
    __m128 r = _mm_add_ps(v, half);
    r = _mm_min_ps(_mm_max_ps(r, vlo), vhi);
    int32_t code_lanes[4];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(code_lanes),
                     _mm_cvttps_epi32(r));
    q[i + 0] = static_cast<int8_t>(code_lanes[0]);
    q[i + 1] = static_cast<int8_t>(code_lanes[1]);
    q[i + 2] = static_cast<int8_t>(code_lanes[2]);
    q[i + 3] = static_cast<int8_t>(code_lanes[3]);
  }
  for (; i < dim; ++i) {
    const float v = row[i] * inv;
    float r = v + std::copysign(0.5f, v);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<int8_t>(static_cast<int32_t>(r));
  }
  *scale = max_abs / 127.0f;
}

const KernelTable kSse2Table = {
    DotF32Sse2,  DotF64Sse2,   SqDistF64Sse2, AxpyF32Sse2,
    AxpyF64Sse2, ScaleF32Sse2, ScaleF64Sse2,
    DotI8Sse2,   QuantizeRowI8Sse2,
};

}  // namespace

const KernelTable* Sse2Kernels() { return &kSse2Table; }

#else  // !WYM_SSE2_AVAILABLE

const KernelTable* Sse2Kernels() { return nullptr; }

#endif

}  // namespace wym::la::kernels::internal
