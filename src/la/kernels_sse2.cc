// SSE2 kernel path. SSE2 is part of the x86-64 baseline, so this TU
// needs no special compile flags; on non-x86 targets it compiles to a
// nullptr table and the dispatcher falls back to scalar.
//
// Bit-identity with the scalar path: every reduction keeps the same 8
// partial sums (element index mod 8) as the scalar reference — here as
// four 2-lane double accumulators — added in the same per-lane order,
// and collapses them with the same fixed tree. Float products are
// widened to double before multiplying (exact), exactly like the scalar
// code. No FMA is used anywhere.

#include "la/kernels.h"

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define WYM_SSE2_AVAILABLE 1
#include <emmintrin.h>
#else
#define WYM_SSE2_AVAILABLE 0
#endif

namespace wym::la::kernels::internal {

#if WYM_SSE2_AVAILABLE

namespace {

inline double Reduce8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

// Converts float lanes {2,3} of v to double.
inline __m128d CvtHighPd(__m128 v) {
  return _mm_cvtps_pd(_mm_movehl_ps(v, v));
}

double DotF32Sse2(const float* a, const float* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // Elements 8j+0, 8j+1.
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m128 va_lo = _mm_loadu_ps(a + i);
    const __m128 vb_lo = _mm_loadu_ps(b + i);
    const __m128 va_hi = _mm_loadu_ps(a + i + 4);
    const __m128 vb_hi = _mm_loadu_ps(b + i + 4);
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_cvtps_pd(va_lo), _mm_cvtps_pd(vb_lo)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(CvtHighPd(va_lo), CvtHighPd(vb_lo)));
    acc45 = _mm_add_pd(
        acc45, _mm_mul_pd(_mm_cvtps_pd(va_hi), _mm_cvtps_pd(vb_hi)));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(CvtHighPd(va_hi), CvtHighPd(vb_hi)));
  }
  double s[8];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  _mm_storeu_pd(s + 4, acc45);
  _mm_storeu_pd(s + 6, acc67);
  for (; i < n; ++i) {
    s[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return Reduce8(s);
}

double DotF64Sse2(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    acc01 = _mm_add_pd(
        acc01, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
    acc45 = _mm_add_pd(
        acc45, _mm_mul_pd(_mm_loadu_pd(a + i + 4), _mm_loadu_pd(b + i + 4)));
    acc67 = _mm_add_pd(
        acc67, _mm_mul_pd(_mm_loadu_pd(a + i + 6), _mm_loadu_pd(b + i + 6)));
  }
  double s[8];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  _mm_storeu_pd(s + 4, acc45);
  _mm_storeu_pd(s + 6, acc67);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  return Reduce8(s);
}

double SqDistF64Sse2(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  const size_t blocks = n - n % 8;
  size_t i = 0;
  for (; i < blocks; i += 8) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    const __m128d d45 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 4), _mm_loadu_pd(b + i + 4));
    const __m128d d67 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 6), _mm_loadu_pd(b + i + 6));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
  }
  double s[8];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  _mm_storeu_pd(s + 4, acc45);
  _mm_storeu_pd(s + 6, acc67);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    s[i % 8] += d * d;
  }
  return Reduce8(s);
}

void AxpyF32Sse2(double scale, const float* x, float* y, size_t n) {
  const __m128d vscale = _mm_set1_pd(scale);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    const __m128 vx = _mm_loadu_ps(x + i);
    // Double product rounded to float, then float add — elementwise, so
    // identical to the scalar semantics.
    const __m128 lo =
        _mm_cvtpd_ps(_mm_mul_pd(_mm_cvtps_pd(vx), vscale));
    const __m128 hi = _mm_cvtpd_ps(_mm_mul_pd(CvtHighPd(vx), vscale));
    const __m128 product = _mm_movelh_ps(lo, hi);
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i), product));
  }
  for (; i < n; ++i) {
    y[i] += static_cast<float>(scale * static_cast<double>(x[i]));
  }
}

void AxpyF64Sse2(double scale, const double* x, double* y, size_t n) {
  const __m128d vscale = _mm_set1_pd(scale);
  const size_t blocks = n - n % 2;
  size_t i = 0;
  for (; i < blocks; i += 2) {
    const __m128d product = _mm_mul_pd(_mm_loadu_pd(x + i), vscale);
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), product));
  }
  for (; i < n; ++i) y[i] += scale * x[i];
}

void ScaleF32Sse2(double factor, float* a, size_t n) {
  const __m128d vfactor = _mm_set1_pd(factor);
  const size_t blocks = n - n % 4;
  size_t i = 0;
  for (; i < blocks; i += 4) {
    const __m128 va = _mm_loadu_ps(a + i);
    const __m128 lo = _mm_cvtpd_ps(_mm_mul_pd(_mm_cvtps_pd(va), vfactor));
    const __m128 hi = _mm_cvtpd_ps(_mm_mul_pd(CvtHighPd(va), vfactor));
    _mm_storeu_ps(a + i, _mm_movelh_ps(lo, hi));
  }
  for (; i < n; ++i) {
    a[i] = static_cast<float>(static_cast<double>(a[i]) * factor);
  }
}

void ScaleF64Sse2(double factor, double* a, size_t n) {
  const __m128d vfactor = _mm_set1_pd(factor);
  const size_t blocks = n - n % 2;
  size_t i = 0;
  for (; i < blocks; i += 2) {
    _mm_storeu_pd(a + i, _mm_mul_pd(_mm_loadu_pd(a + i), vfactor));
  }
  for (; i < n; ++i) a[i] *= factor;
}

const KernelTable kSse2Table = {
    DotF32Sse2,  DotF64Sse2,   SqDistF64Sse2, AxpyF32Sse2,
    AxpyF64Sse2, ScaleF32Sse2, ScaleF64Sse2,
};

}  // namespace

const KernelTable* Sse2Kernels() { return &kSse2Table; }

#else  // !WYM_SSE2_AVAILABLE

const KernelTable* Sse2Kernels() { return nullptr; }

#endif

}  // namespace wym::la::kernels::internal
