#include "la/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace wym::la {

double Dot(const Vec& a, const Vec& b) {
  WYM_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Cosine(const Vec& a, const Vec& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void Axpy(double scale, const Vec& b, Vec* a) {
  WYM_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    (*a)[i] += static_cast<float>(scale * b[i]);
  }
}

void Scale(double factor, Vec* a) {
  for (float& v : *a) v = static_cast<float>(v * factor);
}

void Normalize(Vec* a) {
  const double norm = Norm(*a);
  if (norm == 0.0) return;
  Scale(1.0 / norm, a);
}

Vec MeanOf(const Vec& a, const Vec& b) {
  WYM_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = 0.5f * (a[i] + b[i]);
  return out;
}

Vec AbsDiff(const Vec& a, const Vec& b) {
  WYM_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::fabs(a[i] - b[i]);
  return out;
}

Vec Zeros(size_t dim) { return Vec(dim, 0.0f); }

bool IsZero(const Vec& a) {
  for (float v : a) {
    if (v != 0.0f) return false;
  }
  return true;
}

}  // namespace wym::la
