#include "la/vector_ops.h"

#include <cmath>

#include "la/kernels.h"
#include "util/logging.h"

namespace wym::la {

double Dot(const Vec& a, const Vec& b) {
  WYM_CHECK_EQ(a.size(), b.size());
  return kernels::Dot(a.data(), b.data(), a.size());
}

double Norm(const Vec& a) {
  return std::sqrt(kernels::SquaredNorm(a.data(), a.size()));
}

double Cosine(const Vec& a, const Vec& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double CosineUnit(const Vec& a, const Vec& b) { return Dot(a, b); }

void Axpy(double scale, const Vec& b, Vec* a) {
  WYM_CHECK_EQ(a->size(), b.size());
  kernels::Axpy(scale, b.data(), a->data(), b.size());
}

void Scale(double factor, Vec* a) {
  kernels::Scale(factor, a->data(), a->size());
}

void Normalize(Vec* a) {
  const double norm = Norm(*a);
  if (norm == 0.0) return;
  Scale(1.0 / norm, a);
}

Vec MeanOf(const Vec& a, const Vec& b) {
  WYM_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = 0.5f * (a[i] + b[i]);
  return out;
}

Vec AbsDiff(const Vec& a, const Vec& b) {
  WYM_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::fabs(a[i] - b[i]);
  return out;
}

Vec Zeros(size_t dim) { return Vec(dim, 0.0f); }

bool IsZero(const Vec& a) {
  for (float v : a) {
    if (v != 0.0f) return false;
  }
  return true;
}

}  // namespace wym::la
