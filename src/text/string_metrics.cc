#include "text/string_metrics.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace wym::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Rolling single-row DP.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t above = row[j];
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t longest = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = (i > match_window) ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  constexpr double kPrefixScale = 0.1;
  constexpr size_t kMaxPrefix = 4;
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), kMaxPrefix});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * kPrefixScale * (1.0 - jaro);
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  auto grams = [n](std::string_view s) {
    std::set<std::string> out;
    if (s.size() <= n) {
      out.emplace(s);
      return out;
    }
    for (size_t i = 0; i + n <= s.size(); ++i) {
      out.emplace(s.substr(i, n));
    }
    return out;
  };
  const std::set<std::string> ga = grams(a);
  const std::set<std::string> gb = grams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t shared = 0;
  for (const auto& g : ga) shared += gb.count(g);
  const size_t unioned = ga.size() + gb.size() - shared;
  if (unioned == 0) return 1.0;
  return static_cast<double>(shared) / static_cast<double>(unioned);
}

}  // namespace wym::text
