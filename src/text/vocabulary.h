#ifndef WYM_TEXT_VOCABULARY_H_
#define WYM_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file
/// Token vocabulary with frequencies. Backs the co-occurrence embedder and
/// statistics in the dataset benches.

namespace wym::text {

/// Sentinel returned by Vocabulary::IdOf for unknown tokens.
inline constexpr int32_t kUnknownToken = -1;

/// Bidirectional token <-> id map with occurrence counts.
/// Ids are assigned in first-seen order, so building from the same corpus
/// is deterministic.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Adds one occurrence of `token`, creating an id on first sight.
  /// Returns the token id.
  int32_t Add(std::string_view token);

  /// Id of `token`, or kUnknownToken.
  int32_t IdOf(std::string_view token) const;

  /// Token string for a valid id.
  const std::string& TokenOf(int32_t id) const;

  /// Occurrence count for a valid id.
  int64_t CountOf(int32_t id) const;

  /// Number of distinct tokens.
  size_t size() const { return tokens_.size(); }

  /// Total occurrences added.
  int64_t total_count() const { return total_count_; }

  /// Ids of the `k` most frequent tokens (ties by id order).
  std::vector<int32_t> TopK(size_t k) const;

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace wym::text

#endif  // WYM_TEXT_VOCABULARY_H_
