#ifndef WYM_TEXT_STRING_METRICS_H_
#define WYM_TEXT_STRING_METRICS_H_

#include <string_view>

/// \file
/// Syntactic string similarity measures. Jaro-Winkler is the baseline the
/// paper uses for the unit-generator and scorer ablations (Table 4); the
/// others support tests and the subword embedder.

namespace wym::text {

/// Levenshtein edit distance (unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized edit similarity: 1 - distance / max(|a|, |b|); 1 for two
/// empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with standard prefix scale 0.1 and
/// a maximum common-prefix length of 4 (Winkler 1990).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of character n-gram sets (default trigrams).
/// Strings shorter than n are treated as a single gram.
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 3);

}  // namespace wym::text

#endif  // WYM_TEXT_STRING_METRICS_H_
