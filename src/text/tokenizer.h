#ifndef WYM_TEXT_TOKENIZER_H_
#define WYM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

/// \file
/// Tokenization of entity-description attribute values (paper §4.1.1):
/// lower-casing, punctuation splitting, stop-word removal, and an optional
/// word-piece-style subword splitter used by the subword embedder.

namespace wym::text {

/// Configuration for Tokenizer.
struct TokenizerOptions {
  /// Lower-case all tokens (the paper tokenizes case-insensitively).
  bool lowercase = true;
  /// Drop English stop words ("the", "of", ...; paper §4.1.1).
  bool remove_stopwords = true;
  /// Drop tokens shorter than this after splitting (1 keeps everything).
  size_t min_token_length = 1;
};

/// Splits attribute values into word tokens.
///
/// Splitting rules: whitespace and punctuation are separators, except that
/// '.' between digits is kept (prices like "37.63" stay one token) and
/// '-'/'/'/'&' inside alphanumeric runs are treated as separators. Tokens
/// are lower-cased and stop words removed according to the options.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes one attribute value.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// True if `token` (already lower-cased) is in the stop-word list.
  static bool IsStopWord(std::string_view token);

 private:
  TokenizerOptions options_;
};

/// Greedy longest-match-first subword splitter over a fixed vocabulary,
/// mimicking WordPiece. Unknown spans fall back to character pieces. Used
/// by the embedding module to share statistics between rare tokens (the
/// paper leans on BERT's word-piece tokenization; §5.1.1 notes its side
/// effects on product codes).
class SubwordSplitter {
 public:
  /// Builds the piece vocabulary from a corpus of tokens: all characters
  /// plus the `max_pieces` most frequent multi-character substrings of
  /// length <= `max_piece_length` occurring at least `min_count` times.
  SubwordSplitter(const std::vector<std::string>& corpus_tokens,
                  size_t max_pieces = 2048, size_t max_piece_length = 6,
                  size_t min_count = 2);

  /// Splits a token into pieces; never returns an empty vector for a
  /// non-empty token. Continuation pieces carry no marker (positions are
  /// tracked by the caller).
  std::vector<std::string> Split(std::string_view token) const;

  /// Number of pieces in the vocabulary.
  size_t vocabulary_size() const { return pieces_.size(); }

  /// True if `piece` is in the vocabulary.
  bool Contains(std::string_view piece) const {
    return pieces_.count(std::string(piece)) > 0;
  }

 private:
  std::unordered_set<std::string> pieces_;
  size_t max_piece_length_ = 6;
};

}  // namespace wym::text

#endif  // WYM_TEXT_TOKENIZER_H_
