#include "text/tokenizer.h"

#include <array>
#include <cctype>
#include <map>

#include "util/string_util.h"

namespace wym::text {

namespace {

// Compact English stop-word list; matches the scale of the NLTK list the
// reference implementation uses for EM descriptions.
constexpr std::array<std::string_view, 48> kStopWords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
    "for",  "from", "has",  "he",   "in",   "is",   "it",   "its",
    "of",   "on",   "or",   "that", "the",  "to",   "was",  "were",
    "will", "with", "this", "but",  "they", "have", "had",  "what",
    "when", "where", "who", "which", "their", "them", "these", "those",
    "then", "than", "so",   "not",  "no",   "nor",  "into", "about"};

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool IsAlnum(char c) { return std::isalnum(static_cast<unsigned char>(c)); }

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsStopWord(std::string_view token) {
  for (std::string_view w : kStopWords) {
    if (w == token) return true;
  }
  return false;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return;
    std::string token =
        options_.lowercase ? strings::ToLower(current) : current;
    current.clear();
    if (token.size() < options_.min_token_length) return;
    if (options_.remove_stopwords && IsStopWord(token)) return;
    tokens.push_back(std::move(token));
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (IsAlnum(c)) {
      current += c;
      continue;
    }
    // Keep '.' between two digits: "37.63" is one token.
    if (c == '.' && i > 0 && i + 1 < text.size() && IsDigit(text[i - 1]) &&
        IsDigit(text[i + 1])) {
      current += c;
      continue;
    }
    flush();
  }
  flush();
  return tokens;
}

SubwordSplitter::SubwordSplitter(const std::vector<std::string>& corpus_tokens,
                                 size_t max_pieces, size_t max_piece_length,
                                 size_t min_count)
    : max_piece_length_(max_piece_length) {
  // Always include every single character observed, so Split can never fail.
  std::map<std::string, size_t> counts;
  for (const std::string& token : corpus_tokens) {
    for (char c : token) pieces_.insert(std::string(1, c));
    for (size_t len = 2; len <= max_piece_length && len <= token.size();
         ++len) {
      for (size_t i = 0; i + len <= token.size(); ++i) {
        ++counts[token.substr(i, len)];
      }
    }
  }
  // Keep the most frequent multi-character substrings. std::map iteration is
  // deterministic; ties break lexicographically via the map ordering below.
  std::multimap<size_t, std::string, std::greater<>> ranked;
  for (const auto& [piece, count] : counts) {
    if (count >= min_count) ranked.emplace(count, piece);
  }
  size_t added = 0;
  for (const auto& [count, piece] : ranked) {
    if (added >= max_pieces) break;
    if (pieces_.insert(piece).second) ++added;
  }
}

std::vector<std::string> SubwordSplitter::Split(std::string_view token) const {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < token.size()) {
    size_t len = std::min(max_piece_length_, token.size() - start);
    // Greedy longest match; single characters always hit (if seen in the
    // corpus) or fall back to the raw character.
    while (len > 1 &&
           pieces_.count(std::string(token.substr(start, len))) == 0) {
      --len;
    }
    out.emplace_back(token.substr(start, len));
    start += len;
  }
  return out;
}

}  // namespace wym::text
