#include "text/vocabulary.h"

#include <algorithm>

#include "util/logging.h"

namespace wym::text {

int32_t Vocabulary::Add(std::string_view token) {
  ++total_count_;
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) {
    ++counts_[it->second];
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(tokens_.size());
  ids_.emplace(std::string(token), id);
  tokens_.emplace_back(token);
  counts_.push_back(1);
  return id;
}

int32_t Vocabulary::IdOf(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kUnknownToken : it->second;
}

const std::string& Vocabulary::TokenOf(int32_t id) const {
  WYM_CHECK_GE(id, 0);
  WYM_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[id];
}

int64_t Vocabulary::CountOf(int32_t id) const {
  WYM_CHECK_GE(id, 0);
  WYM_CHECK_LT(static_cast<size_t>(id), counts_.size());
  return counts_[id];
}

std::vector<int32_t> Vocabulary::TopK(size_t k) const {
  std::vector<int32_t> ids(tokens_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  std::stable_sort(ids.begin(), ids.end(), [this](int32_t a, int32_t b) {
    return counts_[a] > counts_[b];
  });
  if (ids.size() > k) ids.resize(k);
  return ids;
}

}  // namespace wym::text
