#include "util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace wym::io {

namespace {

bool IsWriteFault(Fault::Kind kind) {
  return kind == Fault::Kind::kFailWriteAt || kind == Fault::Kind::kEnospc ||
         kind == Fault::Kind::kCrashAt;
}

bool IsFileReadFault(Fault::Kind kind) {
  return kind == Fault::Kind::kShortRead || kind == Fault::Kind::kFlipBit;
}

bool IsSockReadFault(Fault::Kind kind) {
  return kind == Fault::Kind::kSockShortRead ||
         kind == Fault::Kind::kSockEintr ||
         kind == Fault::Kind::kSockDisconnect;
}

bool IsSockWriteFault(Fault::Kind kind) {
  return kind == Fault::Kind::kSockShortWrite ||
         kind == Fault::Kind::kSockEintr ||
         kind == Fault::Kind::kSockDisconnect;
}

/// The per-thread fault plan (tests only; nullptr in production).
thread_local FaultInjector* g_active_injector = nullptr;

std::string Errno(const char* step, const std::string& path) {
  return std::string(step) + " failed for " + path + ": " +
         std::strerror(errno);
}

/// write(2) until done or error; returns bytes written.
size_t WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += static_cast<size_t>(n);
  }
  return written;
}

}  // namespace

const Fault* FaultInjector::NextWriteFault() const {
  if (next_ < script_.size() && IsWriteFault(script_[next_].kind)) {
    return &script_[next_];
  }
  return nullptr;
}

const Fault* FaultInjector::NextReadFault() const {
  if (next_ < script_.size() && IsFileReadFault(script_[next_].kind)) {
    return &script_[next_];
  }
  return nullptr;
}

const Fault* FaultInjector::NextSockReadFault() const {
  if (next_ < script_.size() && IsSockReadFault(script_[next_].kind)) {
    return &script_[next_];
  }
  return nullptr;
}

const Fault* FaultInjector::NextSockWriteFault() const {
  if (next_ < script_.size() && IsSockWriteFault(script_[next_].kind)) {
    return &script_[next_];
  }
  return nullptr;
}

void FaultInjector::Spend(const Fault* fault) {
  if (fault == nullptr || next_ >= script_.size() ||
      fault != &script_[next_]) {
    return;
  }
  ++next_;
  ++faults_fired_;
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector)
    : previous_(g_active_injector) {
  g_active_injector = injector;
}

ScopedFaultInjector::~ScopedFaultInjector() {
  g_active_injector = previous_;
}

FaultInjector* ActiveFaultInjector() { return g_active_injector; }

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  // Stage in the same directory so the final rename cannot cross a
  // filesystem boundary (rename is only atomic within one).
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("open", temp));

  FaultInjector* injector = ActiveFaultInjector();
  const Fault* fault = injector ? injector->NextWriteFault() : nullptr;
  const size_t limit =
      fault ? std::min<size_t>(data.size(), fault->offset) : data.size();

  const size_t written = WriteAll(fd, data.data(), limit);
  if (written < limit) {
    const std::string message = Errno("write", temp);
    ::close(fd);
    ::unlink(temp.c_str());
    return Status::IoError(message);
  }

  if (fault != nullptr) {
    injector->Spend(fault);
    ::close(fd);
    if (fault->kind == Fault::Kind::kCrashAt) {
      // Simulated kill mid-save: the partial temp file stays on disk,
      // no rename — the target must remain intact.
      return Status::IoError("injected crash after " +
                             std::to_string(limit) + " byte(s): " + temp);
    }
    ::unlink(temp.c_str());
    if (fault->kind == Fault::Kind::kEnospc) {
      return Status::IoError("no space left on device (injected) writing " +
                             temp);
    }
    return Status::IoError("injected write failure at byte " +
                           std::to_string(limit) + ": " + temp);
  }

  if (::fsync(fd) != 0) {
    const std::string message = Errno("fsync", temp);
    ::close(fd);
    ::unlink(temp.c_str());
    return Status::IoError(message);
  }
  if (::close(fd) != 0) {
    const std::string message = Errno("close", temp);
    ::unlink(temp.c_str());
    return Status::IoError(message);
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const std::string message = Errno("rename", temp);
    ::unlink(temp.c_str());
    return Status::IoError(message);
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(Errno("open", path));
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = Errno("read", path);
      ::close(fd);
      return Status::IoError(message);
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  FaultInjector* injector = ActiveFaultInjector();
  const Fault* fault = injector ? injector->NextReadFault() : nullptr;
  if (fault != nullptr) {
    injector->Spend(fault);
    if (fault->kind == Fault::Kind::kShortRead) {
      if (fault->offset < out->size()) {
        out->resize(static_cast<size_t>(fault->offset));
      }
    } else if (fault->kind == Fault::Kind::kFlipBit) {
      const size_t byte = static_cast<size_t>(fault->bit_index / 8);
      if (byte < out->size()) {
        (*out)[byte] = static_cast<char>(
            (*out)[byte] ^ static_cast<char>(1u << (fault->bit_index % 8)));
      }
    }
  }
  return Status::Ok();
}

}  // namespace wym::io
