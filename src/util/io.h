#ifndef WYM_UTIL_IO_H_
#define WYM_UTIL_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Hardened file I/O for every durable artifact (model files, CSV
/// catalogs), plus the deterministic fault-injection seam that the
/// robustness suite drives (see DESIGN.md "Failure model & file-format
/// v2").
///
/// Two guarantees:
///   - Writes are atomic: `WriteFileAtomic` stages the bytes in a
///     sibling temp file, flushes and fsyncs it, then `rename`s over the
///     target. A crashed, ENOSPC'd or fault-injected save can never
///     leave a half-written file under the target path — the previous
///     version stays intact and loadable.
///   - Failures are `Status`, never aborts: callers get IoError with the
///     path and the failing step.
///
/// Fault injection: tests install a `FaultInjector` (via
/// `ScopedFaultInjector`) that the read/write paths consult. Faults are
/// scripted and deterministic — fail the write after byte N, simulate
/// ENOSPC, crash before rename, truncate or bit-flip what a read
/// returns, deliver a short read — so every failure path in the
/// persistence stack is exercisable from a unit test without root,
/// custom filesystems, or flaky timing.

namespace wym::io {

/// One scripted fault. Offsets are byte offsets into the file content.
struct Fault {
  enum class Kind {
    /// Write path: the write fails with a generic I/O error once
    /// `offset` bytes have been written to the temp file. The temp file
    /// is cleaned up; the target is untouched.
    kFailWriteAt,
    /// Write path: like kFailWriteAt but reported as ENOSPC ("no space
    /// left on device") — the classic full-disk save.
    kEnospc,
    /// Write path: the process "crashes" after `offset` bytes — the
    /// partial temp file is left on disk and no rename happens. Models
    /// the kill-9-mid-save scenario; the target must stay intact.
    kCrashAt,
    /// Read path: the read stops after `offset` bytes (torn/truncated
    /// file as seen by the reader).
    kShortRead,
    /// Read path: bit `bit_index` (0 = LSB of byte 0) of the returned
    /// buffer is flipped — silent media corruption.
    kFlipBit,
    /// Socket read path: the next recv delivers at most `offset` bytes
    /// (a partial read; the caller's assembly loop must keep going).
    kSockShortRead,
    /// Socket write path: the next send accepts at most `offset` bytes
    /// (a partial write; the caller must continue from the remainder).
    kSockShortWrite,
    /// Socket read or write path: the next operation is interrupted as
    /// if by a signal (EINTR) and must be retried transparently.
    kSockEintr,
    /// Socket read or write path: the peer vanishes mid-message — the
    /// next read sees EOF, the next write sees a reset connection.
    kSockDisconnect,
  };

  Kind kind = Kind::kFailWriteAt;
  /// Byte offset (write faults, kShortRead).
  uint64_t offset = 0;
  /// Absolute bit index (kFlipBit only).
  uint64_t bit_index = 0;
};

/// A deterministic, scriptable fault plan. Each fault fires on the
/// matching operation (write faults on the next write, read faults on
/// the next read) and is then spent; operations beyond the script run
/// clean. The injector records what fired for test assertions.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Appends a fault to the script (fluent, so tests read as a plan).
  FaultInjector& FailWriteAt(uint64_t offset) {
    return Add({Fault::Kind::kFailWriteAt, offset, 0});
  }
  FaultInjector& Enospc(uint64_t offset) {
    return Add({Fault::Kind::kEnospc, offset, 0});
  }
  FaultInjector& CrashAt(uint64_t offset) {
    return Add({Fault::Kind::kCrashAt, offset, 0});
  }
  FaultInjector& ShortRead(uint64_t offset) {
    return Add({Fault::Kind::kShortRead, offset, 0});
  }
  FaultInjector& FlipBit(uint64_t bit_index) {
    return Add({Fault::Kind::kFlipBit, 0, bit_index});
  }
  FaultInjector& SockShortRead(uint64_t max_bytes) {
    return Add({Fault::Kind::kSockShortRead, max_bytes, 0});
  }
  FaultInjector& SockShortWrite(uint64_t max_bytes) {
    return Add({Fault::Kind::kSockShortWrite, max_bytes, 0});
  }
  FaultInjector& SockEintr() {
    return Add({Fault::Kind::kSockEintr, 0, 0});
  }
  FaultInjector& SockDisconnect() {
    return Add({Fault::Kind::kSockDisconnect, 0, 0});
  }
  FaultInjector& Add(Fault fault) {
    script_.push_back(fault);
    return *this;
  }

  /// Number of faults that have fired so far.
  int faults_fired() const { return faults_fired_; }

  /// --- hooks called by the io functions (not by user code) ---

  /// Next unfired file-write-path fault, or nullptr. `Spend` marks it
  /// fired. Each hook matches only its own operation class, so a
  /// script interleaving file and socket faults fires them in order on
  /// the matching operations.
  const Fault* NextWriteFault() const;
  /// Next unfired file-read-path fault, or nullptr.
  const Fault* NextReadFault() const;
  /// Next unfired socket-read-path fault (short read / EINTR /
  /// disconnect), or nullptr.
  const Fault* NextSockReadFault() const;
  /// Next unfired socket-write-path fault (short write / EINTR /
  /// disconnect), or nullptr.
  const Fault* NextSockWriteFault() const;
  void Spend(const Fault* fault);

 private:
  std::vector<Fault> script_;
  size_t next_ = 0;
  int faults_fired_ = 0;
};

/// Installs `injector` as the active fault plan for the current thread
/// for the lifetime of the scope; nesting restores the previous one.
/// The seam sits under WriteFileAtomic / ReadFileToString, which is
/// where the Serializer/Deserializer byte streams and the CSV reader
/// meet the filesystem.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

/// The injector installed for this thread (nullptr = run clean).
FaultInjector* ActiveFaultInjector();

/// Atomically replaces `path` with `data`: temp file in the same
/// directory -> write -> flush -> fsync -> rename(temp, path). On any
/// failure the target is left exactly as it was. Consults the active
/// FaultInjector.
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     const std::string& data);

/// Reads a whole file into `out` (binary, NUL-safe). Consults the
/// active FaultInjector (short reads / bit flips mutate `out`).
[[nodiscard]] Status ReadFileToString(const std::string& path,
                                      std::string* out);

}  // namespace wym::io

#endif  // WYM_UTIL_IO_H_
