#ifndef WYM_UTIL_TABLE_H_
#define WYM_UTIL_TABLE_H_

#include <string>
#include <vector>

/// \file
/// ASCII table printing for the benchmark harnesses: every bench binary
/// regenerates one of the paper's tables/figures as aligned text rows.

namespace wym {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: appends a row where trailing cells are doubles
  /// formatted with `precision` digits after the leading label cells.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders the table (header, rule, rows) into a string.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wym

#endif  // WYM_UTIL_TABLE_H_
