#include "util/crc32c.h"

#include <array>

namespace wym::crc32c {

namespace {

/// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string ToHex(uint32_t crc) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool FromHex(const std::string& hex, uint32_t* crc) {
  if (hex.size() != 8) return false;
  uint32_t value = 0;
  for (char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *crc = value;
  return true;
}

}  // namespace wym::crc32c
