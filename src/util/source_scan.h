#ifndef WYM_UTIL_SOURCE_SCAN_H_
#define WYM_UTIL_SOURCE_SCAN_H_

#include <string>
#include <vector>

/// \file
/// `wym-lint`: an in-repo static analyzer for the project's determinism,
/// safety and hygiene rules (see DESIGN.md "Correctness tooling").
///
/// The scanner is deliberately lexical, not semantic: a lightweight C++
/// lexer classifies every character of a translation unit as code,
/// comment, string-literal body or preprocessor text, and each check
/// then pattern-matches only the regions it cares about. That makes the
/// analyzer immune to the classic grep failure modes (banned patterns
/// quoted in strings, commented-out code, raw-string test fixtures)
/// while staying dependency-free — the container has no clang-tidy, so
/// the guarantee has to be enforceable with what the repo itself builds.
///
/// Checks are named and individually suppressible at the line level
/// with a marker comment (the example placeholder names no real check,
/// so it sits under its own suppression — the mechanism demonstrating
/// itself):
///
///   // wym-lint: allow(lint-suppression): placeholder syntax example
///   legitimate_call();  // wym-lint: allow(check-name): why it is fine
///
/// A suppression covers its own line and the following line (so a
/// standalone comment can precede the code it excuses). The reason
/// string is mandatory; an absent reason or an unknown check name is
/// itself reported under `lint-suppression`, and a suppression that
/// matches no finding is reported under `stale-suppression` — the
/// drivers map that to its own exit code (6) so a stale marker can
/// never silently outlive the code it excused.

namespace wym::lint {

/// One source line split into lexical views. All views preserve column
/// positions (masked characters become spaces) so findings can point at
/// real columns if ever needed.
struct LexedLine {
  /// The line with comments and string-literal bodies blanked out.
  /// Preprocessor lines keep their string bodies (include paths matter
  /// to checks) but still lose comments.
  std::string code;
  /// Comment text only (everything else blanked).
  std::string comment;
  /// True when the line belongs to a preprocessor directive (including
  /// backslash-continuation lines).
  bool preprocessor = false;
};

/// Lexes a whole file into per-line views. Handles `//` and `/* */`
/// comments, string and character literals with escapes, raw strings
/// (`R"delim(...)delim"`), digit separators and preprocessor
/// continuations.
std::vector<LexedLine> LexLines(const std::string& text);

/// Finds `needle` in `hay` with identifier boundaries on both sides
/// (the characters adjacent to the match, if any, are not [A-Za-z0-9_]).
/// Returns std::string::npos when absent. Exported for the cross-TU
/// analyzers in src/analysis, which pattern-match the same code views.
size_t FindWord(const std::string& hay, const std::string& needle,
                size_t from = 0);

/// True when `needle` occurs as a whole identifier in `hay`.
bool HasWord(const std::string& hay, const std::string& needle);

/// True when `name` occurs as an identifier immediately followed
/// (modulo whitespace) by an opening parenthesis — a call or
/// function-style cast.
bool HasCall(const std::string& hay, const std::string& name);

/// One rule violation.
struct Finding {
  std::string path;   ///< Repo-relative path, '/'-separated.
  int line = 0;       ///< 1-based.
  std::string check;  ///< Check name, e.g. "no-rand".
  std::string message;
};

/// Renders "path:line: [check] message" — the contract the ctest gate
/// and the acceptance tests grep for.
std::string FormatFinding(const Finding& finding);

/// One well-formed suppression marker, independent of whether anything
/// ever matches it. The cross-TU passes (`wym_lint graph` / `taint`)
/// parse markers through this so line-level suppression means the same
/// thing in every pass.
struct SuppressionMarker {
  int line = 0;  ///< 1-based line the marker comment sits on.
  std::string check;
  std::string reason;
};

/// Parses every well-formed allow-marker comment in `lines`.
/// Malformed markers (bad syntax, unknown check, missing
/// reason) become `lint-suppression` findings in `*malformed` when it
/// is non-null; they never appear in the returned list.
std::vector<SuppressionMarker> CollectSuppressionMarkers(
    const std::string& path, const std::vector<LexedLine>& lines,
    std::vector<Finding>* malformed);

/// Scan statistics, mostly for the driver's summary line.
struct ScanStats {
  int suppressions_honored = 0;
};

/// Runs every check against one file. `path` must be the repo-relative
/// path ('/'-separated) — several checks scope by directory. Returns the
/// unsuppressed findings in line order.
std::vector<Finding> ScanSource(const std::string& path,
                                const std::string& text,
                                ScanStats* stats = nullptr);

/// All check names the scanner knows, for --list-checks and the
/// suppression validator. Includes the cross-TU analysis checks
/// (`layer-order`, `include-cycle`, `taint-flow`) so their markers
/// validate, even though `ScanSource` itself never emits them.
const std::vector<std::string>& AllCheckNames();

/// True when `name` names a known check.
bool IsKnownCheck(const std::string& name);

/// True when `name` is one of the token-level checks `ScanSource` owns.
/// Markers naming other (analysis-pass) checks are parsed and validated
/// by `ScanSource` but their use/stale accounting belongs to the pass
/// that emits the check — `wym_lint graph` and `wym_lint taint` each
/// track their own.
bool IsTokenCheck(const std::string& name);

}  // namespace wym::lint

#endif  // WYM_UTIL_SOURCE_SCAN_H_
