#include "util/thread_pool.h"

#include <cstdlib>
#include <utility>

// The pool publishes queue/steal counters and spans itself so every
// parallel section is traced; obs sits below util at link time.
// wym-lint: allow(layer-order): sanctioned util->obs edge (see DESIGN.md)
#include "obs/metrics.h"
// wym-lint: allow(layer-order): sanctioned util->obs edge (see DESIGN.md)
#include "obs/trace.h"

namespace wym::util {

namespace {
thread_local bool t_in_worker = false;

// Pool metrics, resolved once. Mutators no-op when WYM_METRICS is off,
// so the inline (size<=1) path pays one branch per Submit.
obs::Counter& TasksSubmitted() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("pool.tasks_submitted");
  return counter;
}
obs::Counter& TasksInline() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("pool.tasks_inline");
  return counter;
}
obs::Gauge& QueueDepth() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("pool.queue_depth");
  return gauge;
}
obs::Histogram& TaskWaitNs() {
  static obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("pool.task_wait_ns");
  return histogram;
}
obs::Histogram& TaskRunNs() {
  static obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("pool.task_run_ns");
  return histogram;
}
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    TasksInline().Add(1);
    task();
    return;
  }
  TasksSubmitted().Add(1);
  const std::uint64_t enqueue_ns =
      obs::MetricsEnabled() ? obs::NowNanos() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(task), enqueue_ns});
  }
  QueueDepth().Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepth().Add(-1);
    const bool metrics = obs::MetricsEnabled();
    const std::uint64_t start_ns = metrics ? obs::NowNanos() : 0;
    if (metrics && task.enqueue_ns != 0 && start_ns >= task.enqueue_ns) {
      TaskWaitNs().Record(start_ns - task.enqueue_ns);
    }
    {
      obs::SpanScope span("pool.task");
      task.fn();
    }
    if (metrics) TaskRunNs().Record(obs::NowNanos() - start_ns);
  }
}

bool ThreadPool::InWorker() { return t_in_worker; }

size_t ThreadPool::DefaultThreadCount() {
  if (const char* raw = std::getenv("WYM_THREADS")) {
    const long parsed = std::strtol(raw, nullptr, 10);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

}  // namespace wym::util
