#include "util/thread_pool.h"

#include <cstdlib>

namespace wym::util {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InWorker() { return t_in_worker; }

size_t ThreadPool::DefaultThreadCount() {
  if (const char* raw = std::getenv("WYM_THREADS")) {
    const long parsed = std::strtol(raw, nullptr, 10);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

}  // namespace wym::util
