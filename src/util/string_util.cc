#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace wym::strings {

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsNumeric(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsAlphanumericCode(std::string_view text) {
  if (text.size() < 3) return false;
  bool has_alpha = false;
  bool has_digit = false;
  for (char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) {
      has_alpha = true;
    } else if (std::isdigit(u)) {
      has_digit = true;
    } else {
      return false;
    }
  }
  return has_alpha && has_digit;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace wym::strings
