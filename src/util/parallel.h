#ifndef WYM_UTIL_PARALLEL_H_
#define WYM_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "util/thread_pool.h"

/// \file
/// Deterministic data-parallel loop on top of ThreadPool.
///
/// The determinism contract: the chunk structure of ParallelFor depends
/// ONLY on (n, grain) — never on the pool size or scheduling — so a
/// caller that keeps per-chunk accumulators and reduces them in chunk
/// order computes a bit-identical result at every thread count,
/// including the inline sequential path. See DESIGN.md "Threading
/// model".

namespace wym::util {

/// Number of chunks ParallelFor(n, grain, ...) will create.
inline size_t NumChunks(size_t n, size_t grain) {
  grain = std::max<size_t>(grain, 1);
  return (n + grain - 1) / grain;
}

/// Runs fn(begin, end, chunk) over fixed chunks of [0, n):
/// chunk c covers [c*grain, min(n, (c+1)*grain)).
///
/// Chunks run on `pool` (the global pool when nullptr). The call runs
/// inline, in chunk order, when there is a single chunk, the pool has
/// no workers, or the caller is itself a pool worker (nested loops
/// never deadlock).
///
/// Exceptions: on the inline path the first throwing chunk propagates
/// immediately; on the parallel path every chunk still runs and the
/// exception of the lowest-index failing chunk is rethrown — in both
/// cases the caller observes the lowest-index failure.
inline void ParallelFor(
    size_t n, size_t grain,
    const std::function<void(size_t begin, size_t end, size_t chunk)>& fn,
    ThreadPool* pool = nullptr) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  const size_t chunks = NumChunks(n, grain);
  ThreadPool& executor = pool != nullptr ? *pool : ThreadPool::Global();

  if (chunks == 1 || executor.size() <= 1 || ThreadPool::InWorker()) {
    for (size_t c = 0; c < chunks; ++c) {
      fn(c * grain, std::min(n, (c + 1) * grain), c);
    }
    return;
  }

  std::vector<std::exception_ptr> errors(chunks);
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = chunks;
  for (size_t c = 0; c < chunks; ++c) {
    executor.Submit([&, c] {
      try {
        fn(c * grain, std::min(n, (c + 1) * grain), c);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      // Notify while holding the lock: the waiter cannot observe
      // pending == 0 and destroy cv/mu (by returning) until this task
      // has released the mutex, i.e. fully left notify_one.
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  for (size_t c = 0; c < chunks; ++c) {
    if (errors[c]) std::rethrow_exception(errors[c]);
  }
}

}  // namespace wym::util

#endif  // WYM_UTIL_PARALLEL_H_
