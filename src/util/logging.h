#ifndef WYM_UTIL_LOGGING_H_
#define WYM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// \file
/// Lightweight CHECK/LOG facilities in the style of glog.
///
/// Library code never throws: invariant violations (programming errors)
/// abort through `WYM_CHECK`, recoverable failures (I/O, parsing) flow
/// through `wym::Status` (see util/status.h).

namespace wym::internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Used as the right-hand side of the WYM_CHECK macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "WYM_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  /// Appends extra context: `WYM_CHECK(x) << "while doing y";`
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace wym::internal

/// Aborts with a diagnostic when `condition` is false.
#define WYM_CHECK(condition)                                        \
  if (!(condition))                                                 \
  ::wym::internal::CheckFailure(__FILE__, __LINE__, #condition)

/// Binary comparison CHECKs; evaluate operands once.
#define WYM_CHECK_OP(lhs, rhs, op)                                       \
  if (!((lhs)op(rhs)))                                                   \
  ::wym::internal::CheckFailure(__FILE__, __LINE__, #lhs " " #op " " #rhs)

#define WYM_CHECK_EQ(lhs, rhs) WYM_CHECK_OP(lhs, rhs, ==)
#define WYM_CHECK_NE(lhs, rhs) WYM_CHECK_OP(lhs, rhs, !=)
#define WYM_CHECK_LT(lhs, rhs) WYM_CHECK_OP(lhs, rhs, <)
#define WYM_CHECK_LE(lhs, rhs) WYM_CHECK_OP(lhs, rhs, <=)
#define WYM_CHECK_GT(lhs, rhs) WYM_CHECK_OP(lhs, rhs, >)
#define WYM_CHECK_GE(lhs, rhs) WYM_CHECK_OP(lhs, rhs, >=)

#endif  // WYM_UTIL_LOGGING_H_
