#ifndef WYM_UTIL_LOGGING_H_
#define WYM_UTIL_LOGGING_H_

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// \file
/// Lightweight CHECK/LOG facilities in the style of glog.
///
/// Library code never throws: invariant violations (programming errors)
/// abort through `WYM_CHECK`, recoverable failures (I/O, parsing) flow
/// through `wym::Status` (see util/status.h).
///
/// Two tiers:
///   - `WYM_CHECK*`   — always on; shape/contract checks on cold paths.
///   - `WYM_DCHECK*`  — the debug invariant tier; compiled only under
///     `-DWYM_DEBUG_CHECKS=ON` (per-element bounds checks, kernel
///     dimension checks, NaN/Inf guards at stage boundaries). In release
///     builds the condition is parsed but never evaluated, so it costs
///     nothing on hot paths and cannot bit-rot.

namespace wym::internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Used as the right-hand side of the WYM_CHECK macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "WYM_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  /// Appends extra context: `WYM_CHECK(x) << "while doing y";`
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// True when every element of `values[0..n)` is finite (no NaN/Inf).
/// Backs WYM_DCHECK_FINITE — the encoder/matcher stage-boundary guards.
template <typename T>
bool RangeIsFinite(const T* values, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(values[i]))) return false;
  }
  return true;
}

}  // namespace wym::internal

/// Aborts with a diagnostic when `condition` is false.
#define WYM_CHECK(condition)                                        \
  if (!(condition))                                                 \
  ::wym::internal::CheckFailure(__FILE__, __LINE__, #condition)

/// Binary comparison CHECKs; evaluate operands once.
#define WYM_CHECK_OP(lhs, rhs, op)                                       \
  if (!((lhs)op(rhs)))                                                   \
  ::wym::internal::CheckFailure(__FILE__, __LINE__, #lhs " " #op " " #rhs)

#define WYM_CHECK_EQ(lhs, rhs) WYM_CHECK_OP(lhs, rhs, ==)
#define WYM_CHECK_NE(lhs, rhs) WYM_CHECK_OP(lhs, rhs, !=)
#define WYM_CHECK_LT(lhs, rhs) WYM_CHECK_OP(lhs, rhs, <)
#define WYM_CHECK_LE(lhs, rhs) WYM_CHECK_OP(lhs, rhs, <=)
#define WYM_CHECK_GT(lhs, rhs) WYM_CHECK_OP(lhs, rhs, >)
#define WYM_CHECK_GE(lhs, rhs) WYM_CHECK_OP(lhs, rhs, >=)

/// Debug invariant tier (see file comment). In release the `true || ...`
/// short-circuit keeps the operands compiled — names stay used, typos
/// still break the build — but never evaluated, and the dead branch
/// folds away entirely.
#ifdef WYM_DEBUG_CHECKS
#define WYM_DCHECK(condition) WYM_CHECK(condition)
#define WYM_DCHECK_OP(lhs, rhs, op) WYM_CHECK_OP(lhs, rhs, op)
#else
#define WYM_DCHECK(condition) WYM_CHECK(true || (condition))
#define WYM_DCHECK_OP(lhs, rhs, op) WYM_CHECK(true || ((lhs)op(rhs)))
#endif

#define WYM_DCHECK_EQ(lhs, rhs) WYM_DCHECK_OP(lhs, rhs, ==)
#define WYM_DCHECK_NE(lhs, rhs) WYM_DCHECK_OP(lhs, rhs, !=)
#define WYM_DCHECK_LT(lhs, rhs) WYM_DCHECK_OP(lhs, rhs, <)
#define WYM_DCHECK_LE(lhs, rhs) WYM_DCHECK_OP(lhs, rhs, <=)
#define WYM_DCHECK_GT(lhs, rhs) WYM_DCHECK_OP(lhs, rhs, >)
#define WYM_DCHECK_GE(lhs, rhs) WYM_DCHECK_OP(lhs, rhs, >=)

/// NaN/Inf guard over a contiguous range; used at the encoder and
/// matcher stage boundaries so a poisoned value aborts where it is
/// produced, not three subsystems downstream.
#define WYM_DCHECK_FINITE(ptr, n) \
  WYM_DCHECK(::wym::internal::RangeIsFinite((ptr), (n)))

#endif  // WYM_UTIL_LOGGING_H_
