#ifndef WYM_UTIL_RANDOM_H_
#define WYM_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

/// \file
/// Seeded randomness. Every stochastic component in the library takes an
/// explicit seed (or an Rng) so that full pipeline runs are bit-deterministic.

namespace wym {

/// A seedable pseudo-random generator wrapping std::mt19937_64 with the
/// handful of draws the library needs. Copyable (copies the stream state).
class Rng {
 public:
  /// Constructs a generator from an explicit seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    WYM_CHECK_GT(n, 0u);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    WYM_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to (mean, stddev).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[Index(i + 1)]);
    }
  }

  /// Picks one element of a non-empty vector uniformly.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    WYM_CHECK(!items.empty());
    return items[Index(items.size())];
  }

  /// Derives an independent child seed; use to hand sub-components their
  /// own streams without coupling their draw sequences.
  uint64_t Fork() {
    return std::uniform_int_distribution<uint64_t>()(engine_);
  }

  /// Access to the underlying engine for std::distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace wym

#endif  // WYM_UTIL_RANDOM_H_
