#include "util/source_scan.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <sstream>

#include "util/string_util.h"

namespace wym::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

}  // namespace

size_t FindWord(const std::string& hay, const std::string& needle,
                size_t from) {
  while (from <= hay.size()) {
    const size_t p = hay.find(needle, from);
    if (p == std::string::npos) return std::string::npos;
    const size_t e = p + needle.size();
    const bool left_ok = p == 0 || !IsIdentChar(hay[p - 1]);
    const bool right_ok = e >= hay.size() || !IsIdentChar(hay[e]);
    if (left_ok && right_ok) return p;
    from = p + 1;
  }
  return std::string::npos;
}

bool HasWord(const std::string& hay, const std::string& needle) {
  return FindWord(hay, needle) != std::string::npos;
}

bool HasCall(const std::string& hay, const std::string& name) {
  size_t from = 0;
  size_t p;
  while ((p = FindWord(hay, name, from)) != std::string::npos) {
    size_t e = p + name.size();
    while (e < hay.size() && IsSpace(hay[e])) ++e;
    if (e < hay.size() && hay[e] == '(') return true;
    from = p + 1;
  }
  return false;
}

std::vector<LexedLine> LexLines(const std::string& text) {
  enum : uint8_t { kCode = 0, kComment = 1, kStringBody = 2, kStringDelim = 3 };
  enum class State { kPlain, kLineComment, kBlockComment, kString, kChar };

  const size_t n = text.size();
  std::vector<uint8_t> cls(n, kCode);
  State state = State::kPlain;

  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    switch (state) {
      case State::kPlain: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          cls[i] = cls[i + 1] = kComment;
          ++i;
          state = State::kLineComment;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          cls[i] = cls[i + 1] = kComment;
          ++i;
          state = State::kBlockComment;
        } else if (c == '"') {
          // Raw string? The quote must be preceded by an encoding prefix
          // ending in R (R, LR, uR, UR, u8R).
          size_t b = i;
          while (b > 0 && IsIdentChar(text[b - 1])) --b;
          const std::string prefix = text.substr(b, i - b);
          const bool raw = prefix == "R" || prefix == "LR" || prefix == "uR" ||
                           prefix == "UR" || prefix == "u8R";
          if (raw) {
            // R"delim( ... )delim"
            size_t j = i + 1;
            std::string delim;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              delim += text[j];
              ++j;
            }
            const std::string closer = ")" + delim + "\"";
            for (size_t k = i; k <= j && k < n; ++k) cls[k] = kStringDelim;
            const size_t end = text.find(closer, j + 1);
            const size_t stop = end == std::string::npos ? n : end;
            for (size_t k = j + 1; k < stop; ++k) cls[k] = kStringBody;
            if (end != std::string::npos) {
              for (size_t k = end; k < end + closer.size() && k < n; ++k) {
                cls[k] = kStringDelim;
              }
              i = end + closer.size() - 1;
            } else {
              i = n - 1;
            }
          } else {
            cls[i] = kStringDelim;
            state = State::kString;
          }
        } else if (c == '\'') {
          // A quote directly after an identifier/number character is a
          // C++14 digit separator (1'000'000), not a character literal.
          if (i > 0 && IsIdentChar(text[i - 1])) {
            cls[i] = kCode;
          } else {
            cls[i] = kStringDelim;
            state = State::kChar;
          }
        }
        break;
      }
      case State::kLineComment:
        if (c == '\n') {
          state = State::kPlain;
        } else {
          cls[i] = kComment;
        }
        break;
      case State::kBlockComment:
        cls[i] = kComment;
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          cls[i + 1] = kComment;
          ++i;
          state = State::kPlain;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          cls[i] = cls[i + 1] = kStringBody;
          ++i;
        } else if (c == '"') {
          cls[i] = kStringDelim;
          state = State::kPlain;
        } else if (c == '\n') {
          state = State::kPlain;  // Unterminated literal; resynchronize.
        } else {
          cls[i] = kStringBody;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          cls[i] = cls[i + 1] = kStringBody;
          ++i;
        } else if (c == '\'') {
          cls[i] = kStringDelim;
          state = State::kPlain;
        } else if (c == '\n') {
          state = State::kPlain;
        } else {
          cls[i] = kStringBody;
        }
        break;
    }
  }

  // Split into lines and build the per-line views.
  std::vector<LexedLine> lines;
  size_t start = 0;
  bool continued_preproc = false;
  while (start <= n) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = n;
    const size_t len = end - start;

    // Preprocessor detection: first non-space *code* character is '#',
    // or the previous line was a directive ending in a backslash.
    bool preproc = continued_preproc;
    if (!preproc) {
      for (size_t k = start; k < end; ++k) {
        if (cls[k] != kCode) continue;
        if (IsSpace(text[k])) continue;
        preproc = text[k] == '#';
        break;
      }
    }
    continued_preproc = preproc && len > 0 && text[end - 1] == '\\';

    LexedLine out;
    out.preprocessor = preproc;
    out.code.assign(len, ' ');
    out.comment.assign(len, ' ');
    for (size_t k = start; k < end; ++k) {
      const char c = text[k];
      switch (cls[k]) {
        case kCode:
        case kStringDelim:
          out.code[k - start] = c;
          break;
        case kStringBody:
          // Include paths matter to the preprocessor checks; everywhere
          // else, literal bodies are masked so quoted code can't trip a
          // pattern.
          if (preproc) out.code[k - start] = c;
          break;
        case kComment:
          out.comment[k - start] = c;
          break;
      }
    }
    lines.push_back(std::move(out));
    if (end == n) break;
    start = end + 1;
  }
  // text.find on an empty trailing segment: drop the phantom line a
  // trailing newline would otherwise produce only when it is truly empty.
  if (!lines.empty() && !text.empty() && text.back() == '\n') {
    lines.pop_back();
  }
  return lines;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream os;
  os << finding.path << ":" << finding.line << ": [" << finding.check << "] "
     << finding.message;
  return os.str();
}

const std::vector<std::string>& AllCheckNames() {
  static const std::vector<std::string> kNames = {
      "no-rand",
      "no-raw-clock",
      "unordered-iteration",
      "no-parallel-reduce",
      "kernel-bypass-accumulation",
      "no-raw-new-delete",
      "memcpy-nontrivial",
      "header-guard",
      "no-using-namespace-header",
      "simd-outside-kernels",
      "no-cout",
      "todo-issue",
      "unchecked-status",
      "lint-suppression",
      "stale-suppression",
      // Cross-TU checks emitted by `wym_lint graph` / `wym_lint taint`
      // (src/analysis), registered here so their suppression markers
      // validate under every pass.
      "layer-order",
      "include-cycle",
      "taint-flow",
  };
  return kNames;
}

bool IsKnownCheck(const std::string& name) {
  const auto& names = AllCheckNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

bool IsTokenCheck(const std::string& name) {
  return IsKnownCheck(name) && name != "layer-order" &&
         name != "include-cycle" && name != "taint-flow";
}

namespace {

/// Everything a check needs about one file.
struct FileCtx {
  const std::string& path;
  const std::vector<LexedLine>& lines;

  bool InDir(const char* prefix) const {
    return strings::StartsWith(path, prefix);
  }
  bool IsHeader() const { return strings::EndsWith(path, ".h"); }
  std::string Basename() const {
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }
};

void Emit(const FileCtx& ctx, size_t line_index, const char* check,
          std::string message, std::vector<Finding>* out) {
  out->push_back(Finding{ctx.path, static_cast<int>(line_index + 1), check,
                         std::move(message)});
}

// --------------------------------------------------------------------------
// Determinism checks
// --------------------------------------------------------------------------

/// no-rand: unseeded randomness leaks nondeterminism into models and
/// explanations. util/ owns the sanctioned wrapper (wym::Rng) and
/// bench/ legitimately randomizes workloads. Clock reads, previously
/// folded into this check, now live in no-raw-clock below.
void CheckNoRand(const FileCtx& ctx, std::vector<Finding>* out) {
  if (ctx.InDir("src/util/") || ctx.InDir("bench/")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const char* what = nullptr;
    if (HasWord(code, "std::rand") || HasCall(code, "rand")) {
      what = "rand()";
    } else if (HasCall(code, "srand")) {
      what = "srand()";
    } else if (HasWord(code, "random_device")) {
      what = "std::random_device";
    } else if (HasCall(code, "time")) {
      what = "time()";
    }
    if (what != nullptr) {
      Emit(ctx, i, "no-rand",
           std::string(what) +
               " is nondeterministic; draw from a seeded wym::Rng "
               "(util/ and bench/ are exempt)",
           out);
    }
  }
}

/// no-raw-clock: the tree has exactly one time source —
/// util::Stopwatch, which obs::NowNanos() routes through. A direct
/// std::chrono clock call anywhere else (including bench/ and tests/)
/// fragments timing across clocks and bypasses the span/histogram
/// plumbing; only src/util/ (the wrapper's home) is exempt.
void CheckNoRawClock(const FileCtx& ctx, std::vector<Finding>* out) {
  if (ctx.InDir("src/util/")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const char* what = nullptr;
    for (const char* clock :
         {"steady_clock", "system_clock", "high_resolution_clock"}) {
      if (HasWord(code, clock)) {
        what = "a std::chrono clock type";
        break;
      }
    }
    if (what == nullptr) {
      size_t p = code.find("::now");
      while (p != std::string::npos) {
        size_t e = p + 5;
        while (e < code.size() && IsSpace(code[e])) ++e;
        if (e < code.size() && code[e] == '(') {
          what = "a clock ::now() call";
          break;
        }
        p = code.find("::now", p + 1);
      }
    }
    if (what != nullptr) {
      Emit(ctx, i, "no-raw-clock",
           std::string(what) +
               " outside src/util/; read time through util::Stopwatch "
               "or obs::NowNanos() so the tree keeps one time source",
           out);
    }
  }
}

/// unordered-iteration: iterating a hash container in a TU that writes
/// model files or reports — or, in src/blocking/, emits CandidatePair
/// lists — can leak hash-table ordering into persisted bytes or
/// candidate order, breaking the bit-identical-output guarantee. Sort
/// the keys first, or suppress with the reason the order provably
/// cannot escape.
void CheckUnorderedIteration(const FileCtx& ctx, std::vector<Finding>* out) {
  // Scope: only TUs that can persist bytes (serializers, file writers)
  // or emit candidate lists (the blocking tier promises byte-identical
  // candidate output at every thread count and SIMD level).
  const bool blocking_tu =
      strings::StartsWith(ctx.path, "src/blocking/") ||
      ctx.path.find("/src/blocking/") != std::string::npos;
  bool writes_output = false;
  for (const LexedLine& line : ctx.lines) {
    if (HasWord(line.code, "Serializer") || HasWord(line.code, "ofstream") ||
        HasCall(line.code, "Save") ||
        (blocking_tu && HasWord(line.code, "CandidatePair"))) {
      writes_output = true;
      break;
    }
  }
  if (!writes_output) return;

  // Names declared with an unordered container type in this file.
  std::vector<std::string> names;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    for (const char* container : {"unordered_map", "unordered_set"}) {
      size_t p = FindWord(code, container);
      while (p != std::string::npos) {
        // Skip the template argument list (joining a continuation line if
        // the declaration wraps), then read the declared identifier.
        std::string decl = code.substr(p);
        if (i + 1 < ctx.lines.size()) decl += " " + ctx.lines[i + 1].code;
        size_t q = decl.find('<');
        if (q != std::string::npos) {
          int depth = 0;
          for (; q < decl.size(); ++q) {
            if (decl[q] == '<') ++depth;
            if (decl[q] == '>' && --depth == 0) break;
          }
          ++q;
          while (q < decl.size() && (IsSpace(decl[q]) || decl[q] == '&')) ++q;
          std::string name;
          while (q < decl.size() && IsIdentChar(decl[q])) name += decl[q++];
          if (!name.empty()) names.push_back(name);
        }
        p = FindWord(code, container, p + 1);
      }
    }
  }

  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const size_t f = FindWord(code, "for");
    if (f == std::string::npos) continue;
    // Range expression: the text after a non-'::' colon inside the for().
    size_t colon = std::string::npos;
    for (size_t k = f; k < code.size(); ++k) {
      if (code[k] != ':') continue;
      if (k > 0 && code[k - 1] == ':') continue;
      if (k + 1 < code.size() && code[k + 1] == ':') continue;
      colon = k;
      break;
    }
    if (colon == std::string::npos) continue;
    const std::string range = code.substr(colon + 1);
    const char* hit = nullptr;
    if (HasWord(range, "unordered_map") || HasWord(range, "unordered_set")) {
      hit = "an unordered container";
    } else {
      for (const std::string& name : names) {
        if (HasWord(range, name)) {
          hit = "a container declared unordered in this file";
          break;
        }
      }
    }
    if (hit != nullptr) {
      Emit(ctx, i, "unordered-iteration",
           std::string("range-for over ") + hit +
               " in a TU that writes model files or reports; hash order "
               "must not reach persisted output — iterate sorted keys",
           out);
    }
  }
}

/// no-parallel-reduce: std::reduce and std::execution reassociate
/// floating-point sums at the library's whim; every reduction must go
/// through la::kernels' pinned partial-sum order or util::ParallelFor's
/// ordered merges.
void CheckNoParallelReduce(const FileCtx& ctx, std::vector<Finding>* out) {
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    if (HasWord(code, "std::reduce") || HasWord(code, "std::execution")) {
      Emit(ctx, i, "no-parallel-reduce",
           "std::reduce/std::execution reassociate float sums; use "
           "la::kernels or util::ParallelFor with an ordered merge",
           out);
    }
  }
}

/// kernel-bypass-accumulation: a hand-rolled `acc += a[i] * b[i]` dot
/// loop in the math subsystems compiles to whatever reduction order the
/// optimizer picks and silently diverges from la::kernels' pinned
/// summation tree. Route through kernels::Dot/Axpy (or DotI8 for int8
/// code paths — src/core and src/blocking consume the quantized kernels
/// and are covered for the same reason).
void CheckKernelBypassAccumulation(const FileCtx& ctx,
                                   std::vector<Finding>* out) {
  if (!ctx.InDir("src/la/") && !ctx.InDir("src/ml/") &&
      !ctx.InDir("src/embedding/") && !ctx.InDir("src/core/") &&
      !ctx.InDir("src/blocking/")) {
    return;
  }
  if (strings::StartsWith(ctx.Basename(), "kernels")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const size_t p = code.find("+=");
    if (p == std::string::npos) continue;
    // Accumulator must be a plain scalar identifier: an indexed or
    // call-result lvalue means element-wise accumulation, which is
    // order-independent across elements.
    size_t b = p;
    while (b > 0 && IsSpace(code[b - 1])) --b;
    if (b == 0 || !IsIdentChar(code[b - 1])) continue;
    // Right-hand side: needs a product of two subscripts with the same
    // index expression to look like a dot-product step.
    std::string rhs = code.substr(p + 2);
    const size_t semi = rhs.find(';');
    if (semi != std::string::npos) rhs = rhs.substr(0, semi);
    if (rhs.find('*') == std::string::npos) continue;
    std::vector<std::string> indices;
    for (size_t k = 0; k < rhs.size(); ++k) {
      if (rhs[k] != '[') continue;
      const size_t close = rhs.find(']', k + 1);
      if (close == std::string::npos) break;
      indices.push_back(strings::Trim(rhs.substr(k + 1, close - k - 1)));
      k = close;
    }
    bool duplicated = false;
    for (size_t a = 0; a < indices.size() && !duplicated; ++a) {
      for (size_t c = a + 1; c < indices.size(); ++c) {
        if (!indices[a].empty() && indices[a] == indices[c]) {
          duplicated = true;
          break;
        }
      }
    }
    if (duplicated) {
      Emit(ctx, i, "kernel-bypass-accumulation",
           "scalar reduction over indexed products bypasses la::kernels' "
           "pinned summation order; use kernels::Dot/Axpy (DotI8 for "
           "quantized rows)",
           out);
    }
  }
}

// --------------------------------------------------------------------------
// Safety checks
// --------------------------------------------------------------------------

/// no-raw-new-delete: ownership lives in containers and values in this
/// codebase; a raw new/delete is either a leak-in-waiting or a double
/// free. Placement new (`new (ptr) T`) is the sanctioned exception.
void CheckRawNewDelete(const FileCtx& ctx, std::vector<Finding>* out) {
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    size_t p = FindWord(code, "new");
    while (p != std::string::npos) {
      size_t e = p + 3;
      while (e < code.size() && IsSpace(code[e])) ++e;
      if (e < code.size() && code[e] != '(') {
        Emit(ctx, i, "no-raw-new-delete",
             "raw 'new'; own memory with containers or std::unique_ptr "
             "(placement new is exempt)",
             out);
        break;
      }
      p = FindWord(code, "new", p + 1);
    }
    p = FindWord(code, "delete");
    while (p != std::string::npos) {
      size_t b = p;
      while (b > 0 && IsSpace(code[b - 1])) --b;
      const bool defaulted = b > 0 && code[b - 1] == '=';
      const bool op = b >= 8 && code.compare(b - 8, 8, "operator") == 0;
      if (!defaulted && !op) {
        Emit(ctx, i, "no-raw-new-delete",
             "raw 'delete'; own memory with containers or std::unique_ptr",
             out);
        break;
      }
      p = FindWord(code, "delete", p + 1);
    }
  }
}

/// memcpy-nontrivial: memcpy over a non-trivially-copyable type is UB.
/// Lexical heuristic: the call's argument text names a known class type.
void CheckMemcpyNontrivial(const FileCtx& ctx, std::vector<Finding>* out) {
  static const char* kHints[] = {"string", "Vec",    "Matrix",
                                 "Record", "Report", "Dataset"};
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    if (!HasCall(code, "memcpy")) continue;
    // Argument text: this line plus up to three continuations.
    std::string args = code;
    for (size_t k = i + 1; k < ctx.lines.size() && k < i + 4; ++k) {
      args += " " + ctx.lines[k].code;
    }
    for (const char* hint : kHints) {
      if (HasWord(args, hint)) {
        Emit(ctx, i, "memcpy-nontrivial",
             std::string("memcpy argument mentions '") + hint +
                 "', which is not trivially copyable; copy elementwise or "
                 "via assignment",
             out);
        break;
      }
    }
  }
}

/// header-guard: every header carries an include guard named after its
/// path (WYM_<PATH>_H_, with the src/ prefix dropped).
void CheckHeaderGuard(const FileCtx& ctx, std::vector<Finding>* out) {
  if (!ctx.IsHeader()) return;
  std::string rel = ctx.path;
  if (strings::StartsWith(rel, "src/")) rel = rel.substr(4);
  std::string expected = "WYM_";
  for (char c : rel) {
    expected += IsIdentChar(c) ? static_cast<char>(std::toupper(
                                     static_cast<unsigned char>(c)))
                               : '_';
  }
  expected += '_';

  // First directive must be `#ifndef <expected>`, second `#define` it.
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    if (!ctx.lines[i].preprocessor) continue;
    const std::string& code = ctx.lines[i].code;
    const size_t p = FindWord(code, "ifndef");
    if (p == std::string::npos) {
      Emit(ctx, i, "header-guard",
           "first preprocessor directive is not an include guard (#ifndef " +
               expected + ")",
           out);
      return;
    }
    size_t q = p + 6;
    while (q < code.size() && IsSpace(code[q])) ++q;
    std::string name;
    while (q < code.size() && IsIdentChar(code[q])) name += code[q++];
    if (name != expected) {
      Emit(ctx, i, "header-guard",
           "include guard '" + name + "' should be '" + expected + "'", out);
      return;
    }
    for (size_t k = i + 1; k < ctx.lines.size(); ++k) {
      if (!ctx.lines[k].preprocessor) continue;
      if (FindWord(ctx.lines[k].code, "define") == std::string::npos ||
          FindWord(ctx.lines[k].code, name) == std::string::npos) {
        Emit(ctx, k, "header-guard",
             "#ifndef " + expected + " must be followed by #define " +
                 expected,
             out);
      }
      return;
    }
    Emit(ctx, i, "header-guard", "include guard is never #define'd", out);
    return;
  }
  Emit(ctx, 0, "header-guard", "missing include guard (#ifndef " + expected +
                                   " / #define " + expected + ")",
       out);
}

/// no-using-namespace-header: a using-directive in a header leaks into
/// every includer.
void CheckUsingNamespaceHeader(const FileCtx& ctx, std::vector<Finding>* out) {
  if (!ctx.IsHeader()) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    const size_t p = FindWord(code, "using");
    if (p == std::string::npos) continue;
    size_t e = p + 5;
    while (e < code.size() && IsSpace(code[e])) ++e;
    if (code.compare(e, 9, "namespace") == 0) {
      Emit(ctx, i, "no-using-namespace-header",
           "'using namespace' in a header leaks into every includer", out);
    }
  }
}

// --------------------------------------------------------------------------
// Project-hygiene checks
// --------------------------------------------------------------------------

/// simd-outside-kernels: intrinsics live only in the per-level kernel
/// TUs so the runtime dispatcher remains the single source of SIMD truth
/// (and the rest of the tree stays portable).
void CheckSimdOutsideKernels(const FileCtx& ctx, std::vector<Finding>* out) {
  if (ctx.path == "src/la/kernels_sse2.cc" ||
      ctx.path == "src/la/kernels_avx2.cc") {
    return;
  }
  static const char* kIncludes[] = {"immintrin.h", "emmintrin.h",
                                    "xmmintrin.h", "smmintrin.h",
                                    "tmmintrin.h", "avxintrin.h",
                                    "pmmintrin.h", "nmmintrin.h",
                                    "wmmintrin.h"};
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    if (ctx.lines[i].preprocessor) {
      for (const char* inc : kIncludes) {
        if (code.find(inc) != std::string::npos) {
          Emit(ctx, i, "simd-outside-kernels",
               std::string("#include <") + inc +
                   "> outside the kernel TUs; add a la::kernels entry point "
                   "instead",
               out);
          break;
        }
      }
      continue;
    }
    bool hit = false;
    for (const char* prefix : {"_mm_", "_mm256_", "_mm512_", "__m128",
                               "__m256", "__m512"}) {
      const size_t len = std::char_traits<char>::length(prefix);
      size_t p = code.find(prefix);
      while (p != std::string::npos) {
        if (p == 0 || !IsIdentChar(code[p - 1])) {
          hit = true;
          break;
        }
        p = code.find(prefix, p + len);
      }
      if (hit) break;
    }
    if (hit) {
      Emit(ctx, i, "simd-outside-kernels",
           "SIMD intrinsics outside src/la/kernels_{sse2,avx2}.cc; add a "
           "la::kernels entry point instead",
           out);
    }
  }
}

/// no-cout: library code reports through return values and util/table;
/// stray std::cout logging corrupts tool output (tools/ and bench/ own
/// their stdout).
void CheckNoCout(const FileCtx& ctx, std::vector<Finding>* out) {
  if (ctx.InDir("tools/") || ctx.InDir("bench/")) return;
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    if (HasWord(ctx.lines[i].code, "std::cout")) {
      Emit(ctx, i, "no-cout",
           "std::cout in library code; return data or use util/table "
           "(tools/ and bench/ are exempt)",
           out);
    }
  }
}

/// todo-issue: only TODO(#42)-style comments, so every deferred item
/// cites an issue and can't rot anonymously.
void CheckTodoIssue(const FileCtx& ctx, std::vector<Finding>* out) {
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& comment = ctx.lines[i].comment;
    const size_t p = FindWord(comment, "TODO");
    if (p == std::string::npos) continue;
    size_t e = p + 4;
    while (e < comment.size() && IsSpace(comment[e])) ++e;
    if (e + 1 >= comment.size() || comment[e] != '(' ||
        comment[e + 1] != '#') {
      Emit(ctx, i, "todo-issue",
           "TODO without an issue reference; write TODO(#<issue>): ...",
           out);
    }
  }
}

/// unchecked-status: a call to a `Status`/`Result`-returning function
/// used as a bare expression statement silently drops the error — the
/// exact failure mode the Status discipline exists to prevent (and the
/// runtime half of the `[[nodiscard]]` annotation on both types).
///
/// Lexical heuristic, belt and braces with the compiler warning:
/// candidate functions are (a) a registry of the library's known
/// Status/Result-returning entry points, plus (b) any function this
/// file itself declares with a `Status`/`Result<...>` return type. A
/// call is a finding when nothing but member/namespace qualifiers
/// (`obj.`, `ptr->`, `ns::`) stands between the statement start and the
/// call — assignments, `return`, macro wrappers and condition contexts
/// all leave other tokens on the line and are not flagged.
void CheckUncheckedStatus(const FileCtx& ctx, std::vector<Finding>* out) {
  // (a) Library-wide Status/Result returners callable across TUs.
  static const char* kRegistry[] = {
      "SaveToFile",     "SaveToFileV1",     "LoadFromFile",
      "VerifyFile",     "WriteDatasetCsv",  "ReadDatasetCsv",
      "DatasetFromCsv", "WriteFileAtomic",  "ReadFileToString",
      "DecodeFramedFile", "VerifyFramedFile", "Annotate",
  };
  std::vector<std::string> candidates(std::begin(kRegistry),
                                      std::end(kRegistry));

  // (b) Functions declared in this file with a Status/Result return
  // type: `Status Foo(`, `wym::Status Foo(`, `Result<T> Foo(`.
  for (const LexedLine& line : ctx.lines) {
    const std::string& code = line.code;
    for (const char* type_name : {"Status", "Result"}) {
      size_t p = FindWord(code, type_name, 0);
      while (p != std::string::npos) {
        size_t e = p + std::char_traits<char>::length(type_name);
        if (e < code.size() && code[e] == '<') {
          // Skip the Result<...> template argument list.
          int depth = 0;
          while (e < code.size()) {
            if (code[e] == '<') ++depth;
            if (code[e] == '>' && --depth == 0) {
              ++e;
              break;
            }
            ++e;
          }
        }
        while (e < code.size() && IsSpace(code[e])) ++e;
        std::string name;
        while (e < code.size() && IsIdentChar(code[e])) name += code[e++];
        while (e < code.size() && IsSpace(code[e])) ++e;
        if (!name.empty() && e < code.size() && code[e] == '(') {
          candidates.push_back(name);
        }
        p = FindWord(code, type_name, p + 1);
      }
    }
  }

  // A call is bare when stripping trailing `ident.` / `ident->` /
  // `ident::` qualifier tokens from the text before it empties the line.
  const auto is_statement_start = [](const std::string& code, size_t p) {
    size_t b = p;
    while (true) {
      while (b > 0 && IsSpace(code[b - 1])) --b;
      size_t after_sep = b;
      if (b >= 2 && code.compare(b - 2, 2, "::") == 0) {
        after_sep = b - 2;
      } else if (b >= 2 && code.compare(b - 2, 2, "->") == 0) {
        after_sep = b - 2;
      } else if (b >= 1 && code[b - 1] == '.') {
        after_sep = b - 1;
      } else {
        break;
      }
      size_t ident_end = after_sep;
      while (ident_end > 0 && IsSpace(code[ident_end - 1])) --ident_end;
      size_t ident_begin = ident_end;
      while (ident_begin > 0 && IsIdentChar(code[ident_begin - 1])) {
        --ident_begin;
      }
      if (ident_begin == ident_end) {
        // `.foo(` continuation of a multi-line expression, or a global
        // `::` qualifier at the statement start.
        b = after_sep;
        break;
      }
      b = ident_begin;
    }
    while (b > 0 && IsSpace(code[b - 1])) --b;
    return b == 0;
  };

  // A line can only begin a statement if the previous code line ended
  // one (`;`, `{`, `}`). Otherwise it is a continuation of a larger —
  // checked — expression (`const Status s =\n    WriteFileAtomic(...)`).
  const auto begins_statement = [&ctx](size_t i) {
    while (i > 0) {
      --i;
      if (ctx.lines[i].preprocessor) continue;
      const std::string& prev = ctx.lines[i].code;
      const size_t last = prev.find_last_not_of(" \t");
      if (last == std::string::npos) continue;  // Blank / comment-only.
      const char c = prev[last];
      return c == ';' || c == '{' || c == '}';
    }
    return true;
  };

  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    if (ctx.lines[i].preprocessor) continue;
    const std::string& code = ctx.lines[i].code;
    for (const std::string& name : candidates) {
      size_t p = FindWord(code, name);
      bool emitted = false;
      while (p != std::string::npos && !emitted) {
        size_t e = p + name.size();
        while (e < code.size() && IsSpace(code[e])) ++e;
        if (e < code.size() && code[e] == '(' &&
            is_statement_start(code, p) && begins_statement(i)) {
          Emit(ctx, i, "unchecked-status",
               "call to Status/Result-returning '" + name +
                   "' as a bare statement drops the error; check it, "
                   "propagate it, or WYM_RETURN_IF_ERROR it",
               out);
          emitted = true;
        }
        p = FindWord(code, name, p + 1);
      }
      if (emitted) break;
    }
  }
}

// --------------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------------

}  // namespace

std::vector<SuppressionMarker> CollectSuppressionMarkers(
    const std::string& path, const std::vector<LexedLine>& lines,
    std::vector<Finding>* malformed) {
  const auto emit = [&](size_t i, std::string message) {
    if (malformed != nullptr) {
      malformed->push_back(Finding{path, static_cast<int>(i + 1),
                                   "lint-suppression", std::move(message)});
    }
  };
  std::vector<SuppressionMarker> result;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    const size_t marker = comment.find("wym-lint:");
    if (marker == std::string::npos) continue;
    size_t p = marker + 9;
    while (p < comment.size() && IsSpace(comment[p])) ++p;
    if (comment.compare(p, 6, "allow(") != 0) {
      emit(i,
           "malformed wym-lint marker; write "
           "// wym-lint: allow(check-name): reason");
      continue;
    }
    p += 6;
    const size_t close = comment.find(')', p);
    if (close == std::string::npos) {
      emit(i, "unterminated allow(...)");
      continue;
    }
    const std::string check = strings::Trim(comment.substr(p, close - p));
    if (!IsKnownCheck(check)) {
      emit(i, "allow(" + check + ") names no known check; see wym_lint "
              "--list-checks");
      continue;
    }
    size_t r = close + 1;
    while (r < comment.size() && IsSpace(comment[r])) ++r;
    if (r >= comment.size() || comment[r] != ':') {
      emit(i, "allow(" + check + ") without a reason; a suppression must "
              "explain itself: allow(" + check + "): why");
      continue;
    }
    const std::string reason = strings::Trim(comment.substr(r + 1));
    if (reason.empty()) {
      emit(i, "allow(" + check + ") with an empty reason");
      continue;
    }
    result.push_back(
        SuppressionMarker{static_cast<int>(i + 1), check, reason});
  }
  return result;
}

std::vector<Finding> ScanSource(const std::string& path,
                                const std::string& text, ScanStats* stats) {
  const std::vector<LexedLine> lines = LexLines(text);
  const FileCtx ctx{path, lines};

  std::vector<Finding> raw;
  // Markers naming analysis-pass checks (layer-order, include-cycle,
  // taint-flow) are validated here but owned — used/stale accounting —
  // by `wym_lint graph` / `wym_lint taint`; the token scan must neither
  // honor nor stale-report them.
  struct Suppression {
    size_t line_index;
    std::string check;
    bool used = false;
  };
  std::vector<Suppression> suppressions;
  for (const SuppressionMarker& marker :
       CollectSuppressionMarkers(path, lines, &raw)) {
    if (!IsTokenCheck(marker.check)) continue;
    suppressions.push_back(
        Suppression{static_cast<size_t>(marker.line - 1), marker.check});
  }
  CheckNoRand(ctx, &raw);
  CheckNoRawClock(ctx, &raw);
  CheckUnorderedIteration(ctx, &raw);
  CheckNoParallelReduce(ctx, &raw);
  CheckKernelBypassAccumulation(ctx, &raw);
  CheckRawNewDelete(ctx, &raw);
  CheckMemcpyNontrivial(ctx, &raw);
  CheckHeaderGuard(ctx, &raw);
  CheckUsingNamespaceHeader(ctx, &raw);
  CheckSimdOutsideKernels(ctx, &raw);
  CheckNoCout(ctx, &raw);
  CheckTodoIssue(ctx, &raw);
  CheckUncheckedStatus(ctx, &raw);

  std::vector<Finding> findings;

  // A suppression covers its own line and the next one. Malformed-marker
  // findings go through the same filter, so documentation can exhibit
  // the literal marker syntax under an allow(lint-suppression).
  for (Finding& f : raw) {
    const size_t line_index = static_cast<size_t>(f.line) - 1;
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.check == f.check &&
          (s.line_index == line_index || s.line_index + 1 == line_index)) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      if (stats != nullptr) ++stats->suppressions_honored;
    } else {
      findings.push_back(std::move(f));
    }
  }
  for (const Suppression& s : suppressions) {
    if (!s.used) {
      findings.push_back(
          Finding{ctx.path, static_cast<int>(s.line_index + 1),
                  "stale-suppression",
                  "allow(" + s.check + ") never matched a finding on this "
                  "or the next line; delete the stale suppression"});
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

}  // namespace wym::lint
