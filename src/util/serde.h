#ifndef WYM_UTIL_SERDE_H_
#define WYM_UTIL_SERDE_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

/// \file
/// Minimal model serialization: a whitespace-separated text format with
/// exact (hexfloat) floating-point round trips and length-prefixed
/// strings. Every component writes a tag first, so version or structure
/// mismatches fail fast instead of reading garbage.
///
/// The format is intentionally simple — the goal is faithful persistence
/// of trained WYM pipelines (see core::WymModel::Save/Load), not an
/// interchange format.

namespace wym::serde {

/// Writes primitives to a stream.
class Serializer {
 public:
  explicit Serializer(std::ostream* out) : out_(*out) {}

  Serializer(const Serializer&) = delete;
  Serializer& operator=(const Serializer&) = delete;

  /// Component tag, e.g. Tag("mlp/v1").
  void Tag(const std::string& tag) { Str(tag); }

  void U64(uint64_t value) { out_ << value << '\n'; }
  void I64(int64_t value) { out_ << value << '\n'; }
  void Bool(bool value) { U64(value ? 1 : 0); }

  /// Exact round-trip via hexfloat.
  void F64(double value) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    out_ << buffer << '\n';
  }
  void F32(float value) { F64(static_cast<double>(value)); }

  /// Length-prefixed string (may contain any bytes except none).
  void Str(const std::string& value) {
    out_ << value.size() << ' ' << value << '\n';
  }

  void VecF64(const std::vector<double>& values) {
    U64(values.size());
    for (double v : values) F64(v);
  }
  void VecF32(const std::vector<float>& values) {
    U64(values.size());
    for (float v : values) F32(v);
  }
  void VecU64(const std::vector<uint64_t>& values) {
    U64(values.size());
    for (uint64_t v : values) U64(v);
  }

 private:
  std::ostream& out_;
};

/// Reads primitives; any failure (I/O, parse, tag mismatch, absurd
/// length) latches `ok() == false` and subsequent reads return zeros.
class Deserializer {
 public:
  /// `max_vector` bounds vector lengths to catch corrupted headers.
  explicit Deserializer(std::istream* in, size_t max_vector = 1u << 28)
      : in_(*in), max_vector_(max_vector) {}

  Deserializer(const Deserializer&) = delete;
  Deserializer& operator=(const Deserializer&) = delete;

  bool ok() const { return ok_; }

  /// Reads a string and fails unless it equals `expected`.
  bool Tag(const std::string& expected) {
    const std::string actual = Str();
    if (ok_ && actual != expected) ok_ = false;
    return ok_;
  }

  uint64_t U64() {
    uint64_t value = 0;
    if (ok_ && !(in_ >> value)) ok_ = false;
    return ok_ ? value : 0;
  }

  int64_t I64() {
    int64_t value = 0;
    if (ok_ && !(in_ >> value)) ok_ = false;
    return ok_ ? value : 0;
  }

  bool Bool() { return U64() != 0; }

  double F64() {
    std::string token;
    if (ok_ && !(in_ >> token)) ok_ = false;
    if (!ok_) return 0.0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') ok_ = false;
    return ok_ ? value : 0.0;
  }
  float F32() { return static_cast<float>(F64()); }

  std::string Str() {
    const uint64_t length = U64();
    if (!ok_) return "";
    if (length > max_vector_) {
      ok_ = false;
      return "";
    }
    // The byte after the length must be the separating space the
    // Serializer wrote. Consuming it blindly would let corrupt input
    // (wrong separator, EOF) silently misalign every subsequent read.
    if (in_.get() != ' ') {
      ok_ = false;
      return "";
    }
    std::string value(length, '\0');
    if (length > 0 && !in_.read(value.data(), static_cast<long>(length))) {
      ok_ = false;
      return "";
    }
    return value;
  }

  std::vector<double> VecF64() {
    const uint64_t length = U64();
    if (!ok_ || length > max_vector_) {
      ok_ = false;
      return {};
    }
    std::vector<double> values(length);
    for (auto& v : values) v = F64();
    return ok_ ? values : std::vector<double>{};
  }

  std::vector<float> VecF32() {
    const uint64_t length = U64();
    if (!ok_ || length > max_vector_) {
      ok_ = false;
      return {};
    }
    std::vector<float> values(length);
    for (auto& v : values) v = F32();
    return ok_ ? values : std::vector<float>{};
  }

  std::vector<uint64_t> VecU64() {
    const uint64_t length = U64();
    if (!ok_ || length > max_vector_) {
      ok_ = false;
      return {};
    }
    std::vector<uint64_t> values(length);
    for (auto& v : values) v = U64();
    return ok_ ? values : std::vector<uint64_t>{};
  }

 private:
  std::istream& in_;
  size_t max_vector_;
  bool ok_ = true;
};

}  // namespace wym::serde

#endif  // WYM_UTIL_SERDE_H_
