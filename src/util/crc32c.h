#ifndef WYM_UTIL_CRC32C_H_
#define WYM_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// \file
/// From-scratch CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected
/// 0x82F63B78) — the checksum guarding every frame of the model-file
/// format v2 (see DESIGN.md "Failure model & file-format v2"). The
/// Castagnoli polynomial detects all 1- and 2-bit errors and all burst
/// errors up to 32 bits, which is exactly the fault model of the
/// fault-injection sweep in tests/fault_injection_test.cc.
///
/// Table-driven software implementation (slice-by-1): persistence is a
/// cold path, so simplicity and portability win over a hardware SSE4.2
/// path — and keeping it scalar keeps intrinsics confined to the kernel
/// TUs (wym-lint `simd-outside-kernels`).

namespace wym::crc32c {

/// Extends a running CRC with `size` bytes. Pass the return value of a
/// previous call to checksum data in chunks; start from `Init()`.
uint32_t Extend(uint32_t crc, const void* data, size_t size);

/// Initial value of a running CRC (before any bytes).
inline uint32_t Init() { return 0; }

/// One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t size) {
  return Extend(Init(), data, size);
}
inline uint32_t Crc32c(const std::string& data) {
  return Crc32c(data.data(), data.size());
}

/// Fixed-width lowercase hex rendering ("e3069283") used by the framed
/// file format, and its inverse. `FromHex` returns false on anything
/// that is not exactly 8 lowercase/uppercase hex digits.
std::string ToHex(uint32_t crc);
bool FromHex(const std::string& hex, uint32_t* crc);

}  // namespace wym::crc32c

#endif  // WYM_UTIL_CRC32C_H_
