#ifndef WYM_UTIL_FRAMED_FILE_H_
#define WYM_UTIL_FRAMED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// The framed container of model-file format v2 (see DESIGN.md "Failure
/// model & file-format v2"): a magic + format-version header, named
/// length-prefixed sections each closed by a CRC32C footer, and a
/// whole-file trailer. Layout (all '\n'-terminated lines, payload
/// arbitrary bytes):
///
///   <magic> <version>\n
///   FRAME <name> <payload-bytes>\n
///   <payload>\n
///   CRC <8-hex crc32c of payload>\n
///   ... more frames ...
///   END <frame-count> <8-hex crc32c of every byte above this line>\n
///
/// Every byte of the file is covered by a checksum: payload bytes by
/// their frame footer, and the header/frame/trailer structure itself by
/// the whole-file trailer CRC. Any truncation or bit flip anywhere in
/// the file therefore decodes to `Status::Corruption` (naming the
/// damaged section when a frame footer catches it) — never to a
/// successful load of damaged bytes. The fault-injection sweep in
/// tests/fault_injection_test.cc asserts exactly that, exhaustively.
///
/// Decoding is allocation-bounded: every length field is validated
/// against the bytes actually present before anything is resized.

namespace wym::io {

/// One named section.
struct FileFrame {
  std::string name;
  std::string payload;
};

/// Renders a framed file (computes all CRCs).
std::string EncodeFramedFile(const std::string& magic, uint32_t version,
                             const std::vector<FileFrame>& frames);

/// True when `bytes` begins with `magic` + ' ' — cheap format sniff for
/// telling a v2 file from a legacy stream.
bool LooksFramed(const std::string& bytes, const std::string& magic);

/// Parses and fully verifies a framed file: structure, per-frame CRCs,
/// trailer CRC, no trailing garbage. On any damage returns
/// `Status::Corruption` naming the damaged section or structural
/// element. `version` and `frames` may be nullptr (verify-only).
[[nodiscard]] Status DecodeFramedFile(const std::string& bytes,
                                      const std::string& magic,
                                      uint32_t max_version, uint32_t* version,
                                      std::vector<FileFrame>* frames);

/// Verify-only decode that also renders a one-line-per-frame summary
/// ("frame <name>: <bytes> bytes, crc <hex>") into `summary` (optional).
/// This is what `wym_cli verify` prints — it checks every checksum
/// without deserializing any model state.
[[nodiscard]] Status VerifyFramedFile(const std::string& bytes,
                                      const std::string& magic,
                                      std::string* summary);

}  // namespace wym::io

#endif  // WYM_UTIL_FRAMED_FILE_H_
