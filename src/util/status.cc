#include "util/status.h"

namespace wym {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "Ok";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

}  // namespace

Status Status::Annotate(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, message_.empty() ? context
                                        : context + ": " + message_);
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace wym
