#include "util/status.h"

// Status factories count error events so failures are observable without
// every caller instrumenting; obs sits below util at link time.
// wym-lint: allow(layer-order): sanctioned util->obs edge (see DESIGN.md)
#include "obs/metrics.h"

namespace wym {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "Ok";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

Status Status::IoError(std::string message) {
  static obs::Counter& errors =
      obs::Registry::Global().GetCounter("io.errors");
  errors.Add(1);
  return Status(Code::kIoError, std::move(message));
}

Status Status::Corruption(std::string message) {
  static obs::Counter& detected =
      obs::Registry::Global().GetCounter("io.corruption_detected");
  detected.Add(1);
  return Status(Code::kCorruption, std::move(message));
}

Status Status::ResourceExhausted(std::string message) {
  static obs::Counter& shed =
      obs::Registry::Global().GetCounter("serve.shed");
  shed.Add(1);
  return Status(Code::kResourceExhausted, std::move(message));
}

Status Status::DeadlineExceeded(std::string message) {
  static obs::Counter& expired =
      obs::Registry::Global().GetCounter("serve.deadline_exceeded");
  expired.Add(1);
  return Status(Code::kDeadlineExceeded, std::move(message));
}

Status Status::Annotate(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, message_.empty() ? context
                                        : context + ": " + message_);
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace wym
