#include "util/table.h"

#include <cstdio>
#include <iostream>

#include "util/logging.h"
#include "util/string_util.h"

namespace wym {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WYM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  WYM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(strings::FormatDouble(v, precision));
  }
  AddRow(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    // Trim trailing spaces from padding of the final column.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t rule_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

// wym-lint: allow(no-cout): Print()'s documented contract is stdout
void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace wym
