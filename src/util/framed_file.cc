#include "util/framed_file.h"

#include <sstream>

#include "util/crc32c.h"

namespace wym::io {

namespace {

/// Sane bounds so a corrupt header can never drive a huge allocation or
/// a quadratic scan: section names are short identifiers, counts small.
constexpr size_t kMaxFrameName = 64;
constexpr uint64_t kMaxFrameCount = 1024;

/// Bounds-checked sequential reader over the raw bytes.
struct Cursor {
  const std::string& bytes;
  size_t pos = 0;

  size_t remaining() const { return bytes.size() - pos; }

  /// Reads up to the next '\n' (consumed, not returned). False when no
  /// newline remains — a truncated line.
  bool ReadLine(std::string* line) {
    const size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) return false;
    line->assign(bytes, pos, nl - pos);
    pos = nl + 1;
    return true;
  }
};

/// Parses a decimal u64 spanning the whole of `text` (no sign, no
/// leading/trailing junk, no empty string).
bool ParseU64(const std::string& text, uint64_t* value) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = out;
  return true;
}

bool ValidFrameName(const std::string& name) {
  if (name.empty() || name.size() > kMaxFrameName) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_' || c == '/' || c == '.';
    if (!ok) return false;
  }
  return true;
}

Status Malformed(const std::string& what, size_t offset) {
  return Status::Corruption(what + " at byte " + std::to_string(offset));
}

}  // namespace

std::string EncodeFramedFile(const std::string& magic, uint32_t version,
                             const std::vector<FileFrame>& frames) {
  std::ostringstream out;
  out << magic << ' ' << version << '\n';
  for (const FileFrame& frame : frames) {
    out << "FRAME " << frame.name << ' ' << frame.payload.size() << '\n'
        << frame.payload << '\n'
        << "CRC " << crc32c::ToHex(crc32c::Crc32c(frame.payload)) << '\n';
  }
  const std::string body = out.str();
  return body + "END " + std::to_string(frames.size()) + ' ' +
         crc32c::ToHex(crc32c::Crc32c(body)) + '\n';
}

bool LooksFramed(const std::string& bytes, const std::string& magic) {
  return bytes.size() > magic.size() &&
         bytes.compare(0, magic.size(), magic) == 0 &&
         bytes[magic.size()] == ' ';
}

Status DecodeFramedFile(const std::string& bytes, const std::string& magic,
                        uint32_t max_version, uint32_t* version,
                        std::vector<FileFrame>* frames) {
  Cursor cursor{bytes};
  std::string line;

  // Header: "<magic> <version>".
  if (!cursor.ReadLine(&line)) {
    return Status::Corruption("missing header line (file truncated)");
  }
  if (line.size() <= magic.size() ||
      line.compare(0, magic.size(), magic) != 0 || line[magic.size()] != ' ') {
    return Status::Corruption("bad magic: expected a '" + magic + "' file");
  }
  uint64_t file_version = 0;
  if (!ParseU64(line.substr(magic.size() + 1), &file_version)) {
    return Status::Corruption("unparseable format version in header");
  }
  if (file_version == 0 || file_version > max_version) {
    return Status::Corruption(
        "unsupported format version " + std::to_string(file_version) +
        " (this build reads up to " + std::to_string(max_version) + ")");
  }
  if (version != nullptr) *version = static_cast<uint32_t>(file_version);

  uint64_t frame_count = 0;
  while (true) {
    const size_t trailer_start = cursor.pos;
    if (!cursor.ReadLine(&line)) {
      return Status::Corruption("missing file trailer (file truncated)");
    }

    if (line.compare(0, 4, "END ") == 0) {
      const size_t space = line.find(' ', 4);
      uint64_t declared_count = 0;
      uint32_t declared_crc = 0;
      if (space == std::string::npos ||
          !ParseU64(line.substr(4, space - 4), &declared_count) ||
          !crc32c::FromHex(line.substr(space + 1), &declared_crc)) {
        return Malformed("malformed END trailer", trailer_start);
      }
      if (declared_count != frame_count) {
        return Status::Corruption(
            "trailer declares " + std::to_string(declared_count) +
            " frame(s) but file contains " + std::to_string(frame_count));
      }
      const uint32_t actual_crc =
          crc32c::Crc32c(bytes.data(), trailer_start);
      // Byte-exact comparison, not value comparison: the trailer's own
      // hex digits are the only bytes of the file no checksum covers,
      // so even a bit flip that preserves the parsed value (e.g. the
      // 0x20 case bit of a hex letter) must read as corruption.
      if (line.substr(space + 1) != crc32c::ToHex(actual_crc)) {
        return Status::Corruption("whole-file trailer CRC mismatch (stored " +
                                  crc32c::ToHex(declared_crc) + ", computed " +
                                  crc32c::ToHex(actual_crc) + ")");
      }
      if (cursor.remaining() != 0) {
        return Malformed("trailing bytes after END trailer", cursor.pos);
      }
      return Status::Ok();
    }

    // Otherwise this must be a frame: "FRAME <name> <len>".
    if (line.compare(0, 6, "FRAME ") != 0) {
      return Malformed("expected FRAME or END line", trailer_start);
    }
    const size_t space = line.find(' ', 6);
    uint64_t length = 0;
    if (space == std::string::npos ||
        !ParseU64(line.substr(space + 1), &length)) {
      return Malformed("malformed FRAME header", trailer_start);
    }
    const std::string name = line.substr(6, space - 6);
    if (!ValidFrameName(name)) {
      return Malformed("invalid frame name", trailer_start);
    }
    if (++frame_count > kMaxFrameCount) {
      return Status::Corruption("more than " +
                                std::to_string(kMaxFrameCount) + " frames");
    }
    // The declared length must fit in the bytes that are actually
    // present (payload + '\n' + "CRC xxxxxxxx\n" = length + 14).
    if (length > cursor.remaining() || cursor.remaining() - length < 14) {
      return Status::Corruption("section '" + name +
                                "' declares more bytes than the file holds");
    }
    const size_t payload_start = cursor.pos;
    cursor.pos += static_cast<size_t>(length);
    if (bytes[cursor.pos] != '\n') {
      return Status::Corruption("section '" + name +
                                "' payload is not newline-terminated");
    }
    ++cursor.pos;
    if (!cursor.ReadLine(&line) || line.size() != 12 ||
        line.compare(0, 4, "CRC ") != 0) {
      return Status::Corruption("section '" + name + "' has no CRC footer");
    }
    uint32_t declared_crc = 0;
    if (!crc32c::FromHex(line.substr(4), &declared_crc)) {
      return Status::Corruption("section '" + name +
                                "' has an unparseable CRC footer");
    }
    const uint32_t actual_crc = crc32c::Crc32c(
        bytes.data() + payload_start, static_cast<size_t>(length));
    if (declared_crc != actual_crc) {
      return Status::Corruption("section '" + name +
                                "' failed CRC check (stored " +
                                crc32c::ToHex(declared_crc) + ", computed " +
                                crc32c::ToHex(actual_crc) + ")");
    }
    if (frames != nullptr) {
      frames->push_back(FileFrame{
          name, bytes.substr(payload_start, static_cast<size_t>(length))});
    }
  }
}

Status VerifyFramedFile(const std::string& bytes, const std::string& magic,
                        std::string* summary) {
  uint32_t version = 0;
  std::vector<FileFrame> frames;
  WYM_RETURN_IF_ERROR(
      DecodeFramedFile(bytes, magic, /*max_version=*/0xFFFFFFFFu, &version,
                       &frames));
  if (summary != nullptr) {
    std::ostringstream out;
    out << magic << " format v" << version << ", " << frames.size()
        << " frame(s), " << bytes.size() << " bytes\n";
    for (const FileFrame& frame : frames) {
      out << "  frame " << frame.name << ": " << frame.payload.size()
          << " bytes, crc " << crc32c::ToHex(crc32c::Crc32c(frame.payload))
          << " ok\n";
    }
    *summary = out.str();
  }
  return Status::Ok();
}

}  // namespace wym::io
