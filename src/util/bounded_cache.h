#ifndef WYM_UTIL_BOUNDED_CACHE_H_
#define WYM_UTIL_BOUNDED_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

/// \file
/// A mutex-guarded, size-capped memo cache with deterministic FIFO
/// eviction — the one caching primitive every long-lived surface shares
/// (the SemanticEncoder token memo, the serve-layer prediction cache).
///
/// Design constraints:
///  - **Bounded.** A long-lived process must not grow with the number
///    of distinct keys it has ever seen; capacity is fixed at
///    construction and enforced on every insert.
///  - **Deterministic eviction.** Victims leave in insertion order
///    (FIFO), never in hash-table order, so for a deterministic
///    insertion sequence the cache contents are reproducible. Cached
///    values are always derivable state — eviction can change hit
///    rates, never results.
///  - **Thread-safe.** Lookup/Insert take one mutex; entries are copied
///    out so no reference escapes the lock.

namespace wym::util {

template <typename K, typename V, typename Hash = std::hash<K>>
class FifoCache {
 public:
  explicit FifoCache(size_t capacity) : capacity_(capacity) {}

  /// Copies the cached value for `key` into `*out`; false on a miss
  /// (or when the cache is disabled with capacity 0).
  bool Lookup(const K& key, V* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    *out = it->second;
    return true;
  }

  /// Inserts `key -> value`, evicting the oldest entry when full. A key
  /// that is already present keeps its original value and age (the memo
  /// use case: equal keys always map to equal values).
  void Insert(const K& key, V value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!map_.emplace(key, std::move(value)).second) return;
    order_.push_back(key);
    while (map_.size() > capacity_) {
      map_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    order_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Total evictions since construction (monotonic; survives Clear).
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<K, V, Hash> map_;
  /// Insertion order; front() is the next eviction victim.
  std::deque<K> order_;
  uint64_t evictions_ = 0;
};

}  // namespace wym::util

#endif  // WYM_UTIL_BOUNDED_CACHE_H_
