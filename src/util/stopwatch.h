#ifndef WYM_UTIL_STOPWATCH_H_
#define WYM_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

/// \file
/// Wall-clock timing for the throughput experiments (paper §5.3) and the
/// single sanctioned time source for the whole tree: every other
/// subsystem (including `obs` spans and histograms, see obs/trace.h)
/// reads time through a Stopwatch, never through std::chrono clocks
/// directly — enforced by the wym-lint `no-raw-clock` check.

namespace wym {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  /// Restarts the clock (and the current lap).
  void Reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Elapsed nanoseconds since construction or the last Reset().
  /// Integer nanoseconds are the unit of record for spans and latency
  /// histograms; the floating-point accessors below derive from it.
  std::uint64_t ElapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds since the previous LapNanos()/LapSeconds() call (or
  /// since construction / Reset() for the first lap), then starts the
  /// next lap. Lap marks do not move start_, so ElapsedNanos() still
  /// reports the total across all laps.
  std::uint64_t LapNanos() {
    const Clock::time_point now = Clock::now();
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - lap_)
            .count());
    lap_ = now;
    return ns;
  }

  /// Seconds since the previous lap mark; see LapNanos().
  double LapSeconds() { return static_cast<double>(LapNanos()) * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace wym

#endif  // WYM_UTIL_STOPWATCH_H_
