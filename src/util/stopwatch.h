#ifndef WYM_UTIL_STOPWATCH_H_
#define WYM_UTIL_STOPWATCH_H_

#include <chrono>

/// \file
/// Wall-clock timing for the throughput experiments (paper §5.3).

namespace wym {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wym

#endif  // WYM_UTIL_STOPWATCH_H_
