#ifndef WYM_UTIL_STRING_UTIL_H_
#define WYM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string helpers shared by the tokenizer, CSV reader and benchmark
/// table printer. ASCII-oriented: the synthetic benchmark corpus is ASCII.

namespace wym::strings {

/// Lower-cases ASCII letters in place and returns the result.
std::string ToLower(std::string_view text);

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True when every character is an ASCII digit (and text is non-empty).
bool IsNumeric(std::string_view text);

/// True when the token mixes letters and digits (product-code shape,
/// e.g. "dslra200w"); used by the domain-knowledge unit rules.
bool IsAlphanumericCode(std::string_view text);

/// Formats a double with fixed precision (printf "%.*f").
std::string FormatDouble(double value, int precision);

}  // namespace wym::strings

#endif  // WYM_UTIL_STRING_UTIL_H_
