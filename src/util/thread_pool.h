#ifndef WYM_UTIL_THREAD_POOL_H_
#define WYM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// A fixed-size work-queue thread pool — the execution substrate of the
/// deterministic parallel runtime (see DESIGN.md "Threading model").
/// Work is expressed through util::ParallelFor (parallel.h), which
/// guarantees thread-count-independent results; the pool itself is a
/// plain task queue with no ordering guarantees.

namespace wym::util {

/// Fixed set of worker threads draining a FIFO task queue.
///
/// A pool of size <= 1 spawns no workers: Submit() runs the task inline
/// on the calling thread. This makes ThreadPool(1) an exact sequential
/// executor, which is how the benches measure the 1-thread baseline.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 and 1 both mean "no workers, run
  /// submitted tasks inline").
  explicit ThreadPool(size_t threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 = inline execution).
  size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not block on other tasks of the same
  /// pool (ParallelFor handles the nested case by running inline).
  void Submit(std::function<void()> task);

  /// True when the calling thread is a worker of any ThreadPool.
  /// ParallelFor uses this to run nested loops inline instead of
  /// deadlocking on a saturated queue.
  static bool InWorker();

  /// Thread count for the global pool: WYM_THREADS when set to a
  /// positive integer, otherwise std::thread::hardware_concurrency().
  static size_t DefaultThreadCount();

  /// The lazily-started process-wide pool (sized by DefaultThreadCount
  /// at first use). Library code should reach it through ParallelFor's
  /// default pool argument rather than directly.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  /// A queued task plus the obs::NowNanos() timestamp of its Submit()
  /// (0 when metrics are disabled), so the worker can account queue
  /// wait in the `pool.task_wait_ns` histogram.
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns;
  };

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace wym::util

#endif  // WYM_UTIL_THREAD_POOL_H_
