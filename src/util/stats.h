#ifndef WYM_UTIL_STATS_H_
#define WYM_UTIL_STATS_H_

#include <cstddef>
#include <vector>

/// \file
/// Descriptive statistics used across the feature extractor, the benchmark
/// harnesses, and the explanation-evaluation code (Pearson correlation,
/// Fleiss' kappa for the user-study reproduction).

namespace wym::stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Median (average of middle two for even sizes); 0 for an empty input.
double Median(std::vector<double> values);

/// Population standard deviation; 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

/// Minimum / maximum; 0 for an empty input.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Sum of the values.
double Sum(const std::vector<double>& values);

/// Pearson correlation coefficient of two equally-sized series.
/// Returns 0 when either series is constant or shorter than 2.
double Pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Fleiss' kappa for inter-rater agreement.
/// `ratings[i][c]` = number of raters that assigned subject i to category c.
/// Every subject must have the same total number of raters.
/// Returns 1.0 under complete agreement; 0 when chance agreement saturates.
double FleissKappa(const std::vector<std::vector<int>>& ratings);

}  // namespace wym::stats

#endif  // WYM_UTIL_STATS_H_
