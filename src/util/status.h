#ifndef WYM_UTIL_STATUS_H_
#define WYM_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

/// \file
/// RocksDB-style Status / Result error handling. Fallible operations
/// (file I/O, parsing, user-supplied configuration) return a `Status`
/// or a `Result<T>`; the library never throws.

namespace wym {

/// Outcome of a fallible operation. Cheap to copy when OK.
/// `[[nodiscard]]`: silently dropping a returned Status is exactly the
/// failure mode this type exists to prevent (see also the wym-lint
/// `unchecked-status` check).
class [[nodiscard]] Status {
 public:
  /// Error taxonomy; kOk means success.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kCorruption,
    kFailedPrecondition,
    /// Admission control: the server shed the request (bounded queue
    /// full, or draining for shutdown). Retryable — against another
    /// instance or after backoff.
    kResourceExhausted,
    /// The request's deadline budget expired before (or while) the work
    /// ran. Not retryable: the budget is already spent.
    kDeadlineExceeded,
  };

  /// Default-constructed Status is OK.
  Status() = default;

  /// Factory helpers, RocksDB idiom.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  /// IoError/Corruption are out of line (status.cc): every such status
  /// construction bumps the obs counters `io.errors` /
  /// `io.corruption_detected`, making the PR 4 failure paths countable
  /// at one choke point instead of at each call site.
  static Status IoError(std::string message);
  static Status Corruption(std::string message);
  static Status FailedPrecondition(std::string message) {
    return Status(Code::kFailedPrecondition, std::move(message));
  }
  /// ResourceExhausted/DeadlineExceeded are out of line (status.cc):
  /// like IoError/Corruption they bump obs counters (`serve.shed` /
  /// `serve.deadline_exceeded`) at the one construction choke point.
  static Status ResourceExhausted(std::string message);
  static Status DeadlineExceeded(std::string message);

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IoError: no such file".
  std::string ToString() const;

  /// Error-chaining: returns this Status with `context` prepended to the
  /// message ("loading model: read failed ..."); OK stays OK. Lets each
  /// layer add what it was doing without losing the root cause or code.
  Status Annotate(const std::string& context) const;

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed Result is a checked programming error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status, so functions can
  /// `return value;` or `return Status::IoError(...);`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    WYM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; require ok().
  const T& value() const& {
    WYM_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    WYM_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    WYM_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

  /// The value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? std::move(value_) : std::move(fallback);
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace wym

/// Propagates a non-OK Status to the caller.
#define WYM_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::wym::Status _status = (expr);        \
    if (!_status.ok()) return _status;     \
  } while (false)

#endif  // WYM_UTIL_STATUS_H_
