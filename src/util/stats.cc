#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace wym::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Sum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  WYM_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double FleissKappa(const std::vector<std::vector<int>>& ratings) {
  if (ratings.empty()) return 0.0;
  const size_t num_subjects = ratings.size();
  const size_t num_categories = ratings[0].size();
  int raters = 0;
  for (int c : ratings[0]) raters += c;
  WYM_CHECK_GT(raters, 1) << "Fleiss kappa needs >= 2 raters";

  // Per-category proportions.
  std::vector<double> p_cat(num_categories, 0.0);
  double p_bar = 0.0;
  for (const auto& row : ratings) {
    WYM_CHECK_EQ(row.size(), num_categories);
    int row_total = 0;
    double agree = 0.0;
    for (size_t c = 0; c < num_categories; ++c) {
      row_total += row[c];
      p_cat[c] += row[c];
      agree += static_cast<double>(row[c]) * (row[c] - 1);
    }
    WYM_CHECK_EQ(row_total, raters) << "rater count must be constant";
    p_bar += agree / (static_cast<double>(raters) * (raters - 1));
  }
  p_bar /= static_cast<double>(num_subjects);

  double p_e = 0.0;
  const double total =
      static_cast<double>(num_subjects) * static_cast<double>(raters);
  for (size_t c = 0; c < num_categories; ++c) {
    const double share = p_cat[c] / total;
    p_e += share * share;
  }
  if (p_e >= 1.0) return 1.0;  // Complete agreement on a single category.
  return (p_bar - p_e) / (1.0 - p_e);
}

}  // namespace wym::stats
