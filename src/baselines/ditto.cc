#include "baselines/ditto.h"

#include "baselines/cordel.h"
#include "baselines/similarity_features.h"
#include "text/tokenizer.h"
#include "ml/metrics.h"
#include "util/logging.h"

namespace wym::baselines {

namespace {

std::vector<std::string> Tokens(const std::string& value) {
  static const text::Tokenizer tokenizer{};
  return tokenizer.Tokenize(value);
}

std::vector<std::string> AllTokens(const data::Entity& entity) {
  std::vector<std::string> out;
  for (const auto& value : entity.values) {
    for (auto& token : Tokens(value)) out.push_back(std::move(token));
  }
  return out;
}

}  // namespace

DittoMatcher::DittoMatcher(Options options)
    : options_([&] {
        options.encoder.seed = options.seed;
        options.gbm.seed = options.seed ^ 0x9e37;
        return options;
      }()),
      encoder_(options_.encoder),
      gbm_(options_.gbm) {}

std::vector<double> DittoMatcher::Features(
    const data::EmRecord& record) const {
  // Everything the weaker baselines see...
  std::vector<double> features = RecordSimilarityFeatures(record);
  const std::vector<double> contrast =
      CordelMatcher::ContrastFeatures(record);
  features.insert(features.end(), contrast.begin(), contrast.end());

  // ...plus the fine-tuned encoder's pooled-embedding similarities:
  // whole-record cosine and per-attribute pooled cosines (the serialized
  // transformer view of the pair).
  const auto left_tokens = AllTokens(record.left);
  const auto right_tokens = AllTokens(record.right);
  const auto left_vecs = encoder_.EncodeTokens(left_tokens);
  const auto right_vecs = encoder_.EncodeTokens(right_tokens);
  const la::Vec left_pool = embedding::SemanticEncoder::PoolTokens(left_vecs);
  const la::Vec right_pool =
      embedding::SemanticEncoder::PoolTokens(right_vecs);
  features.push_back((left_pool.empty() || right_pool.empty())
                         ? 0.0
                         : la::Cosine(left_pool, right_pool));

  for (size_t a = 0; a < num_attributes_; ++a) {
    const auto lv = encoder_.EncodeTokens(Tokens(record.left.values[a]));
    const auto rv = encoder_.EncodeTokens(Tokens(record.right.values[a]));
    const la::Vec lp = embedding::SemanticEncoder::PoolTokens(lv);
    const la::Vec rp = embedding::SemanticEncoder::PoolTokens(rv);
    features.push_back((lp.empty() || rp.empty()) ? 0.0 : la::Cosine(lp, rp));
  }
  return features;
}

void DittoMatcher::Fit(const data::Dataset& train,
                       const data::Dataset& validation) {
  WYM_CHECK_GT(train.size(), 0u);
  num_attributes_ = train.schema.size();

  // "Fine-tune" the encoder on the training corpus + labels.
  encoder_ = embedding::SemanticEncoder(options_.encoder);
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(2 * train.size());
  for (const auto& record : train.records) {
    corpus.push_back(AllTokens(record.left));
    corpus.push_back(AllTokens(record.right));
  }
  encoder_.Fit(corpus);
  if (options_.encoder.mode == embedding::EncoderMode::kSiamese) {
    std::vector<std::pair<la::Vec, la::Vec>> pairs;
    std::vector<int> labels;
    for (const auto& record : train.records) {
      const auto lv = encoder_.EncodeTokens(AllTokens(record.left));
      const auto rv = encoder_.EncodeTokens(AllTokens(record.right));
      if (lv.empty() || rv.empty()) continue;
      pairs.emplace_back(embedding::SemanticEncoder::PoolTokens(lv),
                         embedding::SemanticEncoder::PoolTokens(rv));
      labels.push_back(record.label);
    }
    encoder_.FitSiamese(pairs, labels);
  }

  const size_t dim = Features(train.records[0]).size();
  la::Matrix x(train.size(), dim);
  for (size_t i = 0; i < train.size(); ++i) {
    const auto row = Features(train.records[i]);
    for (size_t j = 0; j < dim; ++j) x.At(i, j) = row[j];
  }
  gbm_ = ml::GradientBoostingClassifier(options_.gbm);
  gbm_.Fit(x, train.Labels());
  fitted_ = true;

  const data::Dataset& calibration =
      validation.size() > 0 ? validation : train;
  std::vector<double> probas;
  probas.reserve(calibration.size());
  for (const auto& record : calibration.records) {
    probas.push_back(gbm_.PredictProba(Features(record)));
  }
  threshold_ = ml::BestF1Threshold(probas, calibration.Labels());
}

double DittoMatcher::PredictProba(const data::EmRecord& record) const {
  WYM_CHECK(fitted_) << "DITTO used before Fit";
  return ml::RecalibrateProba(gbm_.PredictProba(Features(record)),
                              threshold_);
}

}  // namespace wym::baselines
