#ifndef WYM_BASELINES_DITTO_H_
#define WYM_BASELINES_DITTO_H_

#include <cstdint>

#include "core/matcher.h"
#include "embedding/semantic_encoder.h"
#include "ml/boosting.h"

/// \file
/// DITTO stand-in (Li et al., VLDB 2021): the strongest — and opaque —
/// baseline of Table 3. DITTO serializes the record pair into one
/// sequence for a fine-tuned BERT; our stand-in combines everything the
/// other baselines see (full similarity features, contrastive signals)
/// with the fine-tuned semantic encoder's pooled-embedding similarities,
/// classified by a larger gradient-boosting model. It has no
/// interpretable read-out, matching the role the paper assigns it.

namespace wym::baselines {

/// Options for DittoMatcher.
struct DittoOptions {
  embedding::SemanticEncoderOptions encoder = {
      .mode = embedding::EncoderMode::kSiamese,
      .hash_dim = 32,
      .cooc_dim = 16,
      .cooc = {},
      .context = {},
      .siamese = {},
      .seed = 0xD1770};
  ml::GradientBoostingOptions gbm = {
      .n_estimators = 120,
      .learning_rate = 0.08,
      .tree = {.max_depth = 4,
               .min_samples_leaf = 2,
               .min_samples_split = 4,
               .max_features = 0,
               .random_thresholds = false},
      .seed = 0xD1770};
  uint64_t seed = 0xD1770;
};

/// The DITTO baseline matcher.
class DittoMatcher : public core::Matcher {
 public:
  using Options = DittoOptions;

  explicit DittoMatcher(Options options = {});

  const char* name() const override { return "DITTO"; }
  void Fit(const data::Dataset& train,
           const data::Dataset& validation) override;
  double PredictProba(const data::EmRecord& record) const override;

 private:
  std::vector<double> Features(const data::EmRecord& record) const;

  Options options_;
  embedding::SemanticEncoder encoder_;
  ml::GradientBoostingClassifier gbm_;
  size_t num_attributes_ = 0;
  bool fitted_ = false;
  double threshold_ = 0.5;
};

}  // namespace wym::baselines

#endif  // WYM_BASELINES_DITTO_H_
