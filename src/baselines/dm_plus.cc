#include "baselines/dm_plus.h"

#include <algorithm>

#include "baselines/similarity_features.h"
#include "ml/metrics.h"
#include "util/logging.h"

namespace wym::baselines {

namespace {

/// DM+'s attribute summary is deliberately coarser than the shared
/// featurization: token-overlap signals only (the attribute-summarize
/// design of DeepMatcher's hybrid model without the character-level and
/// numeric channels) — this is what makes DM+ the weakest baseline on
/// the dirty/textual datasets, as in the paper's Table 3.
std::vector<double> DmPlusFeatures(const data::EmRecord& record) {
  const std::vector<double> full = RecordSimilarityFeatures(record);
  // Keep, per attribute, the token-Jaccard / containment / length /
  // both-present signals (indices 1, 3, 4, 6 of each 7-signal block) and
  // drop the record-level aggregates.
  std::vector<double> out;
  const size_t attributes = record.left.values.size();
  for (size_t a = 0; a < attributes; ++a) {
    const size_t base = a * kPerAttributeFeatures;
    out.push_back(full[base + 1]);
    out.push_back(full[base + 3]);
    out.push_back(full[base + 4]);
    out.push_back(full[base + 6]);
  }
  return out;
}

}  // namespace

DmPlusMatcher::DmPlusMatcher(Options options)
    : options_(options), mlp_(options.mlp) {}

void DmPlusMatcher::Fit(const data::Dataset& train,
                        const data::Dataset& validation) {
  WYM_CHECK_GT(train.size(), 0u);
  const size_t dim = 4 * train.schema.size();
  la::Matrix x(train.size(), dim);
  std::vector<double> y(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    const auto row = DmPlusFeatures(train.records[i]);
    WYM_CHECK_EQ(row.size(), dim);
    for (size_t j = 0; j < dim; ++j) x.At(i, j) = row[j];
    y[i] = train.records[i].label;
  }
  mlp_ = nn::Mlp(options_.mlp);
  mlp_.Fit(x, y);
  fitted_ = true;

  // Decision-threshold calibration on validation (train when absent).
  const data::Dataset& calibration =
      validation.size() > 0 ? validation : train;
  std::vector<double> probas;
  probas.reserve(calibration.size());
  for (const auto& record : calibration.records) {
    probas.push_back(
        std::clamp(mlp_.Predict(DmPlusFeatures(record)), 0.0, 1.0));
  }
  threshold_ = ml::BestF1Threshold(probas, calibration.Labels());
}

double DmPlusMatcher::PredictProba(const data::EmRecord& record) const {
  WYM_CHECK(fitted_) << "DM+ used before Fit";
  const double out =
      std::clamp(mlp_.Predict(DmPlusFeatures(record)), 0.0, 1.0);
  return ml::RecalibrateProba(out, threshold_);
}

}  // namespace wym::baselines
