#ifndef WYM_BASELINES_CORDEL_H_
#define WYM_BASELINES_CORDEL_H_

#include <cstdint>

#include "core/matcher.h"
#include "ml/boosting.h"

/// \file
/// CorDEL stand-in (Wang et al., ICDM 2020): a *contrastive* matcher that
/// separates the pair into similarity evidence (shared terms) and
/// dissimilarity evidence (unique terms) and classifies their contrast.
/// This is the concept WYM's paired/unpaired units generalize (paper
/// §2.1); our stand-in builds explicit shared/unique-term signals per
/// attribute and classifies them with gradient boosting.

namespace wym::baselines {

/// Options for CordelMatcher.
struct CordelOptions {
  ml::GradientBoostingOptions gbm;
  uint64_t seed = 0xC03DE1;
};

/// The CorDEL baseline matcher.
class CordelMatcher : public core::Matcher {
 public:
  using Options = CordelOptions;

  explicit CordelMatcher(Options options = {});

  const char* name() const override { return "CorDEL"; }
  void Fit(const data::Dataset& train,
           const data::Dataset& validation) override;
  double PredictProba(const data::EmRecord& record) const override;

  /// Contrastive features of one record (exposed for tests): per
  /// attribute — shared-token count/ratio, unique-left, unique-right,
  /// best fuzzy alignment of unique tokens; plus record aggregates.
  static std::vector<double> ContrastFeatures(const data::EmRecord& record);

 private:
  Options options_;
  ml::GradientBoostingClassifier gbm_;
  bool fitted_ = false;
  double threshold_ = 0.5;
};

}  // namespace wym::baselines

#endif  // WYM_BASELINES_CORDEL_H_
