#ifndef WYM_BASELINES_AUTOML_H_
#define WYM_BASELINES_AUTOML_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/matcher.h"
#include "ml/classifier.h"
#include "ml/scaler.h"

/// \file
/// AutoML-EM stand-in (Paganelli et al., EDBT 2021): pipelines an encoder
/// featurization with automatic model selection. Our stand-in sweeps the
/// full classifier pool over the similarity features and keeps the best
/// validation-F1 model, mimicking the AutoSklearn/AutoGluon/H2O average
/// the paper reports.

namespace wym::baselines {

/// Options for AutoMlMatcher.
struct AutoMlOptions {
  uint64_t seed = 0xA070;
};

/// The AutoML baseline matcher.
class AutoMlMatcher : public core::Matcher {
 public:
  using Options = AutoMlOptions;

  explicit AutoMlMatcher(Options options = {});

  const char* name() const override { return "AutoML"; }
  void Fit(const data::Dataset& train,
           const data::Dataset& validation) override;
  double PredictProba(const data::EmRecord& record) const override;

  /// Name of the selected model (for diagnostics).
  const std::string& selected() const { return selected_; }

 private:
  Options options_;
  ml::StandardScaler scaler_;
  std::vector<std::unique_ptr<ml::Classifier>> pool_;
  ml::Classifier* best_ = nullptr;
  std::string selected_;
  double threshold_ = 0.5;
};

}  // namespace wym::baselines

#endif  // WYM_BASELINES_AUTOML_H_
