#ifndef WYM_BASELINES_DM_PLUS_H_
#define WYM_BASELINES_DM_PLUS_H_

#include <cstdint>

#include "core/matcher.h"
#include "nn/mlp.h"

/// \file
/// DeepMatcher+ stand-in ("DM+", Table 3): per-attribute similarity
/// summaries fed to a small dense network — the attribute-summarize-then-
/// classify shape of DeepMatcher's hybrid model, at the capacity of our
/// substitute featurization.

namespace wym::baselines {

/// Options for DmPlusMatcher.
struct DmPlusOptions {
  nn::MlpOptions mlp = {.hidden = {32, 16},
                        .epochs = 30,
                        .batch_size = 32,
                        .learning_rate = 2e-3,
                        .weight_decay = 1e-5,
                        .clamp_output = true,
                        .seed = 0xD1234};
  uint64_t seed = 0xD1234;
};

/// The DM+ baseline matcher.
class DmPlusMatcher : public core::Matcher {
 public:
  using Options = DmPlusOptions;

  explicit DmPlusMatcher(Options options = {});

  const char* name() const override { return "DM+"; }
  void Fit(const data::Dataset& train,
           const data::Dataset& validation) override;
  double PredictProba(const data::EmRecord& record) const override;

 private:
  Options options_;
  nn::Mlp mlp_;
  bool fitted_ = false;
  double threshold_ = 0.5;
};

}  // namespace wym::baselines

#endif  // WYM_BASELINES_DM_PLUS_H_
