#include "baselines/cordel.h"

#include <algorithm>
#include <set>

#include "text/string_metrics.h"
#include "text/tokenizer.h"
#include "ml/metrics.h"
#include "util/logging.h"

namespace wym::baselines {

namespace {

std::vector<std::string> Tokens(const std::string& value) {
  static const text::Tokenizer tokenizer{};
  return tokenizer.Tokenize(value);
}

}  // namespace

CordelMatcher::CordelMatcher(Options options)
    : options_([&] {
        options.gbm.seed = options.seed;
        return options;
      }()),
      gbm_(options_.gbm) {}

std::vector<double> CordelMatcher::ContrastFeatures(
    const data::EmRecord& record) {
  std::vector<double> features;
  double total_shared = 0.0, total_unique = 0.0;
  for (size_t a = 0; a < record.left.values.size(); ++a) {
    const auto lt = Tokens(record.left.values[a]);
    const auto rt = Tokens(record.right.values[a]);
    const std::set<std::string> ls(lt.begin(), lt.end());
    const std::set<std::string> rs(rt.begin(), rt.end());

    // Similarity evidence: shared terms.
    std::vector<std::string> shared;
    for (const auto& t : ls) {
      if (rs.count(t)) shared.push_back(t);
    }
    // Dissimilarity evidence: unique terms.
    std::vector<std::string> unique_left, unique_right;
    for (const auto& t : ls) {
      if (!rs.count(t)) unique_left.push_back(t);
    }
    for (const auto& t : rs) {
      if (!ls.count(t)) unique_right.push_back(t);
    }

    // Best fuzzy alignment among the unique terms: distinguishes benign
    // variation ("externl" vs "external") from true dissimilarity.
    double fuzzy = 0.0;
    for (const auto& l : unique_left) {
      for (const auto& r : unique_right) {
        fuzzy = std::max(fuzzy, text::JaroWinklerSimilarity(l, r));
      }
    }

    const double denom =
        std::max<size_t>(1, std::max(ls.size(), rs.size()));
    features.push_back(static_cast<double>(shared.size()));
    features.push_back(static_cast<double>(shared.size()) / denom);
    features.push_back(static_cast<double>(unique_left.size()));
    features.push_back(static_cast<double>(unique_right.size()));
    features.push_back(fuzzy);
    total_shared += static_cast<double>(shared.size());
    total_unique += static_cast<double>(unique_left.size() +
                                        unique_right.size());
  }
  features.push_back(total_shared);
  features.push_back(total_unique);
  features.push_back(total_shared / std::max(1.0, total_shared + total_unique));
  return features;
}

void CordelMatcher::Fit(const data::Dataset& train,
                        const data::Dataset& validation) {
  WYM_CHECK_GT(train.size(), 0u);
  const size_t dim = ContrastFeatures(train.records[0]).size();
  la::Matrix x(train.size(), dim);
  for (size_t i = 0; i < train.size(); ++i) {
    const auto row = ContrastFeatures(train.records[i]);
    for (size_t j = 0; j < dim; ++j) x.At(i, j) = row[j];
  }
  gbm_ = ml::GradientBoostingClassifier(options_.gbm);
  gbm_.Fit(x, train.Labels());
  fitted_ = true;

  const data::Dataset& calibration =
      validation.size() > 0 ? validation : train;
  std::vector<double> probas;
  probas.reserve(calibration.size());
  for (const auto& record : calibration.records) {
    probas.push_back(gbm_.PredictProba(ContrastFeatures(record)));
  }
  threshold_ = ml::BestF1Threshold(probas, calibration.Labels());
}

double CordelMatcher::PredictProba(const data::EmRecord& record) const {
  WYM_CHECK(fitted_) << "CorDEL used before Fit";
  return ml::RecalibrateProba(gbm_.PredictProba(ContrastFeatures(record)),
                              threshold_);
}

}  // namespace wym::baselines
