#include "baselines/automl.h"

#include "baselines/similarity_features.h"
#include "ml/classifier_pool.h"
#include "ml/metrics.h"
#include "util/logging.h"

namespace wym::baselines {

namespace {

/// AutoML's feature view: the per-attribute similarity summaries without
/// the record-level aggregates (its encoder adapters summarize attribute
/// pairs; whole-record token statistics are a WYM/CorDEL-style signal).
std::vector<double> AutoMlFeatures(const data::EmRecord& record) {
  std::vector<double> full = RecordSimilarityFeatures(record);
  full.resize(record.left.values.size() * kPerAttributeFeatures);
  return full;
}

la::Matrix Featurize(const data::Dataset& dataset) {
  const size_t dim = dataset.schema.size() * kPerAttributeFeatures;
  la::Matrix x(dataset.size(), dim);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const auto row = AutoMlFeatures(dataset.records[i]);
    for (size_t j = 0; j < dim; ++j) x.At(i, j) = row[j];
  }
  return x;
}

}  // namespace

AutoMlMatcher::AutoMlMatcher(Options options) : options_(options) {}

void AutoMlMatcher::Fit(const data::Dataset& train,
                        const data::Dataset& validation) {
  WYM_CHECK_GT(train.size(), 0u);
  const la::Matrix raw = Featurize(train);
  scaler_.Fit(raw);
  const la::Matrix x_train = scaler_.Transform(raw);
  const std::vector<int> y_train = train.Labels();

  la::Matrix x_val;
  std::vector<int> y_val;
  if (validation.size() > 0) {
    x_val = scaler_.Transform(Featurize(validation));
    y_val = validation.Labels();
  }

  const la::Matrix& x_calibration =
      validation.size() > 0 ? x_val : x_train;
  const std::vector<int>& y_calibration =
      validation.size() > 0 ? y_val : y_train;

  pool_ = ml::MakePool(options_.seed);
  best_ = nullptr;
  double best_f1 = -1.0;
  for (auto& classifier : pool_) {
    classifier->Fit(x_train, y_train);
    // AutoML systems tune the operating point along with the model.
    std::vector<double> probas(x_calibration.rows());
    for (size_t i = 0; i < probas.size(); ++i) {
      probas[i] = classifier->PredictProba(x_calibration.RowVector(i));
    }
    const double threshold = ml::BestF1Threshold(probas, y_calibration);
    std::vector<int> predicted(probas.size());
    for (size_t i = 0; i < probas.size(); ++i) {
      predicted[i] = probas[i] >= threshold ? 1 : 0;
    }
    const double f1 = ml::F1Score(y_calibration, predicted);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_ = classifier.get();
      threshold_ = threshold;
    }
  }
  WYM_CHECK(best_ != nullptr);
  selected_ = best_->name();
}

double AutoMlMatcher::PredictProba(const data::EmRecord& record) const {
  WYM_CHECK(best_ != nullptr) << "AutoML used before Fit";
  return ml::RecalibrateProba(
      best_->PredictProba(scaler_.TransformRow(AutoMlFeatures(record))),
      threshold_);
}

}  // namespace wym::baselines
