#ifndef WYM_BASELINES_SIMILARITY_FEATURES_H_
#define WYM_BASELINES_SIMILARITY_FEATURES_H_

#include <string>
#include <vector>

#include "data/record.h"

/// \file
/// Shared attribute-similarity featurization for the baseline matchers.
/// DeepMatcher-style systems summarize each attribute pair with a vector
/// of similarity signals; our stand-ins reuse the same signals with
/// models of increasing capacity (see DESIGN.md substitution table).

namespace wym::baselines {

/// Number of signals produced per attribute pair.
inline constexpr size_t kPerAttributeFeatures = 7;

/// Similarity signals for one attribute value pair:
/// Jaro-Winkler, token Jaccard, trigram Jaccard, token containment,
/// relative length difference, numeric relative difference (0 when not
/// numeric), and a both-present indicator.
std::vector<double> AttributePairFeatures(const std::string& left,
                                          const std::string& right);

/// Concatenated per-attribute signals plus record-level aggregates
/// (whole-record token Jaccard, shared-token count, unique-token counts).
std::vector<double> RecordSimilarityFeatures(const data::EmRecord& record);

/// Dimension of RecordSimilarityFeatures for a schema width.
size_t RecordFeatureDim(size_t num_attributes);

}  // namespace wym::baselines

#endif  // WYM_BASELINES_SIMILARITY_FEATURES_H_
