#include "baselines/similarity_features.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "text/string_metrics.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace wym::baselines {

namespace {

std::set<std::string> TokenSet(const std::string& value) {
  static const text::Tokenizer tokenizer{};
  const auto tokens = tokenizer.Tokenize(value);
  return {tokens.begin(), tokens.end()};
}

double Jaccard(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t shared = 0;
  for (const auto& t : a) shared += b.count(t);
  const size_t unioned = a.size() + b.size() - shared;
  return unioned == 0 ? 1.0
                      : static_cast<double>(shared) /
                            static_cast<double>(unioned);
}

bool ParseNumeric(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::vector<double> AttributePairFeatures(const std::string& left,
                                          const std::string& right) {
  std::vector<double> f;
  f.reserve(kPerAttributeFeatures);

  f.push_back(text::JaroWinklerSimilarity(left, right));

  const std::set<std::string> lt = TokenSet(left);
  const std::set<std::string> rt = TokenSet(right);
  f.push_back(Jaccard(lt, rt));
  f.push_back(text::NgramJaccard(left, right, 3));

  // Containment: fraction of the smaller token set inside the larger.
  size_t shared = 0;
  for (const auto& t : lt) shared += rt.count(t);
  const size_t smaller = std::max<size_t>(1, std::min(lt.size(), rt.size()));
  f.push_back(static_cast<double>(shared) / static_cast<double>(smaller));

  const double max_len =
      std::max<size_t>(1, std::max(left.size(), right.size()));
  f.push_back(1.0 - std::fabs(static_cast<double>(left.size()) -
                              static_cast<double>(right.size())) /
                        max_len);

  double ln = 0.0, rn = 0.0;
  if (ParseNumeric(left, &ln) && ParseNumeric(right, &rn)) {
    const double denom = std::max({std::fabs(ln), std::fabs(rn), 1e-9});
    f.push_back(1.0 - std::min(1.0, std::fabs(ln - rn) / denom));
  } else {
    f.push_back(0.0);
  }

  f.push_back((!left.empty() && !right.empty()) ? 1.0 : 0.0);
  WYM_CHECK_EQ(f.size(), kPerAttributeFeatures);
  return f;
}

std::vector<double> RecordSimilarityFeatures(const data::EmRecord& record) {
  WYM_CHECK_EQ(record.left.values.size(), record.right.values.size());
  std::vector<double> features;
  features.reserve(RecordFeatureDim(record.left.values.size()));
  std::set<std::string> all_left, all_right;
  for (size_t a = 0; a < record.left.values.size(); ++a) {
    const auto f =
        AttributePairFeatures(record.left.values[a], record.right.values[a]);
    features.insert(features.end(), f.begin(), f.end());
    for (const auto& t : TokenSet(record.left.values[a])) all_left.insert(t);
    for (const auto& t : TokenSet(record.right.values[a])) {
      all_right.insert(t);
    }
  }
  size_t shared = 0;
  for (const auto& t : all_left) shared += all_right.count(t);
  const size_t unioned = all_left.size() + all_right.size() - shared;
  features.push_back(unioned == 0 ? 1.0
                                  : static_cast<double>(shared) /
                                        static_cast<double>(unioned));
  features.push_back(static_cast<double>(shared));
  features.push_back(static_cast<double>(all_left.size() - shared));
  features.push_back(static_cast<double>(all_right.size() - shared));
  return features;
}

size_t RecordFeatureDim(size_t num_attributes) {
  return num_attributes * kPerAttributeFeatures + 4;
}

}  // namespace wym::baselines
