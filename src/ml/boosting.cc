#include "ml/boosting.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace wym::ml {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

AdaBoostClassifier::AdaBoostClassifier(Options options) : options_(options) {}

void AdaBoostClassifier::Fit(const la::Matrix& x, const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<double> targets(y.begin(), y.end());
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;

  TreeOptions stump_options;
  stump_options.max_depth = 1;
  stump_options.min_samples_leaf = 1;
  stump_options.min_samples_split = 2;

  Rng rng(options_.seed);
  stumps_.clear();
  alphas_.clear();
  alpha_total_ = 0.0;

  for (size_t t = 0; t < options_.n_estimators; ++t) {
    RegressionTree stump(stump_options);
    stump.Fit(x, targets, weights, all, &rng);

    // Weighted error of the hard stump decision.
    double error = 0.0;
    std::vector<int> predicted(n);
    for (size_t i = 0; i < n; ++i) {
      predicted[i] = stump.Predict(x.Row(i)) >= 0.5 ? 1 : 0;
      if (predicted[i] != y[i]) error += weights[i];
    }
    error = std::clamp(error, 1e-10, 1.0 - 1e-10);
    if (error >= 0.5 && t > 0) break;  // No better than chance; stop.

    const double alpha = 0.5 * std::log((1.0 - error) / error);
    stumps_.push_back(std::move(stump));
    alphas_.push_back(alpha);
    alpha_total_ += std::fabs(alpha);

    // Reweight: boost the misclassified samples.
    double z = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double sign = (predicted[i] == y[i]) ? -1.0 : 1.0;
      weights[i] *= std::exp(alpha * sign);
      z += weights[i];
    }
    WYM_CHECK_GT(z, 0.0);
    for (double& w : weights) w /= z;
  }

  std::vector<double> probas(n);
  for (size_t i = 0; i < n; ++i) probas[i] = PredictProba(x.RowVector(i));
  importance_ = internal::SurrogateImportance(x, probas);
}

double AdaBoostClassifier::Score(const std::vector<double>& row) const {
  WYM_CHECK(!stumps_.empty()) << "AdaBoost used before Fit";
  double score = 0.0;
  for (size_t t = 0; t < stumps_.size(); ++t) {
    const double vote = stumps_[t].Predict(row) >= 0.5 ? 1.0 : -1.0;
    score += alphas_[t] * vote;
  }
  return score;
}

double AdaBoostClassifier::PredictProba(const std::vector<double>& row) const {
  const double normalizer = alpha_total_ > 0.0 ? alpha_total_ : 1.0;
  return Sigmoid(4.0 * Score(row) / normalizer);
}

GradientBoostingClassifier::GradientBoostingClassifier(Options options)
    : options_(options) {}

void GradientBoostingClassifier::Fit(const la::Matrix& x,
                                     const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();

  double positive = 0.0;
  for (int label : y) positive += label;
  const double prior = std::clamp(positive / static_cast<double>(n), 1e-4,
                                  1.0 - 1e-4);
  base_logit_ = std::log(prior / (1.0 - prior));

  std::vector<double> logits(n, base_logit_);
  std::vector<double> residuals(n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;

  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.n_estimators);
  for (size_t t = 0; t < options_.n_estimators; ++t) {
    for (size_t i = 0; i < n; ++i) {
      residuals[i] = static_cast<double>(y[i]) - Sigmoid(logits[i]);
    }
    RegressionTree tree(options_.tree);
    tree.Fit(x, residuals, /*weights=*/{}, all, &rng);
    for (size_t i = 0; i < n; ++i) {
      // 4x converts the mean-residual leaf value to an approximate Newton
      // step (residual variance <= 1/4 for Bernoulli).
      logits[i] += options_.learning_rate * 4.0 * tree.Predict(x.Row(i));
    }
    trees_.push_back(std::move(tree));
  }

  std::vector<double> probas(n);
  for (size_t i = 0; i < n; ++i) probas[i] = Sigmoid(logits[i]);
  importance_ = internal::SurrogateImportance(x, probas);
}

double GradientBoostingClassifier::Logit(const std::vector<double>& row) const {
  WYM_CHECK(!trees_.empty()) << "GBM used before Fit";
  double logit = base_logit_;
  for (const auto& tree : trees_) {
    logit += options_.learning_rate * 4.0 * tree.Predict(row);
  }
  return logit;
}

double GradientBoostingClassifier::PredictProba(
    const std::vector<double>& row) const {
  return Sigmoid(Logit(row));
}

void AdaBoostClassifier::SaveState(serde::Serializer* s) const {
  s->Tag("adaboost/v1");
  s->U64(stumps_.size());
  for (const RegressionTree& stump : stumps_) stump.Save(s);
  s->VecF64(alphas_);
  s->F64(alpha_total_);
  s->VecF64(importance_);
}

bool AdaBoostClassifier::LoadState(serde::Deserializer* d) {
  if (!d->Tag("adaboost/v1")) return false;
  const uint64_t count = d->U64();
  if (!d->ok() || count > 4096) return false;
  stumps_.assign(count, RegressionTree(TreeOptions{}));
  for (RegressionTree& stump : stumps_) {
    if (!stump.Load(d)) return false;
  }
  alphas_ = d->VecF64();
  alpha_total_ = d->F64();
  importance_ = d->VecF64();
  return d->ok() && alphas_.size() == stumps_.size();
}

void GradientBoostingClassifier::SaveState(serde::Serializer* s) const {
  s->Tag("gbm/v1");
  s->F64(options_.learning_rate);
  s->F64(base_logit_);
  s->U64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.Save(s);
  s->VecF64(importance_);
}

bool GradientBoostingClassifier::LoadState(serde::Deserializer* d) {
  if (!d->Tag("gbm/v1")) return false;
  options_.learning_rate = d->F64();
  base_logit_ = d->F64();
  const uint64_t count = d->U64();
  if (!d->ok() || count > 4096) return false;
  trees_.assign(count, RegressionTree(options_.tree));
  for (RegressionTree& tree : trees_) {
    if (!tree.Load(d)) return false;
  }
  importance_ = d->VecF64();
  return d->ok();
}

}  // namespace wym::ml
