#ifndef WYM_ML_KNN_H_
#define WYM_ML_KNN_H_

#include <cstddef>
#include <vector>

#include "ml/classifier.h"

/// \file
/// k-nearest-neighbours classifier (brute-force Euclidean). Matches the
/// KNN member of the paper's classifier pool.

namespace wym::ml {

/// Options for KNearestNeighbors.
struct KNearestNeighborsOptions {
  size_t k = 5;
  /// Weight votes by inverse distance (ties broken by uniform votes).
  bool distance_weighted = true;
};

/// Distance-weighted kNN.
class KNearestNeighbors : public Classifier {
 public:
  using Options = KNearestNeighborsOptions;

  explicit KNearestNeighbors(Options options = {});

  const char* name() const override { return "KNN"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override {
    return importance_;
  }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  Options options_;
  la::Matrix train_x_;
  std::vector<int> train_y_;
  std::vector<double> importance_;
};

}  // namespace wym::ml

#endif  // WYM_ML_KNN_H_
