#ifndef WYM_ML_LDA_H_
#define WYM_ML_LDA_H_

#include <vector>

#include "ml/classifier.h"

/// \file
/// Linear Discriminant Analysis with a regularized pooled covariance:
/// w = (S + ridge*I)^-1 (mu1 - mu0); the intercept places the decision
/// boundary according to class priors. Exposes exact linear coefficients.

namespace wym::ml {

/// Options for LinearDiscriminant.
struct LinearDiscriminantOptions {
  /// Ridge added to the pooled covariance diagonal.
  double ridge = 1e-3;
};

/// Binary Gaussian LDA classifier.
class LinearDiscriminant : public Classifier {
 public:
  using Options = LinearDiscriminantOptions;

  explicit LinearDiscriminant(Options options = {});

  const char* name() const override { return "LDA"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override { return weights_; }
  bool IsLinear() const override { return true; }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  Options options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace wym::ml

#endif  // WYM_ML_LDA_H_
