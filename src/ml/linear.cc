#include "ml/linear.h"

#include <algorithm>
#include <cmath>

#include "la/kernels.h"
#include "util/logging.h"
#include "util/random.h"

namespace wym::ml {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double DotRow(const std::vector<double>& w, const double* row) {
  return la::kernels::Dot(w.data(), row, w.size());
}

}  // namespace

LogisticRegression::LogisticRegression(Options options) : options_(options) {}

void LogisticRegression::Fit(const la::Matrix& x, const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  const size_t d = x.cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  std::vector<double> grad(d);
  for (size_t it = 0; it < options_.iterations; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.Row(i);
      const double p = Sigmoid(DotRow(weights_, row) + bias_);
      const double err = p - static_cast<double>(y[i]);
      la::kernels::Axpy(err, row, grad.data(), d);
      grad_bias += err;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      weights_[j] -=
          options_.learning_rate * (grad[j] * inv_n + options_.l2 * weights_[j]);
    }
    bias_ -= options_.learning_rate * grad_bias * inv_n;
  }
}

double LogisticRegression::PredictProba(const std::vector<double>& row) const {
  WYM_CHECK_EQ(row.size(), weights_.size());
  return Sigmoid(DotRow(weights_, row.data()) + bias_);
}

LinearSvm::LinearSvm(Options options) : options_(options) {}

double LinearSvm::Margin(const std::vector<double>& row) const {
  WYM_CHECK_EQ(row.size(), weights_.size());
  return DotRow(weights_, row.data()) + bias_;
}

void LinearSvm::Fit(const la::Matrix& x, const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  const size_t d = x.cols();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  size_t t = 0;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      const double eta =
          1.0 / (options_.lambda * static_cast<double>(t));
      const double* row = x.Row(i);
      const double label = y[i] == 1 ? 1.0 : -1.0;
      const double margin = label * (DotRow(weights_, row) + bias_);
      // L2 shrink.
      const double shrink = 1.0 - eta * options_.lambda;
      la::kernels::Scale(shrink, weights_.data(), d);
      if (margin < 1.0) {
        la::kernels::Axpy(eta * label, row, weights_.data(), d);
        bias_ += eta * label;
      }
    }
  }

  // Calibrate the logistic link scale so that the median |margin| maps to
  // a confident-but-not-saturated probability.
  std::vector<double> abs_margins(n);
  for (size_t i = 0; i < n; ++i) {
    abs_margins[i] = std::fabs(DotRow(weights_, x.Row(i)) + bias_);
  }
  std::nth_element(abs_margins.begin(), abs_margins.begin() + n / 2,
                   abs_margins.end());
  const double median = abs_margins[n / 2];
  proba_scale_ = (median > 1e-9) ? 2.0 / median : 2.0;
}

double LinearSvm::PredictProba(const std::vector<double>& row) const {
  return Sigmoid(proba_scale_ * Margin(row));
}

void LogisticRegression::SaveState(serde::Serializer* s) const {
  s->Tag("lr/v1");
  s->VecF64(weights_);
  s->F64(bias_);
}

bool LogisticRegression::LoadState(serde::Deserializer* d) {
  if (!d->Tag("lr/v1")) return false;
  weights_ = d->VecF64();
  bias_ = d->F64();
  return d->ok();
}

void LinearSvm::SaveState(serde::Serializer* s) const {
  s->Tag("svm/v1");
  s->VecF64(weights_);
  s->F64(bias_);
  s->F64(proba_scale_);
}

bool LinearSvm::LoadState(serde::Deserializer* d) {
  if (!d->Tag("svm/v1")) return false;
  weights_ = d->VecF64();
  bias_ = d->F64();
  proba_scale_ = d->F64();
  return d->ok();
}

}  // namespace wym::ml
