#include "ml/classifier.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wym::ml {

std::vector<int> Classifier::PredictBatch(const la::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = Predict(x.RowVector(r));
  return out;
}

namespace internal {

std::vector<double> SurrogateImportance(const la::Matrix& x,
                                        const std::vector<double>& probas) {
  WYM_CHECK_EQ(x.rows(), probas.size());
  const size_t n = x.rows();
  const size_t d = x.cols();
  std::vector<double> importance(d, 0.0);
  if (n < 2) return importance;

  // Log-odds of the fitted probabilities, clamped away from 0/1.
  std::vector<double> logit(n);
  double logit_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double p = std::clamp(probas[i], 1e-6, 1.0 - 1e-6);
    logit[i] = std::log(p / (1.0 - p));
    logit_mean += logit[i];
  }
  logit_mean /= static_cast<double>(n);

  for (size_t j = 0; j < d; ++j) {
    double x_mean = 0.0;
    for (size_t i = 0; i < n; ++i) x_mean += x.At(i, j);
    x_mean /= static_cast<double>(n);
    double cov = 0.0, var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dx = x.At(i, j) - x_mean;
      cov += dx * (logit[i] - logit_mean);
      var += dx * dx;
    }
    importance[j] = (var > 1e-12) ? cov / var : 0.0;
  }
  return importance;
}

}  // namespace internal

}  // namespace wym::ml
