#include "ml/classifier_pool.h"

#include "ml/boosting.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/lda.h"
#include "ml/linear.h"
#include "ml/naive_bayes.h"
#include "ml/tree.h"

namespace wym::ml {

std::vector<std::string> PoolMemberNames() {
  return {"LR", "LDA", "KNN", "DT", "NB", "SVM", "AB", "GBM", "RF", "ET"};
}

std::unique_ptr<Classifier> MakeClassifier(const std::string& name,
                                           uint64_t seed) {
  if (name == "LR") {
    return std::make_unique<LogisticRegression>();
  }
  if (name == "LDA") {
    return std::make_unique<LinearDiscriminant>();
  }
  if (name == "KNN") {
    return std::make_unique<KNearestNeighbors>();
  }
  if (name == "DT") {
    DecisionTreeClassifier::Options options;
    options.seed = seed;
    return std::make_unique<DecisionTreeClassifier>(options);
  }
  if (name == "NB") {
    return std::make_unique<GaussianNaiveBayes>();
  }
  if (name == "SVM") {
    LinearSvm::Options options;
    options.seed = seed;
    return std::make_unique<LinearSvm>(options);
  }
  if (name == "AB") {
    AdaBoostClassifier::Options options;
    options.seed = seed;
    return std::make_unique<AdaBoostClassifier>(options);
  }
  if (name == "GBM") {
    GradientBoostingClassifier::Options options;
    options.seed = seed;
    return std::make_unique<GradientBoostingClassifier>(options);
  }
  if (name == "RF") {
    RandomForestClassifier::Options options;
    options.seed = seed;
    return std::make_unique<RandomForestClassifier>(options);
  }
  if (name == "ET") {
    ExtraTreesClassifier::Options options;
    options.seed = seed;
    return std::make_unique<ExtraTreesClassifier>(options);
  }
  return nullptr;
}

std::vector<std::unique_ptr<Classifier>> MakePool(uint64_t seed) {
  std::vector<std::unique_ptr<Classifier>> pool;
  uint64_t salt = 0;
  for (const std::string& name : PoolMemberNames()) {
    pool.push_back(MakeClassifier(name, seed + 0x9e3779b97f4a7c15ull * ++salt));
  }
  return pool;
}

}  // namespace wym::ml
