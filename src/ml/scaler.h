#ifndef WYM_ML_SCALER_H_
#define WYM_ML_SCALER_H_

#include <vector>

#include "la/matrix.h"
#include "util/serde.h"

/// \file
/// Standardization (zero mean / unit variance) applied by the explainable
/// matcher before training the classifier pool, with the bookkeeping needed
/// to translate coefficients back to the raw feature space for impacts.

namespace wym::ml {

/// Per-feature standardizer.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation (constant columns get
  /// scale 1 so they pass through unchanged).
  void Fit(const la::Matrix& x);

  /// Returns the standardized copy of `x`.
  la::Matrix Transform(const la::Matrix& x) const;

  /// Standardizes a single row.
  std::vector<double> TransformRow(const std::vector<double>& row) const;

  /// Converts a coefficient vector learned on *scaled* features into the
  /// equivalent raw-space coefficients: w_raw[j] = w_scaled[j] / sigma[j].
  std::vector<double> RawCoefficients(
      const std::vector<double>& scaled_coefficients) const;

  /// Serialization (see util/serde.h).
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

  bool fitted() const { return fitted_; }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  bool fitted_ = false;
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace wym::ml

#endif  // WYM_ML_SCALER_H_
