#ifndef WYM_ML_CLASSIFIER_H_
#define WYM_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "la/matrix.h"
#include "util/serde.h"

/// \file
/// Common interface of the ten interpretable binary classifiers WYM's
/// explainable matcher chooses among (paper §4.3: LR, LDA, KNN, CART, NB,
/// SVM, AdaBoost, GBM, RF, ExtraTrees).

namespace wym::ml {

/// Binary classifier over dense double features. Labels are {0, 1};
/// 1 is the matching class.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Short identifier matching the paper's Table 5 column ("LR", "LDA", ...).
  virtual const char* name() const = 0;

  /// Trains on feature rows `x` and labels `y` (x.rows() == y.size() > 0).
  virtual void Fit(const la::Matrix& x, const std::vector<int>& y) = 0;

  /// Probability of the matching class for one feature row.
  virtual double PredictProba(const std::vector<double>& row) const = 0;

  /// Hard prediction at threshold 0.5.
  int Predict(const std::vector<double>& row) const {
    return PredictProba(row) >= 0.5 ? 1 : 0;
  }

  /// Hard predictions for every row of x.
  std::vector<int> PredictBatch(const la::Matrix& x) const;

  /// Signed per-feature attribution used by the explainable matcher's
  /// inverse feature transformation (paper §4.3 "coefficients learned").
  /// Exact coefficients for linear models; for the non-linear pool members
  /// a fitted-margin surrogate (see classifier.cc) computed during Fit.
  virtual std::vector<double> SignedImportance() const = 0;

  /// True when SignedImportance() returns exact model coefficients.
  virtual bool IsLinear() const { return false; }

  /// Serializes the trained state (not training hyper-parameters).
  virtual void SaveState(serde::Serializer* s) const = 0;
  /// Restores SaveState()d state; returns false on malformed input.
  virtual bool LoadState(serde::Deserializer* d) = 0;
};

namespace internal {

/// Surrogate signed importance for non-linear classifiers: the slope of a
/// univariate regression of the model's fitted log-odds on each feature.
/// Positive slope = feature pushes toward match, mirroring a linear
/// coefficient's reading. `probas` are the model's fitted probabilities on
/// the training rows.
std::vector<double> SurrogateImportance(const la::Matrix& x,
                                        const std::vector<double>& probas);

}  // namespace internal

}  // namespace wym::ml

#endif  // WYM_ML_CLASSIFIER_H_
