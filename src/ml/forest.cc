#include "ml/forest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace wym::ml {

TreeEnsembleClassifier::TreeEnsembleClassifier(Options options)
    : options_(options) {}

void TreeEnsembleClassifier::Fit(const la::Matrix& x,
                                 const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  std::vector<double> targets(y.begin(), y.end());

  // sqrt(d) feature subsampling unless the caller pinned max_features.
  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(x.cols()))));
  }

  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.n_trees);
  for (size_t t = 0; t < options_.n_trees; ++t) {
    std::vector<size_t> indices(n);
    if (options_.bootstrap) {
      for (size_t i = 0; i < n; ++i) indices[i] = rng.Index(n);
    } else {
      for (size_t i = 0; i < n; ++i) indices[i] = i;
    }
    RegressionTree tree(tree_options);
    tree.Fit(x, targets, /*weights=*/{}, indices, &rng);
    trees_.push_back(std::move(tree));
  }

  std::vector<double> probas(n);
  for (size_t i = 0; i < n; ++i) probas[i] = PredictProba(x.RowVector(i));
  importance_ = internal::SurrogateImportance(x, probas);
}

double TreeEnsembleClassifier::PredictProba(
    const std::vector<double>& row) const {
  WYM_CHECK(!trees_.empty()) << "ensemble used before Fit";
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(row);
  return std::clamp(sum / static_cast<double>(trees_.size()), 0.0, 1.0);
}

void TreeEnsembleClassifier::SaveState(serde::Serializer* s) const {
  s->Tag("forest/v1");
  s->U64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.Save(s);
  s->VecF64(importance_);
}

bool TreeEnsembleClassifier::LoadState(serde::Deserializer* d) {
  if (!d->Tag("forest/v1")) return false;
  const uint64_t count = d->U64();
  if (!d->ok() || count > 4096) return false;
  trees_.assign(count, RegressionTree(options_.tree));
  for (RegressionTree& tree : trees_) {
    if (!tree.Load(d)) return false;
  }
  importance_ = d->VecF64();
  return d->ok();
}

RandomForestClassifier::RandomForestClassifier(Options options)
    : TreeEnsembleClassifier([&] {
        options.bootstrap = true;
        options.tree.random_thresholds = false;
        return options;
      }()) {}

ExtraTreesClassifier::ExtraTreesClassifier(Options options)
    : TreeEnsembleClassifier([&] {
        options.bootstrap = false;
        options.tree.random_thresholds = true;
        options.seed ^= 0xE7E7;
        return options;
      }()) {}

}  // namespace wym::ml
