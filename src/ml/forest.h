#ifndef WYM_ML_FOREST_H_
#define WYM_ML_FOREST_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/tree.h"

/// \file
/// Bagged tree ensembles of the classifier pool: RandomForest (bootstrap +
/// feature subsampling) and ExtraTrees (full sample + random thresholds).

namespace wym::ml {

/// Options shared by the tree ensembles.
struct TreeEnsembleOptions {
  size_t n_trees = 60;
  TreeOptions tree = {.max_depth = 10,
                      .min_samples_leaf = 1,
                      .min_samples_split = 2,
                      .max_features = 0,
                      .random_thresholds = false};
  bool bootstrap = true;
  uint64_t seed = 0xF0457;
};

/// Shared ensemble machinery; concrete classes fix the sampling policy.
class TreeEnsembleClassifier : public Classifier {
 public:
  using Options = TreeEnsembleOptions;

  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override {
    return importance_;
  }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 protected:
  explicit TreeEnsembleClassifier(Options options);

  Options options_;

 private:
  std::vector<RegressionTree> trees_;
  std::vector<double> importance_;
};

/// Breiman random forest ("RF").
class RandomForestClassifier : public TreeEnsembleClassifier {
 public:
  explicit RandomForestClassifier(Options options = {});
  const char* name() const override { return "RF"; }
};

/// Extremely randomized trees ("ET").
class ExtraTreesClassifier : public TreeEnsembleClassifier {
 public:
  explicit ExtraTreesClassifier(Options options = {});
  const char* name() const override { return "ET"; }
};

}  // namespace wym::ml

#endif  // WYM_ML_FOREST_H_
