#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace wym::ml {

GaussianNaiveBayes::GaussianNaiveBayes(Options options) : options_(options) {}

void GaussianNaiveBayes::Fit(const la::Matrix& x, const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  const size_t d = x.cols();

  size_t counts[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
  }
  for (size_t i = 0; i < n; ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    ++counts[c];
    const double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) mean_[c][j] += row[j];
  }
  for (int c = 0; c < 2; ++c) {
    const double denom = std::max<size_t>(counts[c], 1);
    for (size_t j = 0; j < d; ++j) mean_[c][j] /= static_cast<double>(denom);
  }
  double max_var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    const double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) {
      const double dv = row[j] - mean_[c][j];
      var_[c][j] += dv * dv;
    }
  }
  for (int c = 0; c < 2; ++c) {
    const double denom = std::max<size_t>(counts[c], 1);
    for (size_t j = 0; j < d; ++j) {
      var_[c][j] /= static_cast<double>(denom);
      max_var = std::max(max_var, var_[c][j]);
    }
  }
  const double smoothing = std::max(options_.var_smoothing * max_var, 1e-12);
  for (int c = 0; c < 2; ++c) {
    for (size_t j = 0; j < d; ++j) var_[c][j] += smoothing;
  }
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = std::log(
        std::max(1.0, static_cast<double>(counts[c])) /
        static_cast<double>(n));
  }

  // Signed surrogate importance from fitted probabilities.
  std::vector<double> probas(n);
  for (size_t i = 0; i < n; ++i) probas[i] = PredictProba(x.RowVector(i));
  importance_ = internal::SurrogateImportance(x, probas);
}

double GaussianNaiveBayes::PredictProba(const std::vector<double>& row) const {
  WYM_CHECK_EQ(row.size(), mean_[0].size());
  double log_like[2];
  for (int c = 0; c < 2; ++c) {
    double ll = log_prior_[c];
    for (size_t j = 0; j < row.size(); ++j) {
      const double dv = row[j] - mean_[c][j];
      // wym-lint: allow(kernel-bypass-accumulation): fixed-order scalar loop over strided class stats, not a contiguous dot
      ll += -0.5 * (std::log(2.0 * M_PI * var_[c][j]) + dv * dv / var_[c][j]);
    }
    log_like[c] = ll;
  }
  const double max_ll = std::max(log_like[0], log_like[1]);
  const double e0 = std::exp(log_like[0] - max_ll);
  const double e1 = std::exp(log_like[1] - max_ll);
  return e1 / (e0 + e1);
}

void GaussianNaiveBayes::SaveState(serde::Serializer* s) const {
  s->Tag("nb/v1");
  for (int c = 0; c < 2; ++c) {
    s->VecF64(mean_[c]);
    s->VecF64(var_[c]);
    s->F64(log_prior_[c]);
  }
  s->VecF64(importance_);
}

bool GaussianNaiveBayes::LoadState(serde::Deserializer* d) {
  if (!d->Tag("nb/v1")) return false;
  for (int c = 0; c < 2; ++c) {
    mean_[c] = d->VecF64();
    var_[c] = d->VecF64();
    log_prior_[c] = d->F64();
  }
  importance_ = d->VecF64();
  if (!d->ok() || mean_[0].size() != var_[0].size() ||
      mean_[1].size() != mean_[0].size() ||
      var_[1].size() != var_[0].size()) {
    return false;
  }
  // Variances feed log() and a division: a zero/negative/non-finite one
  // from a damaged stream would poison the likelihood with NaN.
  for (int c = 0; c < 2; ++c) {
    for (const double v : var_[c]) {
      if (!std::isfinite(v) || v <= 0.0) return false;
    }
  }
  return true;
}

}  // namespace wym::ml
