#ifndef WYM_ML_NAIVE_BAYES_H_
#define WYM_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/classifier.h"

/// \file
/// Gaussian Naive Bayes: per-class per-feature normal likelihoods with
/// variance smoothing, matching scikit-learn's GaussianNB used by the
/// reference implementation's classifier pool.

namespace wym::ml {

/// Options for GaussianNaiveBayes.
struct GaussianNaiveBayesOptions {
  /// Added to every variance, as a fraction of the largest feature
  /// variance (scikit-learn's var_smoothing idea).
  double var_smoothing = 1e-9;
};

/// Gaussian NB binary classifier.
class GaussianNaiveBayes : public Classifier {
 public:
  using Options = GaussianNaiveBayesOptions;

  explicit GaussianNaiveBayes(Options options = {});

  const char* name() const override { return "NB"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override {
    return importance_;
  }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  Options options_;
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> importance_;
};

}  // namespace wym::ml

#endif  // WYM_ML_NAIVE_BAYES_H_
