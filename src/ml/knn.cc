#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "la/kernels.h"
#include "util/logging.h"

namespace wym::ml {

KNearestNeighbors::KNearestNeighbors(Options options) : options_(options) {}

void KNearestNeighbors::Fit(const la::Matrix& x, const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  train_x_ = x;
  train_y_ = y;

  // Surrogate importance from leave-in fitted probabilities on a sample
  // (full n^2 would dominate training time on larger datasets).
  const size_t sample = std::min<size_t>(x.rows(), 512);
  la::Matrix sample_x(sample, x.cols());
  std::vector<double> probas(sample);
  for (size_t i = 0; i < sample; ++i) {
    for (size_t j = 0; j < x.cols(); ++j) sample_x.At(i, j) = x.At(i, j);
    probas[i] = PredictProba(x.RowVector(i));
  }
  importance_ = internal::SurrogateImportance(sample_x, probas);
}

double KNearestNeighbors::PredictProba(const std::vector<double>& row) const {
  WYM_CHECK_GT(train_x_.rows(), 0u) << "KNN used before Fit";
  WYM_CHECK_EQ(row.size(), train_x_.cols());
  const size_t n = train_x_.rows();
  const size_t k = std::min(options_.k, n);

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int>> distances(n);
  for (size_t i = 0; i < n; ++i) {
    distances[i] = {
        la::kernels::SquaredDistance(row.data(), train_x_.Row(i), row.size()),
        train_y_[i]};
  }
  std::nth_element(distances.begin(), distances.begin() + (k - 1),
                   distances.end());

  double vote1 = 0.0, total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double weight =
        options_.distance_weighted
            ? 1.0 / (std::sqrt(distances[i].first) + 1e-6)
            : 1.0;
    total += weight;
    if (distances[i].second == 1) vote1 += weight;
  }
  return total > 0.0 ? vote1 / total : 0.5;
}

void KNearestNeighbors::SaveState(serde::Serializer* s) const {
  s->Tag("knn/v1");
  s->U64(options_.k);
  s->Bool(options_.distance_weighted);
  train_x_.Save(s);
  std::vector<uint64_t> labels(train_y_.begin(), train_y_.end());
  s->VecU64(labels);
  s->VecF64(importance_);
}

bool KNearestNeighbors::LoadState(serde::Deserializer* d) {
  if (!d->Tag("knn/v1")) return false;
  options_.k = d->U64();
  options_.distance_weighted = d->Bool();
  if (!train_x_.Load(d)) return false;
  const std::vector<uint64_t> labels = d->VecU64();
  train_y_.assign(labels.begin(), labels.end());
  importance_ = d->VecF64();
  // k = 0 from a damaged stream would wrap `begin() + (k - 1)` in
  // PredictProba's nth_element far past the end.
  return d->ok() && options_.k >= 1 && train_y_.size() == train_x_.rows();
}

}  // namespace wym::ml
