#include "ml/scaler.h"

#include <cmath>

#include "util/logging.h"

namespace wym::ml {

void StandardScaler::Fit(const la::Matrix& x) {
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  const size_t d = x.cols();
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += x.At(i, j);
    mean_[j] = sum / static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dv = x.At(i, j) - mean_[j];
      var += dv * dv;
    }
    const double sd = std::sqrt(var / static_cast<double>(n));
    scale_[j] = (sd > 1e-9) ? sd : 1.0;
  }
  fitted_ = true;
}

la::Matrix StandardScaler::Transform(const la::Matrix& x) const {
  WYM_CHECK(fitted_);
  WYM_CHECK_EQ(x.cols(), mean_.size());
  la::Matrix out(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      out.At(i, j) = (x.At(i, j) - mean_[j]) / scale_[j];
    }
  }
  return out;
}

std::vector<double> StandardScaler::TransformRow(
    const std::vector<double>& row) const {
  WYM_CHECK(fitted_);
  WYM_CHECK_EQ(row.size(), mean_.size());
  std::vector<double> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / scale_[j];
  }
  return out;
}

std::vector<double> StandardScaler::RawCoefficients(
    const std::vector<double>& scaled_coefficients) const {
  WYM_CHECK(fitted_);
  WYM_CHECK_EQ(scaled_coefficients.size(), scale_.size());
  std::vector<double> out(scaled_coefficients.size());
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = scaled_coefficients[j] / scale_[j];
  }
  return out;
}

void StandardScaler::Save(serde::Serializer* s) const {
  s->Tag("scaler/v1");
  s->Bool(fitted_);
  s->VecF64(mean_);
  s->VecF64(scale_);
}

bool StandardScaler::Load(serde::Deserializer* d) {
  if (!d->Tag("scaler/v1")) return false;
  fitted_ = d->Bool();
  mean_ = d->VecF64();
  scale_ = d->VecF64();
  if (!d->ok() || mean_.size() != scale_.size()) return false;
  // Every scale entry is a divisor; Fit guarantees them positive, so a
  // zero/negative/non-finite one can only come from a damaged stream.
  for (const double s : scale_) {
    if (!std::isfinite(s) || s <= 0.0) return false;
  }
  return true;
}

}  // namespace wym::ml
