#ifndef WYM_ML_LINEAR_H_
#define WYM_ML_LINEAR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/classifier.h"

/// \file
/// Linear pool members: logistic regression (LR) and a linear soft-margin
/// SVM. Both expose exact coefficients, which the explainable matcher's
/// inverse transformation prefers (paper §4.3).

namespace wym::ml {

/// Options for LogisticRegression.
struct LogisticRegressionOptions {
  size_t iterations = 300;
  double learning_rate = 0.5;
  double l2 = 1e-3;
};

/// L2-regularized logistic regression trained with full-batch gradient
/// descent. Expects standardized features.
class LogisticRegression : public Classifier {
 public:
  using Options = LogisticRegressionOptions;

  explicit LogisticRegression(Options options = {});

  const char* name() const override { return "LR"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override { return weights_; }
  bool IsLinear() const override { return true; }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

  double intercept() const { return bias_; }

 private:
  Options options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Options for LinearSvm.
struct LinearSvmOptions {
  size_t epochs = 60;
  double lambda = 1e-3;
  uint64_t seed = 0x57a9;
};

/// Linear SVM with hinge loss and L2 regularization, trained with SGD
/// (Pegasos-style). Probabilities come from a logistic link on the margin.
class LinearSvm : public Classifier {
 public:
  using Options = LinearSvmOptions;

  explicit LinearSvm(Options options = {});

  const char* name() const override { return "SVM"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override { return weights_; }
  bool IsLinear() const override { return true; }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  double Margin(const std::vector<double>& row) const;

  Options options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  /// Platt-style scale fitted on training margins.
  double proba_scale_ = 2.0;
};

}  // namespace wym::ml

#endif  // WYM_ML_LINEAR_H_
