#ifndef WYM_ML_CLASSIFIER_POOL_H_
#define WYM_ML_CLASSIFIER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

/// \file
/// Factory for the paper's pool of ten interpretable classifiers
/// (§4.3: LR, LDA, KNN, DT/CART, NB, SVM, AB, GBM, RF, ET).

namespace wym::ml {

/// Names of the pool members in the paper's Table 5 order.
std::vector<std::string> PoolMemberNames();

/// Creates one pool member by its short name (see PoolMemberNames).
/// Returns nullptr for an unknown name. `seed` drives any stochastic
/// training inside the model.
std::unique_ptr<Classifier> MakeClassifier(const std::string& name,
                                           uint64_t seed);

/// Creates the full pool in Table 5 order.
std::vector<std::unique_ptr<Classifier>> MakePool(uint64_t seed);

}  // namespace wym::ml

#endif  // WYM_ML_CLASSIFIER_POOL_H_
