#ifndef WYM_ML_METRICS_H_
#define WYM_ML_METRICS_H_

#include <cstddef>
#include <vector>

/// \file
/// Binary classification metrics. All experiments in the paper report F1
/// on the matching class.

namespace wym::ml {

/// Confusion counts for binary labels (positive class = 1).
struct Confusion {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t true_negative = 0;
  size_t false_negative = 0;
};

/// Tallies predictions against ground truth (equal, non-empty sizes).
Confusion Confuse(const std::vector<int>& truth,
                  const std::vector<int>& predicted);

/// Precision of the positive class; 0 when undefined.
double Precision(const Confusion& c);

/// Recall of the positive class; 0 when undefined.
double Recall(const Confusion& c);

/// F1 of the positive class; 0 when undefined.
double F1(const Confusion& c);

/// Convenience: F1 straight from label vectors.
double F1Score(const std::vector<int>& truth,
               const std::vector<int>& predicted);

/// Fraction of equal labels.
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

/// The probability threshold maximizing F1 on (probas, labels) — the
/// standard decision-threshold calibration EM systems run on the
/// validation split (class priors are heavily skewed: most benchmark
/// datasets have ~10% matches). Returns 0.5 on degenerate inputs.
double BestF1Threshold(const std::vector<double>& probas,
                       const std::vector<int>& labels);

/// Monotone piecewise-linear recalibration mapping `threshold` to 0.5, so
/// that downstream consumers can keep comparing probabilities against
/// 0.5. Identity when threshold == 0.5.
double RecalibrateProba(double proba, double threshold);

}  // namespace wym::ml

#endif  // WYM_ML_METRICS_H_
