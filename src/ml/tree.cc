#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace wym::ml {

namespace {

/// Weighted mean of y over indices [begin, end).
double WeightedMean(const std::vector<double>& y,
                    const std::vector<double>& weights,
                    const std::vector<size_t>& indices, size_t begin,
                    size_t end) {
  double sum = 0.0, total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t idx = indices[i];
    const double w = weights.empty() ? 1.0 : weights[idx];
    sum += w * y[idx];
    total += w;
  }
  return total > 0.0 ? sum / total : 0.0;
}

}  // namespace

RegressionTree::RegressionTree(TreeOptions options) : options_(options) {}

void RegressionTree::Fit(const la::Matrix& x, const std::vector<double>& y,
                         const std::vector<double>& weights,
                         const std::vector<size_t>& indices, Rng* rng) {
  WYM_CHECK(!indices.empty());
  WYM_CHECK_EQ(x.rows(), y.size());
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<size_t> working = indices;
  Grow(x, y, weights, &working, 0, working.size(), 0, rng);
}

int RegressionTree::Grow(const la::Matrix& x, const std::vector<double>& y,
                         const std::vector<double>& weights,
                         std::vector<size_t>* indices, size_t begin,
                         size_t end, size_t depth, Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = WeightedMean(y, weights, *indices, begin, end);

  const size_t count = end - begin;
  if (depth >= options_.max_depth || count < options_.min_samples_split) {
    return node_id;
  }

  // Parent impurity statistics (weighted sum of squares decomposition).
  double w_total = 0.0, wy_total = 0.0, wyy_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t idx = (*indices)[i];
    const double w = weights.empty() ? 1.0 : weights[idx];
    const double v = y[idx];
    w_total += w;
    wy_total += w * v;
    wyy_total += w * v * v;
  }
  if (w_total <= 0.0) return node_id;
  const double parent_sse = wyy_total - wy_total * wy_total / w_total;
  if (parent_sse <= 1e-12) return node_id;  // Pure node.

  // Feature subset.
  const size_t d = x.cols();
  std::vector<size_t> features(d);
  for (size_t j = 0; j < d; ++j) features[j] = j;
  size_t feature_count = d;
  if (options_.max_features > 0 && options_.max_features < d) {
    WYM_CHECK(rng != nullptr);
    rng->Shuffle(&features);
    feature_count = options_.max_features;
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;

  std::vector<std::pair<double, size_t>> sorted;  // (value, sample index)
  sorted.reserve(count);

  for (size_t f = 0; f < feature_count; ++f) {
    const size_t feature = features[f];

    if (options_.random_thresholds) {
      // ExtraTrees: a single uniform threshold in the node's value range.
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t i = begin; i < end; ++i) {
        const double v = x.At((*indices)[i], feature);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi <= lo) continue;
      WYM_CHECK(rng != nullptr);
      const double threshold = rng->Uniform(lo, hi);
      double wl = 0.0, wyl = 0.0, wyyl = 0.0;
      size_t left_count = 0;
      for (size_t i = begin; i < end; ++i) {
        const size_t idx = (*indices)[i];
        if (x.At(idx, feature) > threshold) continue;
        const double w = weights.empty() ? 1.0 : weights[idx];
        const double v = y[idx];
        wl += w;
        wyl += w * v;
        wyyl += w * v * v;
        ++left_count;
      }
      const size_t right_count = count - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf || wl <= 0.0 ||
          w_total - wl <= 0.0) {
        continue;
      }
      const double left_sse = wyyl - wyl * wyl / wl;
      const double wr = w_total - wl;
      const double wyr = wy_total - wyl;
      const double wyyr = wyy_total - wyyl;
      const double right_sse = wyyr - wyr * wyr / wr;
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = threshold;
      }
      continue;
    }

    // Exact scan over sorted cut points.
    sorted.clear();
    for (size_t i = begin; i < end; ++i) {
      const size_t idx = (*indices)[i];
      sorted.emplace_back(x.At(idx, feature), idx);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    double wl = 0.0, wyl = 0.0, wyyl = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const size_t idx = sorted[i].second;
      const double w = weights.empty() ? 1.0 : weights[idx];
      const double v = y[idx];
      wl += w;
      wyl += w * v;
      wyyl += w * v * v;
      // Only cut between distinct values.
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t left_count = i + 1;
      const size_t right_count = count - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf) {
        continue;
      }
      const double wr = w_total - wl;
      if (wl <= 0.0 || wr <= 0.0) continue;
      const double left_sse = wyyl - wyl * wyl / wl;
      const double wyr = wy_total - wyl;
      const double wyyr = wyy_total - wyyl;
      const double right_sse = wyyr - wyr * wyr / wr;
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition indices in place.
  auto middle = std::partition(
      indices->begin() + begin, indices->begin() + end,
      [&](size_t idx) { return x.At(idx, best_feature) <= best_threshold; });
  const size_t split = static_cast<size_t>(middle - indices->begin());
  if (split == begin || split == end) return node_id;  // Numeric edge case.

  importance_[best_feature] += best_gain;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Grow(x, y, weights, indices, begin, split, depth + 1, rng);
  nodes_[node_id].left = left;
  const int right = Grow(x, y, weights, indices, split, end, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const double* row) const {
  WYM_CHECK(!nodes_.empty()) << "RegressionTree used before Fit";
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = (row[nodes_[node].feature] <= nodes_[node].threshold)
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

void RegressionTree::Save(serde::Serializer* s) const {
  s->Tag("tree/v1");
  s->U64(nodes_.size());
  for (const Node& node : nodes_) {
    s->I64(node.feature);
    s->F64(node.threshold);
    s->I64(node.left);
    s->I64(node.right);
    s->F64(node.value);
  }
  s->VecF64(importance_);
}

bool RegressionTree::Load(serde::Deserializer* d) {
  if (!d->Tag("tree/v1")) return false;
  const uint64_t count = d->U64();
  if (!d->ok() || count > (1u << 26)) return false;
  nodes_.assign(count, {});
  for (Node& node : nodes_) {
    node.feature = static_cast<int>(d->I64());
    node.threshold = d->F64();
    node.left = static_cast<int>(d->I64());
    node.right = static_cast<int>(d->I64());
    node.value = d->F64();
  }
  importance_ = d->VecF64();
  if (!d->ok()) return false;
  // Structural sanity: children must stay in bounds.
  for (const Node& node : nodes_) {
    if (node.feature >= 0 &&
        (node.left < 0 || node.right < 0 ||
         static_cast<size_t>(node.left) >= nodes_.size() ||
         static_cast<size_t>(node.right) >= nodes_.size())) {
      return false;
    }
  }
  return true;
}

DecisionTreeClassifier::DecisionTreeClassifier(Options options)
    : options_(options), tree_(options.tree) {}

void DecisionTreeClassifier::Fit(const la::Matrix& x,
                                 const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  std::vector<double> targets(y.begin(), y.end());
  std::vector<size_t> indices(x.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(options_.seed);
  tree_ = RegressionTree(options_.tree);
  tree_.Fit(x, targets, /*weights=*/{}, indices, &rng);

  std::vector<double> probas(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    probas[i] = tree_.Predict(x.Row(i));
  }
  importance_ = internal::SurrogateImportance(x, probas);
}

double DecisionTreeClassifier::PredictProba(
    const std::vector<double>& row) const {
  return std::clamp(tree_.Predict(row), 0.0, 1.0);
}

void DecisionTreeClassifier::SaveState(serde::Serializer* s) const {
  s->Tag("dt/v1");
  tree_.Save(s);
  s->VecF64(importance_);
}

bool DecisionTreeClassifier::LoadState(serde::Deserializer* d) {
  if (!d->Tag("dt/v1")) return false;
  if (!tree_.Load(d)) return false;
  importance_ = d->VecF64();
  return d->ok();
}

}  // namespace wym::ml
