#ifndef WYM_ML_TREE_H_
#define WYM_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "ml/classifier.h"
#include "util/random.h"

/// \file
/// Regression-tree core shared by CART, RandomForest, ExtraTrees, the
/// AdaBoost stumps and GradientBoosting. For binary classification the
/// tree regresses 0/1 targets: minimizing weighted variance is equivalent
/// to minimizing Gini impurity, and leaf means are class-1 probabilities.

namespace wym::ml {

/// Split/grow controls.
struct TreeOptions {
  size_t max_depth = 10;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Features examined per split; 0 = all (CART), sqrt(d) for forests.
  size_t max_features = 0;
  /// ExtraTrees: draw one uniform threshold per candidate feature instead
  /// of scanning all cut points.
  bool random_thresholds = false;
};

/// A fitted regression tree (flat node array).
class RegressionTree {
 public:
  explicit RegressionTree(TreeOptions options = {});

  /// Fits on the rows of x listed in `indices` against targets y with
  /// per-sample weights (pass empty weights for uniform).
  void Fit(const la::Matrix& x, const std::vector<double>& y,
           const std::vector<double>& weights,
           const std::vector<size_t>& indices, Rng* rng);

  /// Predicted value for a feature row.
  double Predict(const double* row) const;
  double Predict(const std::vector<double>& row) const {
    return Predict(row.data());
  }

  /// Total impurity decrease attributed to each feature (unsigned).
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  size_t node_count() const { return nodes_.size(); }
  bool fitted() const { return !nodes_.empty(); }

  /// Serialization (see util/serde.h).
  void Save(serde::Serializer* s) const;
  bool Load(serde::Deserializer* d);

 private:
  struct Node {
    int feature = -1;  // -1 = leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  int Grow(const la::Matrix& x, const std::vector<double>& y,
           const std::vector<double>& weights, std::vector<size_t>* indices,
           size_t begin, size_t end, size_t depth, Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

/// Options for DecisionTreeClassifier.
struct DecisionTreeClassifierOptions {
  TreeOptions tree;
  uint64_t seed = 0xCA27;
};

/// CART decision-tree classifier (pool member "DT" / "CART").
class DecisionTreeClassifier : public Classifier {
 public:
  using Options = DecisionTreeClassifierOptions;

  explicit DecisionTreeClassifier(Options options = {});

  const char* name() const override { return "DT"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override {
    return importance_;
  }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  Options options_;
  RegressionTree tree_;
  std::vector<double> importance_;
};

}  // namespace wym::ml

#endif  // WYM_ML_TREE_H_
