#include "ml/lda.h"

#include <cmath>

#include "la/kernels.h"
#include "util/logging.h"

namespace wym::ml {

LinearDiscriminant::LinearDiscriminant(Options options) : options_(options) {}

void LinearDiscriminant::Fit(const la::Matrix& x, const std::vector<int>& y) {
  WYM_CHECK_EQ(x.rows(), y.size());
  WYM_CHECK_GT(x.rows(), 0u);
  const size_t n = x.rows();
  const size_t d = x.cols();

  // Class means and priors.
  std::vector<double> mean0(d, 0.0), mean1(d, 0.0);
  size_t n0 = 0, n1 = 0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    if (y[i] == 1) {
      ++n1;
      for (size_t j = 0; j < d; ++j) mean1[j] += row[j];
    } else {
      ++n0;
      for (size_t j = 0; j < d; ++j) mean0[j] += row[j];
    }
  }
  if (n0 == 0 || n1 == 0) {
    // Degenerate single-class training set: constant prediction.
    weights_.assign(d, 0.0);
    bias_ = (n1 > 0) ? 10.0 : -10.0;
    return;
  }
  for (size_t j = 0; j < d; ++j) {
    mean0[j] /= static_cast<double>(n0);
    mean1[j] /= static_cast<double>(n1);
  }

  // Pooled within-class covariance.
  la::Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    const std::vector<double>& mean = (y[i] == 1) ? mean1 : mean0;
    for (size_t a = 0; a < d; ++a) {
      const double da = row[a] - mean[a];
      if (da == 0.0) continue;
      for (size_t b = 0; b < d; ++b) {
        cov.At(a, b) += da * (row[b] - mean[b]);
      }
    }
  }
  const double denom = static_cast<double>(n - 2 > 0 ? n - 2 : 1);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) cov.At(a, b) /= denom;
  }

  // w = Cov^-1 (mu1 - mu0).
  std::vector<double> diff(d);
  for (size_t j = 0; j < d; ++j) diff[j] = mean1[j] - mean0[j];
  weights_ = la::SolveLinearSystem(cov, diff, options_.ridge);

  // Intercept: -w.(mu0+mu1)/2 + log(p1/p0).
  std::vector<double> mean_sum(d);
  for (size_t j = 0; j < d; ++j) mean_sum[j] = mean0[j] + mean1[j];
  const double mid = la::kernels::Dot(weights_.data(), mean_sum.data(), d);
  bias_ = -0.5 * mid + std::log(static_cast<double>(n1) /
                                static_cast<double>(n0));
}

double LinearDiscriminant::PredictProba(const std::vector<double>& row) const {
  WYM_CHECK_EQ(row.size(), weights_.size());
  const double z =
      bias_ + la::kernels::Dot(weights_.data(), row.data(), row.size());
  return 1.0 / (1.0 + std::exp(-z));
}

void LinearDiscriminant::SaveState(serde::Serializer* s) const {
  s->Tag("lda/v1");
  s->VecF64(weights_);
  s->F64(bias_);
}

bool LinearDiscriminant::LoadState(serde::Deserializer* d) {
  if (!d->Tag("lda/v1")) return false;
  weights_ = d->VecF64();
  bias_ = d->F64();
  if (!d->ok() || !std::isfinite(bias_)) return false;
  // A single non-finite weight would turn every prediction into NaN.
  for (const double w : weights_) {
    if (!std::isfinite(w)) return false;
  }
  return true;
}

}  // namespace wym::ml
