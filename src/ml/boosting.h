#ifndef WYM_ML_BOOSTING_H_
#define WYM_ML_BOOSTING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "ml/tree.h"

/// \file
/// Boosted pool members: discrete AdaBoost over decision stumps ("AB") and
/// gradient boosting with log-loss pseudo-residuals ("GBM").

namespace wym::ml {

/// Options for AdaBoostClassifier.
struct AdaBoostOptions {
  size_t n_estimators = 50;
  uint64_t seed = 0xADAB;
};

/// Discrete AdaBoost with depth-1 trees.
class AdaBoostClassifier : public Classifier {
 public:
  using Options = AdaBoostOptions;

  explicit AdaBoostClassifier(Options options = {});

  const char* name() const override { return "AB"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override {
    return importance_;
  }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  /// Weighted ensemble score in (-inf, inf); positive = class 1.
  double Score(const std::vector<double>& row) const;

  Options options_;
  std::vector<RegressionTree> stumps_;
  std::vector<double> alphas_;
  double alpha_total_ = 0.0;
  std::vector<double> importance_;
};

/// Options for GradientBoostingClassifier.
struct GradientBoostingOptions {
  size_t n_estimators = 60;
  double learning_rate = 0.1;
  TreeOptions tree = {.max_depth = 3,
                      .min_samples_leaf = 2,
                      .min_samples_split = 4,
                      .max_features = 0,
                      .random_thresholds = false};
  uint64_t seed = 0x96b0057;
};

/// Gradient boosting on the binomial deviance.
class GradientBoostingClassifier : public Classifier {
 public:
  using Options = GradientBoostingOptions;

  explicit GradientBoostingClassifier(Options options = {});

  const char* name() const override { return "GBM"; }
  void Fit(const la::Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& row) const override;
  std::vector<double> SignedImportance() const override {
    return importance_;
  }
  void SaveState(serde::Serializer* s) const override;
  bool LoadState(serde::Deserializer* d) override;

 private:
  double Logit(const std::vector<double>& row) const;

  Options options_;
  double base_logit_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> importance_;
};

}  // namespace wym::ml

#endif  // WYM_ML_BOOSTING_H_
