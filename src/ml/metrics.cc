#include "ml/metrics.h"

#include "util/logging.h"

namespace wym::ml {

Confusion Confuse(const std::vector<int>& truth,
                  const std::vector<int>& predicted) {
  WYM_CHECK_EQ(truth.size(), predicted.size());
  Confusion c;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      if (predicted[i] == 1) {
        ++c.true_positive;
      } else {
        ++c.false_negative;
      }
    } else {
      if (predicted[i] == 1) {
        ++c.false_positive;
      } else {
        ++c.true_negative;
      }
    }
  }
  return c;
}

double Precision(const Confusion& c) {
  const size_t denom = c.true_positive + c.false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(c.true_positive) / static_cast<double>(denom);
}

double Recall(const Confusion& c) {
  const size_t denom = c.true_positive + c.false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(c.true_positive) / static_cast<double>(denom);
}

double F1(const Confusion& c) {
  const double p = Precision(c);
  const double r = Recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double F1Score(const std::vector<int>& truth,
               const std::vector<int>& predicted) {
  return F1(Confuse(truth, predicted));
}

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  WYM_CHECK_EQ(truth.size(), predicted.size());
  if (truth.empty()) return 0.0;
  size_t equal = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(truth.size());
}

double BestF1Threshold(const std::vector<double>& probas,
                       const std::vector<int>& labels) {
  WYM_CHECK_EQ(probas.size(), labels.size());
  if (probas.empty()) return 0.5;
  double best_threshold = 0.5;
  double best_f1 = -1.0;
  std::vector<int> predicted(probas.size());
  for (int step = 1; step < 40; ++step) {
    const double threshold = 0.025 * step;
    for (size_t i = 0; i < probas.size(); ++i) {
      predicted[i] = probas[i] >= threshold ? 1 : 0;
    }
    const double f1 = F1Score(labels, predicted);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

double RecalibrateProba(double proba, double threshold) {
  if (threshold <= 0.0 || threshold >= 1.0) return proba;
  if (proba <= threshold) return 0.5 * proba / threshold;
  return 0.5 + 0.5 * (proba - threshold) / (1.0 - threshold);
}

}  // namespace wym::ml
