# Empty dependencies file for wym_util.
# This may be replaced when dependencies are built.
