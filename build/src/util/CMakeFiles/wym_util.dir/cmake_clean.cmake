file(REMOVE_RECURSE
  "CMakeFiles/wym_util.dir/stats.cc.o"
  "CMakeFiles/wym_util.dir/stats.cc.o.d"
  "CMakeFiles/wym_util.dir/status.cc.o"
  "CMakeFiles/wym_util.dir/status.cc.o.d"
  "CMakeFiles/wym_util.dir/string_util.cc.o"
  "CMakeFiles/wym_util.dir/string_util.cc.o.d"
  "CMakeFiles/wym_util.dir/table.cc.o"
  "CMakeFiles/wym_util.dir/table.cc.o.d"
  "libwym_util.a"
  "libwym_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
