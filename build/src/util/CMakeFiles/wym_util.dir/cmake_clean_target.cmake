file(REMOVE_RECURSE
  "libwym_util.a"
)
