# Empty compiler generated dependencies file for wym_la.
# This may be replaced when dependencies are built.
