file(REMOVE_RECURSE
  "CMakeFiles/wym_la.dir/eigen.cc.o"
  "CMakeFiles/wym_la.dir/eigen.cc.o.d"
  "CMakeFiles/wym_la.dir/matrix.cc.o"
  "CMakeFiles/wym_la.dir/matrix.cc.o.d"
  "CMakeFiles/wym_la.dir/sparse_matrix.cc.o"
  "CMakeFiles/wym_la.dir/sparse_matrix.cc.o.d"
  "CMakeFiles/wym_la.dir/vector_ops.cc.o"
  "CMakeFiles/wym_la.dir/vector_ops.cc.o.d"
  "libwym_la.a"
  "libwym_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
