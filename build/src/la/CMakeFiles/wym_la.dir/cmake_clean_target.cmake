file(REMOVE_RECURSE
  "libwym_la.a"
)
