file(REMOVE_RECURSE
  "libwym_explain.a"
)
