
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/counterfactual.cc" "src/explain/CMakeFiles/wym_explain.dir/counterfactual.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/counterfactual.cc.o.d"
  "/root/repo/src/explain/evaluation.cc" "src/explain/CMakeFiles/wym_explain.dir/evaluation.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/evaluation.cc.o.d"
  "/root/repo/src/explain/global.cc" "src/explain/CMakeFiles/wym_explain.dir/global.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/global.cc.o.d"
  "/root/repo/src/explain/landmark.cc" "src/explain/CMakeFiles/wym_explain.dir/landmark.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/landmark.cc.o.d"
  "/root/repo/src/explain/lime.cc" "src/explain/CMakeFiles/wym_explain.dir/lime.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/lime.cc.o.d"
  "/root/repo/src/explain/report.cc" "src/explain/CMakeFiles/wym_explain.dir/report.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/report.cc.o.d"
  "/root/repo/src/explain/token_explanation.cc" "src/explain/CMakeFiles/wym_explain.dir/token_explanation.cc.o" "gcc" "src/explain/CMakeFiles/wym_explain.dir/token_explanation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wym_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/wym_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wym_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wym_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/wym_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/wym_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/wym_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
