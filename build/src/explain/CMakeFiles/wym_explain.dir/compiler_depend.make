# Empty compiler generated dependencies file for wym_explain.
# This may be replaced when dependencies are built.
