file(REMOVE_RECURSE
  "CMakeFiles/wym_explain.dir/counterfactual.cc.o"
  "CMakeFiles/wym_explain.dir/counterfactual.cc.o.d"
  "CMakeFiles/wym_explain.dir/evaluation.cc.o"
  "CMakeFiles/wym_explain.dir/evaluation.cc.o.d"
  "CMakeFiles/wym_explain.dir/global.cc.o"
  "CMakeFiles/wym_explain.dir/global.cc.o.d"
  "CMakeFiles/wym_explain.dir/landmark.cc.o"
  "CMakeFiles/wym_explain.dir/landmark.cc.o.d"
  "CMakeFiles/wym_explain.dir/lime.cc.o"
  "CMakeFiles/wym_explain.dir/lime.cc.o.d"
  "CMakeFiles/wym_explain.dir/report.cc.o"
  "CMakeFiles/wym_explain.dir/report.cc.o.d"
  "CMakeFiles/wym_explain.dir/token_explanation.cc.o"
  "CMakeFiles/wym_explain.dir/token_explanation.cc.o.d"
  "libwym_explain.a"
  "libwym_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
