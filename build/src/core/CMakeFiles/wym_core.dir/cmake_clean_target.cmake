file(REMOVE_RECURSE
  "libwym_core.a"
)
