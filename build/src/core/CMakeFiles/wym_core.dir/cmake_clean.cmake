file(REMOVE_RECURSE
  "CMakeFiles/wym_core.dir/decision_unit.cc.o"
  "CMakeFiles/wym_core.dir/decision_unit.cc.o.d"
  "CMakeFiles/wym_core.dir/explainable_matcher.cc.o"
  "CMakeFiles/wym_core.dir/explainable_matcher.cc.o.d"
  "CMakeFiles/wym_core.dir/feature_extractor.cc.o"
  "CMakeFiles/wym_core.dir/feature_extractor.cc.o.d"
  "CMakeFiles/wym_core.dir/relevance_scorer.cc.o"
  "CMakeFiles/wym_core.dir/relevance_scorer.cc.o.d"
  "CMakeFiles/wym_core.dir/tokenized_record.cc.o"
  "CMakeFiles/wym_core.dir/tokenized_record.cc.o.d"
  "CMakeFiles/wym_core.dir/unit_generator.cc.o"
  "CMakeFiles/wym_core.dir/unit_generator.cc.o.d"
  "CMakeFiles/wym_core.dir/wym.cc.o"
  "CMakeFiles/wym_core.dir/wym.cc.o.d"
  "libwym_core.a"
  "libwym_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
