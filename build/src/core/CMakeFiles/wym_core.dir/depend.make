# Empty dependencies file for wym_core.
# This may be replaced when dependencies are built.
