
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decision_unit.cc" "src/core/CMakeFiles/wym_core.dir/decision_unit.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/decision_unit.cc.o.d"
  "/root/repo/src/core/explainable_matcher.cc" "src/core/CMakeFiles/wym_core.dir/explainable_matcher.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/explainable_matcher.cc.o.d"
  "/root/repo/src/core/feature_extractor.cc" "src/core/CMakeFiles/wym_core.dir/feature_extractor.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/feature_extractor.cc.o.d"
  "/root/repo/src/core/relevance_scorer.cc" "src/core/CMakeFiles/wym_core.dir/relevance_scorer.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/relevance_scorer.cc.o.d"
  "/root/repo/src/core/tokenized_record.cc" "src/core/CMakeFiles/wym_core.dir/tokenized_record.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/tokenized_record.cc.o.d"
  "/root/repo/src/core/unit_generator.cc" "src/core/CMakeFiles/wym_core.dir/unit_generator.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/unit_generator.cc.o.d"
  "/root/repo/src/core/wym.cc" "src/core/CMakeFiles/wym_core.dir/wym.cc.o" "gcc" "src/core/CMakeFiles/wym_core.dir/wym.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wym_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/wym_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/wym_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/wym_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/wym_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wym_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
