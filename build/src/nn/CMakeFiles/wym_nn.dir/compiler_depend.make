# Empty compiler generated dependencies file for wym_nn.
# This may be replaced when dependencies are built.
