file(REMOVE_RECURSE
  "libwym_nn.a"
)
