file(REMOVE_RECURSE
  "CMakeFiles/wym_nn.dir/mlp.cc.o"
  "CMakeFiles/wym_nn.dir/mlp.cc.o.d"
  "libwym_nn.a"
  "libwym_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
