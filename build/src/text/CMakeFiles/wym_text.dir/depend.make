# Empty dependencies file for wym_text.
# This may be replaced when dependencies are built.
