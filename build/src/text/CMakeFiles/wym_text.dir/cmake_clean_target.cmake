file(REMOVE_RECURSE
  "libwym_text.a"
)
