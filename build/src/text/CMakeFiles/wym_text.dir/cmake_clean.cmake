file(REMOVE_RECURSE
  "CMakeFiles/wym_text.dir/string_metrics.cc.o"
  "CMakeFiles/wym_text.dir/string_metrics.cc.o.d"
  "CMakeFiles/wym_text.dir/tokenizer.cc.o"
  "CMakeFiles/wym_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/wym_text.dir/vocabulary.cc.o"
  "CMakeFiles/wym_text.dir/vocabulary.cc.o.d"
  "libwym_text.a"
  "libwym_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
