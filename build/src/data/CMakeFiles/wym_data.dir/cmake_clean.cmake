file(REMOVE_RECURSE
  "CMakeFiles/wym_data.dir/augmentation.cc.o"
  "CMakeFiles/wym_data.dir/augmentation.cc.o.d"
  "CMakeFiles/wym_data.dir/benchmark_gen.cc.o"
  "CMakeFiles/wym_data.dir/benchmark_gen.cc.o.d"
  "CMakeFiles/wym_data.dir/catalog.cc.o"
  "CMakeFiles/wym_data.dir/catalog.cc.o.d"
  "CMakeFiles/wym_data.dir/corruption.cc.o"
  "CMakeFiles/wym_data.dir/corruption.cc.o.d"
  "CMakeFiles/wym_data.dir/csv.cc.o"
  "CMakeFiles/wym_data.dir/csv.cc.o.d"
  "CMakeFiles/wym_data.dir/record.cc.o"
  "CMakeFiles/wym_data.dir/record.cc.o.d"
  "CMakeFiles/wym_data.dir/split.cc.o"
  "CMakeFiles/wym_data.dir/split.cc.o.d"
  "CMakeFiles/wym_data.dir/statistics.cc.o"
  "CMakeFiles/wym_data.dir/statistics.cc.o.d"
  "CMakeFiles/wym_data.dir/word_pools.cc.o"
  "CMakeFiles/wym_data.dir/word_pools.cc.o.d"
  "libwym_data.a"
  "libwym_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
