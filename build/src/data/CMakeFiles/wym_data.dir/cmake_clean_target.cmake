file(REMOVE_RECURSE
  "libwym_data.a"
)
