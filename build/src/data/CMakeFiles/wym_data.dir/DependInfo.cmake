
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augmentation.cc" "src/data/CMakeFiles/wym_data.dir/augmentation.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/augmentation.cc.o.d"
  "/root/repo/src/data/benchmark_gen.cc" "src/data/CMakeFiles/wym_data.dir/benchmark_gen.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/benchmark_gen.cc.o.d"
  "/root/repo/src/data/catalog.cc" "src/data/CMakeFiles/wym_data.dir/catalog.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/catalog.cc.o.d"
  "/root/repo/src/data/corruption.cc" "src/data/CMakeFiles/wym_data.dir/corruption.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/corruption.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/wym_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/csv.cc.o.d"
  "/root/repo/src/data/record.cc" "src/data/CMakeFiles/wym_data.dir/record.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/record.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/wym_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/split.cc.o.d"
  "/root/repo/src/data/statistics.cc" "src/data/CMakeFiles/wym_data.dir/statistics.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/statistics.cc.o.d"
  "/root/repo/src/data/word_pools.cc" "src/data/CMakeFiles/wym_data.dir/word_pools.cc.o" "gcc" "src/data/CMakeFiles/wym_data.dir/word_pools.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wym_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
