# Empty compiler generated dependencies file for wym_data.
# This may be replaced when dependencies are built.
