file(REMOVE_RECURSE
  "libwym_ml.a"
)
