
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/boosting.cc" "src/ml/CMakeFiles/wym_ml.dir/boosting.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/boosting.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/wym_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/classifier_pool.cc" "src/ml/CMakeFiles/wym_ml.dir/classifier_pool.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/classifier_pool.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/wym_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/wym_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/lda.cc" "src/ml/CMakeFiles/wym_ml.dir/lda.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/lda.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/wym_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/wym_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/wym_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/wym_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/wym_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/wym_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
