file(REMOVE_RECURSE
  "CMakeFiles/wym_ml.dir/boosting.cc.o"
  "CMakeFiles/wym_ml.dir/boosting.cc.o.d"
  "CMakeFiles/wym_ml.dir/classifier.cc.o"
  "CMakeFiles/wym_ml.dir/classifier.cc.o.d"
  "CMakeFiles/wym_ml.dir/classifier_pool.cc.o"
  "CMakeFiles/wym_ml.dir/classifier_pool.cc.o.d"
  "CMakeFiles/wym_ml.dir/forest.cc.o"
  "CMakeFiles/wym_ml.dir/forest.cc.o.d"
  "CMakeFiles/wym_ml.dir/knn.cc.o"
  "CMakeFiles/wym_ml.dir/knn.cc.o.d"
  "CMakeFiles/wym_ml.dir/lda.cc.o"
  "CMakeFiles/wym_ml.dir/lda.cc.o.d"
  "CMakeFiles/wym_ml.dir/linear.cc.o"
  "CMakeFiles/wym_ml.dir/linear.cc.o.d"
  "CMakeFiles/wym_ml.dir/metrics.cc.o"
  "CMakeFiles/wym_ml.dir/metrics.cc.o.d"
  "CMakeFiles/wym_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/wym_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/wym_ml.dir/scaler.cc.o"
  "CMakeFiles/wym_ml.dir/scaler.cc.o.d"
  "CMakeFiles/wym_ml.dir/tree.cc.o"
  "CMakeFiles/wym_ml.dir/tree.cc.o.d"
  "libwym_ml.a"
  "libwym_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
