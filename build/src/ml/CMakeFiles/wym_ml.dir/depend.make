# Empty dependencies file for wym_ml.
# This may be replaced when dependencies are built.
