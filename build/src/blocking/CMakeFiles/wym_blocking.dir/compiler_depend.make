# Empty compiler generated dependencies file for wym_blocking.
# This may be replaced when dependencies are built.
