file(REMOVE_RECURSE
  "libwym_blocking.a"
)
