file(REMOVE_RECURSE
  "CMakeFiles/wym_blocking.dir/blocker.cc.o"
  "CMakeFiles/wym_blocking.dir/blocker.cc.o.d"
  "libwym_blocking.a"
  "libwym_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
