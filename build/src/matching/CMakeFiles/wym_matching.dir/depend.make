# Empty dependencies file for wym_matching.
# This may be replaced when dependencies are built.
