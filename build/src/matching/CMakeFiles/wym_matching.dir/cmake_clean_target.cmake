file(REMOVE_RECURSE
  "libwym_matching.a"
)
