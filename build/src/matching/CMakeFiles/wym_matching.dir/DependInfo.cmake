
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/stable_marriage.cc" "src/matching/CMakeFiles/wym_matching.dir/stable_marriage.cc.o" "gcc" "src/matching/CMakeFiles/wym_matching.dir/stable_marriage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
