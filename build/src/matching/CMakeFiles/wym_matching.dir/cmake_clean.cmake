file(REMOVE_RECURSE
  "CMakeFiles/wym_matching.dir/stable_marriage.cc.o"
  "CMakeFiles/wym_matching.dir/stable_marriage.cc.o.d"
  "libwym_matching.a"
  "libwym_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
