
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/context_mixer.cc" "src/embedding/CMakeFiles/wym_embedding.dir/context_mixer.cc.o" "gcc" "src/embedding/CMakeFiles/wym_embedding.dir/context_mixer.cc.o.d"
  "/root/repo/src/embedding/cooc_embedder.cc" "src/embedding/CMakeFiles/wym_embedding.dir/cooc_embedder.cc.o" "gcc" "src/embedding/CMakeFiles/wym_embedding.dir/cooc_embedder.cc.o.d"
  "/root/repo/src/embedding/hash_embedder.cc" "src/embedding/CMakeFiles/wym_embedding.dir/hash_embedder.cc.o" "gcc" "src/embedding/CMakeFiles/wym_embedding.dir/hash_embedder.cc.o.d"
  "/root/repo/src/embedding/semantic_encoder.cc" "src/embedding/CMakeFiles/wym_embedding.dir/semantic_encoder.cc.o" "gcc" "src/embedding/CMakeFiles/wym_embedding.dir/semantic_encoder.cc.o.d"
  "/root/repo/src/embedding/siamese_calibrator.cc" "src/embedding/CMakeFiles/wym_embedding.dir/siamese_calibrator.cc.o" "gcc" "src/embedding/CMakeFiles/wym_embedding.dir/siamese_calibrator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wym_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
