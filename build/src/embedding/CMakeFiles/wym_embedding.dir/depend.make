# Empty dependencies file for wym_embedding.
# This may be replaced when dependencies are built.
