file(REMOVE_RECURSE
  "CMakeFiles/wym_embedding.dir/context_mixer.cc.o"
  "CMakeFiles/wym_embedding.dir/context_mixer.cc.o.d"
  "CMakeFiles/wym_embedding.dir/cooc_embedder.cc.o"
  "CMakeFiles/wym_embedding.dir/cooc_embedder.cc.o.d"
  "CMakeFiles/wym_embedding.dir/hash_embedder.cc.o"
  "CMakeFiles/wym_embedding.dir/hash_embedder.cc.o.d"
  "CMakeFiles/wym_embedding.dir/semantic_encoder.cc.o"
  "CMakeFiles/wym_embedding.dir/semantic_encoder.cc.o.d"
  "CMakeFiles/wym_embedding.dir/siamese_calibrator.cc.o"
  "CMakeFiles/wym_embedding.dir/siamese_calibrator.cc.o.d"
  "libwym_embedding.a"
  "libwym_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
