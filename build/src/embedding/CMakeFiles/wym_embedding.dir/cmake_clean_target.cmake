file(REMOVE_RECURSE
  "libwym_embedding.a"
)
