# Empty dependencies file for wym_baselines.
# This may be replaced when dependencies are built.
