file(REMOVE_RECURSE
  "CMakeFiles/wym_baselines.dir/automl.cc.o"
  "CMakeFiles/wym_baselines.dir/automl.cc.o.d"
  "CMakeFiles/wym_baselines.dir/cordel.cc.o"
  "CMakeFiles/wym_baselines.dir/cordel.cc.o.d"
  "CMakeFiles/wym_baselines.dir/ditto.cc.o"
  "CMakeFiles/wym_baselines.dir/ditto.cc.o.d"
  "CMakeFiles/wym_baselines.dir/dm_plus.cc.o"
  "CMakeFiles/wym_baselines.dir/dm_plus.cc.o.d"
  "CMakeFiles/wym_baselines.dir/similarity_features.cc.o"
  "CMakeFiles/wym_baselines.dir/similarity_features.cc.o.d"
  "libwym_baselines.a"
  "libwym_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
