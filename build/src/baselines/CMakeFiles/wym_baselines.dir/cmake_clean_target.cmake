file(REMOVE_RECURSE
  "libwym_baselines.a"
)
