
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/automl.cc" "src/baselines/CMakeFiles/wym_baselines.dir/automl.cc.o" "gcc" "src/baselines/CMakeFiles/wym_baselines.dir/automl.cc.o.d"
  "/root/repo/src/baselines/cordel.cc" "src/baselines/CMakeFiles/wym_baselines.dir/cordel.cc.o" "gcc" "src/baselines/CMakeFiles/wym_baselines.dir/cordel.cc.o.d"
  "/root/repo/src/baselines/ditto.cc" "src/baselines/CMakeFiles/wym_baselines.dir/ditto.cc.o" "gcc" "src/baselines/CMakeFiles/wym_baselines.dir/ditto.cc.o.d"
  "/root/repo/src/baselines/dm_plus.cc" "src/baselines/CMakeFiles/wym_baselines.dir/dm_plus.cc.o" "gcc" "src/baselines/CMakeFiles/wym_baselines.dir/dm_plus.cc.o.d"
  "/root/repo/src/baselines/similarity_features.cc" "src/baselines/CMakeFiles/wym_baselines.dir/similarity_features.cc.o" "gcc" "src/baselines/CMakeFiles/wym_baselines.dir/similarity_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wym_text.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/wym_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/wym_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/wym_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wym_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wym_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/wym_matching.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
