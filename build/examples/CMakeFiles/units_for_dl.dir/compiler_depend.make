# Empty compiler generated dependencies file for units_for_dl.
# This may be replaced when dependencies are built.
