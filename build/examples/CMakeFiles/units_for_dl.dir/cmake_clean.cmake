file(REMOVE_RECURSE
  "CMakeFiles/units_for_dl.dir/units_for_dl.cpp.o"
  "CMakeFiles/units_for_dl.dir/units_for_dl.cpp.o.d"
  "units_for_dl"
  "units_for_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/units_for_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
