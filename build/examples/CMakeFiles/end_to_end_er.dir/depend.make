# Empty dependencies file for end_to_end_er.
# This may be replaced when dependencies are built.
