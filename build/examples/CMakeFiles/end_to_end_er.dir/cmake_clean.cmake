file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_er.dir/end_to_end_er.cpp.o"
  "CMakeFiles/end_to_end_er.dir/end_to_end_er.cpp.o.d"
  "end_to_end_er"
  "end_to_end_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
