
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/model_persistence.cpp" "examples/CMakeFiles/model_persistence.dir/model_persistence.cpp.o" "gcc" "examples/CMakeFiles/model_persistence.dir/model_persistence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocking/CMakeFiles/wym_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/wym_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/wym_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wym_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/wym_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/wym_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/wym_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/wym_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/wym_la.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wym_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wym_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wym_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
