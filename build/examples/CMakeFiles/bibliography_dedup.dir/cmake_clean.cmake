file(REMOVE_RECURSE
  "CMakeFiles/bibliography_dedup.dir/bibliography_dedup.cpp.o"
  "CMakeFiles/bibliography_dedup.dir/bibliography_dedup.cpp.o.d"
  "bibliography_dedup"
  "bibliography_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
