file(REMOVE_RECURSE
  "CMakeFiles/paper_table1.dir/paper_table1.cpp.o"
  "CMakeFiles/paper_table1.dir/paper_table1.cpp.o.d"
  "paper_table1"
  "paper_table1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
