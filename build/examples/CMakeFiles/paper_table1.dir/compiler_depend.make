# Empty compiler generated dependencies file for paper_table1.
# This may be replaced when dependencies are built.
