# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/embedding_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/blocking_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
add_test(cli_smoke "/root/repo/tests/cli_smoke.sh" "/root/repo/build/tools/wym_cli")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
