# Empty compiler generated dependencies file for wym_cli.
# This may be replaced when dependencies are built.
