file(REMOVE_RECURSE
  "CMakeFiles/wym_cli.dir/wym_cli.cc.o"
  "CMakeFiles/wym_cli.dir/wym_cli.cc.o.d"
  "wym_cli"
  "wym_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wym_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
