file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_perturbation.dir/bench_fig8_perturbation.cc.o"
  "CMakeFiles/bench_fig8_perturbation.dir/bench_fig8_perturbation.cc.o.d"
  "bench_fig8_perturbation"
  "bench_fig8_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
