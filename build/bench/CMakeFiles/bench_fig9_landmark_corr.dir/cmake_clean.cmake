file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_landmark_corr.dir/bench_fig9_landmark_corr.cc.o"
  "CMakeFiles/bench_fig9_landmark_corr.dir/bench_fig9_landmark_corr.cc.o.d"
  "bench_fig9_landmark_corr"
  "bench_fig9_landmark_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_landmark_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
