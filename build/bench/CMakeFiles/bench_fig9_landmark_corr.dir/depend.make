# Empty dependencies file for bench_fig9_landmark_corr.
# This may be replaced when dependencies are built.
