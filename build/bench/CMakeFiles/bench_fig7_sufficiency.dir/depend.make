# Empty dependencies file for bench_fig7_sufficiency.
# This may be replaced when dependencies are built.
