file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sufficiency.dir/bench_fig7_sufficiency.cc.o"
  "CMakeFiles/bench_fig7_sufficiency.dir/bench_fig7_sufficiency.cc.o.d"
  "bench_fig7_sufficiency"
  "bench_fig7_sufficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sufficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
