file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_throughput.dir/bench_sec53_throughput.cc.o"
  "CMakeFiles/bench_sec53_throughput.dir/bench_sec53_throughput.cc.o.d"
  "bench_sec53_throughput"
  "bench_sec53_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
