# Empty compiler generated dependencies file for bench_sec54_user_study.
# This may be replaced when dependencies are built.
