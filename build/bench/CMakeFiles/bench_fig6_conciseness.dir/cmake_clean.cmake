file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_conciseness.dir/bench_fig6_conciseness.cc.o"
  "CMakeFiles/bench_fig6_conciseness.dir/bench_fig6_conciseness.cc.o.d"
  "bench_fig6_conciseness"
  "bench_fig6_conciseness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_conciseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
