# Empty dependencies file for bench_fig6_conciseness.
# This may be replaced when dependencies are built.
