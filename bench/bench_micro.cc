// Google-benchmark micro-benchmarks for the pipeline hot paths: the
// stable-marriage assignment, the semantic encoder, tokenization,
// Jaro-Winkler, and full decision-unit generation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "core/wym.h"
#include "data/benchmark_gen.h"
#include "data/csv.h"
#include "data/split.h"
#include "obs/event_log.h"
#include "obs/recorder.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "la/kernels.h"
#include "la/vector_ops.h"
#include "nn/mlp.h"
#include "embedding/semantic_encoder.h"
#include "matching/stable_marriage.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace {

using namespace wym;

void BM_StableMarriage(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  la::Matrix sim(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) sim.At(i, j) = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::StableMarriage(sim, 0.5));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_StableMarriage)->Range(4, 256)->Complexity();

void BM_Tokenizer(benchmark::State& state) {
  const text::Tokenizer tokenizer;
  const std::string value =
      "sony digital camera with lens kit dslra200w 10.2 mp, the deluxe";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(value));
  }
}
BENCHMARK(BM_Tokenizer);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::JaroWinklerSimilarity("dslra200w", "dslra300k"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_EncodeTokens(benchmark::State& state) {
  embedding::SemanticEncoderOptions options;
  options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(options);
  encoder.Fit({});
  const std::vector<std::string> tokens = {
      "sony", "digital", "camera", "lens", "kit", "dslra200w",
      "37.63", "deluxe", "compact", "optical"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeTokens(tokens));
  }
}
BENCHMARK(BM_EncodeTokens);

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  la::Vec a(n, 0.0f), b(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.Uniform(-1, 1));
    b[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::kernels::Dot(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_Dot)->Arg(48)->Arg(72)->Arg(256);

void BM_CosineUnit(benchmark::State& state) {
  const size_t n = 72;
  Rng rng(12);
  la::Vec a(n, 0.0f), b(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.Uniform(-1, 1));
    b[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  la::Normalize(&a);
  la::Normalize(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CosineUnit(a, b));
  }
}
BENCHMARK(BM_CosineUnit);

void BM_SimilarityMatrix(benchmark::State& state) {
  // Typical decision-unit shape: two ~token-count row sets of unit
  // embedding rows, one A * B^T kernel call.
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 72;
  Rng rng(13);
  std::vector<la::Vec> left(rows), right(rows);
  for (size_t i = 0; i < rows; ++i) {
    left[i].resize(dim);
    right[i].resize(dim);
    for (size_t j = 0; j < dim; ++j) {
      left[i][j] = static_cast<float>(rng.Uniform(-1, 1));
      right[i][j] = static_cast<float>(rng.Uniform(-1, 1));
    }
  }
  la::Vec packed_left, packed_right;
  core::PackUnitRows(left, &packed_left, nullptr);
  core::PackUnitRows(right, &packed_right, nullptr);
  std::vector<double> out(rows * rows);
  for (auto _ : state) {
    la::kernels::SimilarityMatrix(packed_left.data(), rows,
                                  packed_right.data(), rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SimilarityMatrix)->Range(4, 64)->Complexity();

/// Random unit rows packed then quantized — the int8 benches' shared
/// input shape.
struct QuantizedBenchRows {
  std::vector<int8_t> q;
  std::vector<float> scales;
};

QuantizedBenchRows MakeQuantizedRows(Rng* rng, size_t rows, size_t dim) {
  std::vector<la::Vec> source(rows);
  for (size_t i = 0; i < rows; ++i) {
    source[i].resize(dim);
    for (size_t j = 0; j < dim; ++j) {
      source[i][j] = static_cast<float>(rng->Uniform(-1, 1));
    }
  }
  la::Vec packed;
  core::PackUnitRows(source, &packed, nullptr);
  QuantizedBenchRows out;
  core::QuantizeUnitRows(packed.data(), rows, dim, &out.q, &out.scales);
  return out;
}

void BM_DotI8(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  const QuantizedBenchRows a = MakeQuantizedRows(&rng, 1, n);
  const QuantizedBenchRows b = MakeQuantizedRows(&rng, 1, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::kernels::DotI8(
        a.q.data(), b.q.data(), n, a.scales[0], b.scales[0]));
  }
}
BENCHMARK(BM_DotI8)->Arg(48)->Arg(72)->Arg(256);

void BM_QuantizeRows(benchmark::State& state) {
  // Encode-time cost of the int8 cache: quantizing one record's packed
  // unit rows.
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 72;
  Rng rng(13);
  std::vector<la::Vec> source(rows);
  for (size_t i = 0; i < rows; ++i) {
    source[i].resize(dim);
    for (size_t j = 0; j < dim; ++j) {
      source[i][j] = static_cast<float>(rng.Uniform(-1, 1));
    }
  }
  la::Vec packed;
  core::PackUnitRows(source, &packed, nullptr);
  std::vector<int8_t> q(rows * dim);
  std::vector<float> scales(rows);
  for (auto _ : state) {
    la::kernels::QuantizeRowsI8(packed.data(), rows, dim, q.data(),
                                scales.data());
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_QuantizeRows)->Arg(64);

void BM_SimilarityMatrixI8(benchmark::State& state) {
  // Mirror of BM_SimilarityMatrix (same row counts, dim 72) over the
  // quantized rows, so the /N names align for fp-vs-int8 comparison.
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 72;
  Rng rng(13);
  const QuantizedBenchRows left = MakeQuantizedRows(&rng, rows, dim);
  const QuantizedBenchRows right = MakeQuantizedRows(&rng, rows, dim);
  std::vector<double> out(rows * rows);
  for (auto _ : state) {
    la::kernels::SimilarityMatrixI8(left.q.data(), rows, left.scales.data(),
                                    right.q.data(), rows, right.scales.data(),
                                    dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SimilarityMatrixI8)->Range(4, 64)->Complexity();

void BM_SimilarityMatrixDim(benchmark::State& state) {
  // Dim sweep at the acceptance shape (64 rows): fp baseline.
  const size_t rows = 64;
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<la::Vec> left(rows), right(rows);
  for (size_t i = 0; i < rows; ++i) {
    left[i].resize(dim);
    right[i].resize(dim);
    for (size_t j = 0; j < dim; ++j) {
      left[i][j] = static_cast<float>(rng.Uniform(-1, 1));
      right[i][j] = static_cast<float>(rng.Uniform(-1, 1));
    }
  }
  la::Vec packed_left, packed_right;
  core::PackUnitRows(left, &packed_left, nullptr);
  core::PackUnitRows(right, &packed_right, nullptr);
  std::vector<double> out(rows * rows);
  for (auto _ : state) {
    la::kernels::SimilarityMatrix(packed_left.data(), rows,
                                  packed_right.data(), rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SimilarityMatrixDim)->Arg(48)->Arg(256);

void BM_SimilarityMatrixI8Dim(benchmark::State& state) {
  // Dim sweep at the acceptance shape (64 rows): int8 counterpart.
  const size_t rows = 64;
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(13);
  const QuantizedBenchRows left = MakeQuantizedRows(&rng, rows, dim);
  const QuantizedBenchRows right = MakeQuantizedRows(&rng, rows, dim);
  std::vector<double> out(rows * rows);
  for (auto _ : state) {
    la::kernels::SimilarityMatrixI8(left.q.data(), rows, left.scales.data(),
                                    right.q.data(), rows, right.scales.data(),
                                    dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SimilarityMatrixI8Dim)->Arg(48)->Arg(256);

void BM_UnitGeneration(benchmark::State& state) {
  // One realistic record from the product benchmark, fully encoded.
  // Packed embeddings are dropped so each Generate call pays the
  // per-pair packing fallback — the closest match to the pre-kernel
  // input state, and the fair historical comparison point.
  const data::Dataset dataset = data::GenerateById("S-WA", 42, 0.1);
  const text::Tokenizer tokenizer;
  embedding::SemanticEncoderOptions options;
  options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(options);
  encoder.Fit({});
  core::TokenizedRecord record = core::TokenizeRecord(
      dataset.records.front(), dataset.schema, tokenizer);
  core::EncodeEntity(encoder, &record.left);
  core::EncodeEntity(encoder, &record.right);
  record.left.packed_embeddings.clear();
  record.left.embedding_norms.clear();
  record.left.embedding_dim = 0;
  record.right.packed_embeddings.clear();
  record.right.embedding_norms.clear();
  record.right.embedding_dim = 0;
  const core::DecisionUnitGenerator generator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(record.left, record.right,
                                                dataset.schema.size()));
  }
}
BENCHMARK(BM_UnitGeneration);

void BM_UnitGeneration_Cached(benchmark::State& state) {
  // Same workload, but with the encode-time packed unit rows kept — the
  // path the real pipeline takes (EncodeEntity packs once per record).
  const data::Dataset dataset = data::GenerateById("S-WA", 42, 0.1);
  const text::Tokenizer tokenizer;
  embedding::SemanticEncoderOptions options;
  options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(options);
  encoder.Fit({});
  core::TokenizedRecord record = core::TokenizeRecord(
      dataset.records.front(), dataset.schema, tokenizer);
  core::EncodeEntity(encoder, &record.left);
  core::EncodeEntity(encoder, &record.right);
  const core::DecisionUnitGenerator generator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(record.left, record.right,
                                                dataset.schema.size()));
  }
}
BENCHMARK(BM_UnitGeneration_Cached);

void BM_UnitGeneration_CachedFp(benchmark::State& state) {
  // BM_UnitGeneration_Cached with the fp fallback pinned: the default
  // path is now quantized, so this keeps the full-precision trajectory
  // comparable across reports.
  const data::Dataset dataset = data::GenerateById("S-WA", 42, 0.1);
  const text::Tokenizer tokenizer;
  embedding::SemanticEncoderOptions options;
  options.mode = embedding::EncoderMode::kPretrained;
  embedding::SemanticEncoder encoder(options);
  encoder.Fit({});
  core::TokenizedRecord record = core::TokenizeRecord(
      dataset.records.front(), dataset.schema, tokenizer);
  core::EncodeEntity(encoder, &record.left);
  core::EncodeEntity(encoder, &record.right);
  core::UnitGeneratorOptions generator_options;
  generator_options.quantized = false;
  const core::DecisionUnitGenerator generator(generator_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Generate(record.left, record.right,
                                                dataset.schema.size()));
  }
}
BENCHMARK(BM_UnitGeneration_CachedFp);

void BM_MlpPredict(benchmark::State& state) {
  Rng rng(4);
  la::Matrix x(64, 96);
  std::vector<double> y(64);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t j = 0; j < 96; ++j) x.At(i, j) = rng.Uniform(-1, 1);
    y[i] = rng.Uniform(-1, 1);
  }
  nn::MlpOptions options;
  options.hidden = {64, 32};
  options.epochs = 2;
  nn::Mlp mlp(options);
  mlp.Fit(x, y);
  const std::vector<double> row = x.RowVector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Predict(row));
  }
}
BENCHMARK(BM_MlpPredict);

void BM_CsvRoundTrip(benchmark::State& state) {
  const data::Dataset dataset = data::GenerateById("S-FZ", 42, 0.2);
  for (auto _ : state) {
    const std::string csv = data::DatasetToCsv(dataset);
    benchmark::DoNotOptimize(data::DatasetFromCsv(csv, "bench"));
  }
}
BENCHMARK(BM_CsvRoundTrip);

void BM_GenerateDataset(benchmark::State& state) {
  const data::DatasetSpec* spec = data::FindSpec("S-WA");
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::GenerateDataset(*spec, 42, 0.1));
  }
}
BENCHMARK(BM_GenerateDataset);

// --- Serving-path telemetry overhead -------------------------------
// BM_ServePredict_TelemetryOff vs _TelemetryOn is the <=2% overhead
// gate from DESIGN.md "Telemetry": the On variant journals every
// request and records it into the flight-recorder ring; everything
// else (model, pairs, cache-off compute) is identical.

/// Lazily-built serving fixture: one fitted model registered under
/// "default" plus the test pairs to predict. Built on first use so
/// `--benchmark_filter` runs that skip the serve benchmarks never pay
/// the fit.
struct ServeBenchEnv {
  data::Dataset dataset;
  data::Split split;
  serve::ModelRegistry registry;
  bool ok = false;

  ServeBenchEnv()
      : dataset(data::GenerateById("S-FZ", 42, 0.2)),
        split(data::DefaultSplit(dataset, 42)) {
    core::WymModel model;
    model.Fit(split.train, split.validation);
    const std::string path = "/tmp/wym_bench_serve.model.wym";
    if (!model.SaveToFile(path).ok()) return;
    ok = registry.LoadModel("default", path).ok();
    std::remove(path.c_str());
  }

  static ServeBenchEnv& Get() {
    static ServeBenchEnv env;
    return env;
  }
};

void ServePredictLoop(benchmark::State& state, bool telemetry) {
  ServeBenchEnv& env = ServeBenchEnv::Get();
  if (!env.ok) {
    state.SkipWithError("serve fixture failed to build");
    return;
  }
  std::unique_ptr<wym::obs::EventLog> journal;
  std::unique_ptr<wym::obs::FlightRecorder> recorder;
  const std::string journal_path = "/tmp/wym_bench_serve.journal.jsonl";
  serve::ServiceOptions options;
  options.auto_dispatch = false;
  options.cache_entries = 0;  // Compute-dominated: every pair is a miss.
  if (telemetry) {
    wym::obs::EventLog::Options journal_options;
    journal_options.path = journal_path;
    journal = std::make_unique<wym::obs::EventLog>(journal_options);
    std::string error;
    if (!journal->Open(&error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    recorder = std::make_unique<wym::obs::FlightRecorder>(256);
    options.journal = journal.get();
    options.recorder = recorder.get();
  }
  serve::MatcherService service(&env.registry, options);

  size_t i = 0;
  for (auto _ : state) {
    serve::Request request;
    request.op = serve::Request::Op::kPredict;
    request.id = "bench";
    request.pairs.push_back(
        env.split.test.records[i % env.split.test.size()]);
    ++i;
    bool answered = false;
    const wym::Status admitted = service.Admit(
        std::move(request),
        [&answered](const serve::Response&) { answered = true; });
    (void)admitted;
    service.ProcessQueued();
    benchmark::DoNotOptimize(answered);
  }
  if (journal != nullptr) {
    journal->Close();
    std::remove(journal_path.c_str());
    std::remove((journal_path + ".1").c_str());
  }
}

void BM_ServePredict_TelemetryOff(benchmark::State& state) {
  ServePredictLoop(state, false);
}
BENCHMARK(BM_ServePredict_TelemetryOff);

void BM_ServePredict_TelemetryOn(benchmark::State& state) {
  ServePredictLoop(state, true);
}
BENCHMARK(BM_ServePredict_TelemetryOn);

void BM_JournalAppend(benchmark::State& state) {
  // The raw journal hot path alone: render + rotate check + fwrite +
  // flush for one record.
  wym::obs::EventLog::Options options;
  options.path = "/tmp/wym_bench_journal.jsonl";
  wym::obs::EventLog journal(options);
  std::string error;
  if (!journal.Open(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  wym::obs::RequestRecord record;
  wym::obs::SetRecordField(record.client_id, sizeof(record.client_id),
                           "bench");
  wym::obs::SetRecordField(record.op, sizeof(record.op), "predict");
  wym::obs::SetRecordField(record.model, sizeof(record.model), "default#1");
  record.pairs = 1;
  record.batches = 1;
  uint64_t sequence = 0;
  for (auto _ : state) {
    record.sequence = ++sequence;
    journal.Append(record);
  }
  journal.Close();
  std::remove(options.path.c_str());
  std::remove((options.path + ".1").c_str());
}
BENCHMARK(BM_JournalAppend);

}  // namespace

namespace {

/// Console reporter that also captures per-benchmark results for the
/// --json perf report (wym-bench-report/v1).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(wym::bench::PerfReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Aggregate || run.error_occurred) continue;
      report_->AddBenchmark(run.benchmark_name(), run.GetAdjustedRealTime(),
                            static_cast<uint64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  wym::bench::PerfReport* report_;
};

}  // namespace

// Custom main (instead of benchmark::benchmark_main) so the harness can
// strip --json[=PATH] before google-benchmark parses flags, then emit
// the machine-readable report next to the console output.
int main(int argc, char** argv) {
  wym::bench::PerfReport report =
      wym::bench::PerfReport::FromArgs("micro", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return report.Write() ? 0 : 1;
}
