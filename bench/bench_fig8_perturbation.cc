// Regenerates Figure 8: F1 after removing k decision units per record
// with three strategies — MoRF (most relevant first), LeRF (least
// relevant first) and Random. Expected shape: MoRF collapses F1 (often
// after a single unit on the hard datasets), LeRF stays flat or slightly
// improves, Random sits between.

#include <cstdio>

#include "bench_common.h"
#include "explain/evaluation.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Figure 8: MoRF / LeRF / Random unit removal (F1)");
  const double scale = bench::ScaleFromEnv();
  constexpr size_t kMaxK = 5;
  constexpr size_t kSampleRecords = 120;

  std::vector<std::string> headers = {"Dataset", "Strategy"};
  for (size_t k = 0; k <= kMaxK; ++k) {
    headers.push_back("k=" + std::to_string(k));
  }
  TablePrinter table(headers);

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);
    const core::WymModel model = bench::TrainWym(data);
    const data::Dataset sample = bench::Head(data.split.test, kSampleRecords);

    for (const auto strategy :
         {explain::RemovalStrategy::kMoRF, explain::RemovalStrategy::kLeRF,
          explain::RemovalStrategy::kRandom}) {
      std::vector<std::string> row = {spec.id,
                                      explain::RemovalStrategyName(strategy)};
      for (size_t k = 0; k <= kMaxK; ++k) {
        const double f1 = explain::F1AfterUnitRemoval(model, sample, strategy,
                                                      k, bench::kSeed + k);
        row.push_back(strings::FormatDouble(f1, 3));
      }
      table.AddRow(row);
    }
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
