// Regenerates Table 2 (the benchmark's descriptive statistics) and
// Figure 4 (average distribution of paired/unpaired decision units in
// matching vs non-matching records, with T-AB's unpaired outlier).

#include <cstdio>

#include "bench_common.h"
#include "core/tokenized_record.h"
#include "core/unit_generator.h"
#include "util/string_util.h"
#include "util/table.h"

namespace wym {
namespace {

struct UnitStats {
  double paired_match = 0.0;
  double unpaired_match = 0.0;
  double paired_non_match = 0.0;
  double unpaired_non_match = 0.0;
};

/// Counts average paired/unpaired units per record class using the
/// fine-tuned encoder (Figure 4 is computed before any matcher training).
UnitStats CollectUnitStats(const data::Dataset& dataset) {
  const text::Tokenizer tokenizer;
  embedding::SemanticEncoderOptions encoder_options;
  encoder_options.mode = embedding::EncoderMode::kFineTuned;
  encoder_options.hash_dim = 32;
  encoder_options.cooc_dim = 16;
  embedding::SemanticEncoder encoder(encoder_options);

  std::vector<core::TokenizedRecord> records;
  std::vector<std::vector<std::string>> corpus;
  for (const auto& record : dataset.records) {
    core::TokenizedRecord tokenized =
        core::TokenizeRecord(record, dataset.schema, tokenizer);
    corpus.push_back(tokenized.left.tokens);
    corpus.push_back(tokenized.right.tokens);
    records.push_back(std::move(tokenized));
  }
  encoder.Fit(corpus);

  const core::DecisionUnitGenerator generator;
  UnitStats stats;
  size_t matches = 0, non_matches = 0;
  for (auto& record : records) {
    core::EncodeEntity(encoder, &record.left);
    core::EncodeEntity(encoder, &record.right);
    size_t paired = 0, unpaired = 0;
    for (const auto& unit : generator.Generate(record.left, record.right,
                                               dataset.schema.size())) {
      (unit.paired ? paired : unpaired) += 1;
    }
    if (record.label == 1) {
      ++matches;
      stats.paired_match += static_cast<double>(paired);
      stats.unpaired_match += static_cast<double>(unpaired);
    } else {
      ++non_matches;
      stats.paired_non_match += static_cast<double>(paired);
      stats.unpaired_non_match += static_cast<double>(unpaired);
    }
  }
  if (matches > 0) {
    stats.paired_match /= static_cast<double>(matches);
    stats.unpaired_match /= static_cast<double>(matches);
  }
  if (non_matches > 0) {
    stats.paired_non_match /= static_cast<double>(non_matches);
    stats.unpaired_non_match /= static_cast<double>(non_matches);
  }
  return stats;
}

}  // namespace
}  // namespace wym

int main() {
  using namespace wym;
  bench::PrintBanner("Table 2: benchmark datasets / Figure 4: unit mix");
  const double scale = bench::ScaleFromEnv();

  TablePrinter table2({"Dataset", "Type", "Datasets", "Paper size",
                       "Paper %match", "Gen. size", "Gen. %match"});
  std::vector<std::pair<std::string, UnitStats>> figure4;
  for (const auto& spec : bench::SelectedSpecs()) {
    const data::Dataset dataset =
        data::GenerateDataset(spec, bench::kSeed, scale);
    table2.AddRow({spec.id, data::DatasetTypeName(spec.type), spec.full_name,
                   std::to_string(spec.paper_size),
                   strings::FormatDouble(spec.paper_match_percent, 2),
                   std::to_string(dataset.size()),
                   strings::FormatDouble(dataset.MatchPercent(), 2)});
    figure4.emplace_back(spec.id, CollectUnitStats(dataset));
  }
  table2.Print();

  std::printf("\nFigure 4: average decision units per record\n");
  TablePrinter fig4({"Dataset", "paired(match)", "unpaired(match)",
                     "paired(non-match)", "unpaired(non-match)"});
  for (const auto& [id, stats] : figure4) {
    fig4.AddRow(id, {stats.paired_match, stats.unpaired_match,
                     stats.paired_non_match, stats.unpaired_non_match},
                1);
  }
  fig4.Print();
  std::printf(
      "\nExpected shape: non-matching records carry more units overall and\n"
      "more unpaired than paired; the textual T-AB shows the largest\n"
      "unpaired counts (periphrasis in long descriptions).\n");
  return 0;
}
