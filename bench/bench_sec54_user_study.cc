// Regenerates §5.4: the user study — SIMULATED. The paper administered a
// questionnaire to 15 human raters comparing decision-unit explanations
// (WYM) against token-level explanations (DITTO+LIME) on three record
// pairs (a match, a non-match, and an identical-copy pair), reporting a
// preference for decision units and Fleiss' kappa = 0.787.
//
// Humans are not available to a benchmark binary, so this harness
// reproduces the *measurement machinery* with programmatic raters: each
// rater scores both explanation styles on conciseness (fewer elements
// carrying the impact) and locality (evidence named as pairs), with
// seeded per-rater noise; preferences are aggregated and Fleiss' kappa
// computed exactly as in the paper. See EXPERIMENTS.md for the
// simulation caveat.

#include <cstdio>

#include "baselines/ditto.h"
#include "bench_common.h"
#include "explain/evaluation.h"
#include "explain/lime.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace wym;

/// Conciseness proxy: share of total |weight| carried by the top-3
/// explanation elements (higher = easier to read).
double TokenConciseness(const explain::TokenLevelExplanation& e) {
  double total = 0.0;
  for (const auto& tw : e.weights) total += std::fabs(tw.weight);
  if (total <= 0.0) return 1.0;
  double top = 0.0;
  size_t taken = 0;
  for (size_t index : e.RankByMagnitude()) {
    top += std::fabs(e.weights[index].weight);
    if (++taken == 3) break;
  }
  return top / total;
}

double UnitConciseness(const core::Explanation& e) {
  return explain::CumulativeImpactShare(e, e.units.empty()
                                               ? 1.0
                                               : 3.0 / e.units.size());
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Section 5.4: user study (SIMULATED raters; see EXPERIMENTS.md)");
  constexpr size_t kRaters = 15;

  // One mid-sized dataset; the paper's three stimulus pairs: a matching
  // record, a non-matching record, and an identical-copy record.
  const data::DatasetSpec* spec = data::FindSpec("S-WA");
  const bench::PreparedData data =
      bench::Prepare(*spec, bench::ScaleFromEnv());
  const core::WymModel model = bench::TrainWym(data);
  baselines::DittoMatcher ditto;
  ditto.Fit(data.split.train, data.split.validation);
  explain::LimeOptions lime_options;
  lime_options.num_samples = 60;
  const explain::LimeExplainer lime(lime_options);

  std::vector<data::EmRecord> stimuli;
  for (const auto& record : data.split.test.records) {
    if (record.label == 1) {
      stimuli.push_back(record);
      break;
    }
  }
  for (const auto& record : data.split.test.records) {
    if (record.label == 0) {
      stimuli.push_back(record);
      break;
    }
  }
  {
    data::EmRecord copied = stimuli[0];
    copied.right = copied.left;  // Identical descriptions.
    copied.label = 1;
    stimuli.push_back(copied);
  }
  const char* stimulus_names[] = {"matching pair", "non-matching pair",
                                  "identical copy"};

  // ratings[subject][category]: 0 = prefers decision units, 1 = prefers
  // token-level explanation.
  std::vector<std::vector<int>> ratings(stimuli.size(),
                                        std::vector<int>(2, 0));
  TablePrinter table({"Stimulus", "unit conc.", "token conc.",
                      "prefer units", "prefer tokens"});

  Rng rng(bench::kSeed);
  for (size_t s = 0; s < stimuli.size(); ++s) {
    const core::Explanation unit_explanation = model.Explain(stimuli[s]);
    const explain::TokenLevelExplanation token_explanation =
        lime.Explain(ditto, stimuli[s]);
    const double unit_quality = UnitConciseness(unit_explanation);
    const double token_quality = TokenConciseness(token_explanation);
    const bool identical = stimuli[s].left.values == stimuli[s].right.values;

    for (size_t rater = 0; rater < kRaters; ++rater) {
      const double noise = rng.Normal(0.0, 0.05);
      // Rater model (documented simulation, see EXPERIMENTS.md): unit
      // explanations get a locality bonus — they name the evidence as
      // *pairs* instead of splitting it across two token lists. On an
      // identical-copy pair both styles are trivially readable, and the
      // paper reports raters were satisfied with the feature-based
      // explanation there; the bonus vanishes and simplicity wins.
      const double margin =
          identical ? noise - 0.05
                    : (unit_quality + 0.15) - token_quality + noise;
      const int prefers_tokens = margin < 0.0 ? 1 : 0;
      ++ratings[s][prefers_tokens];
    }
    table.AddRow({stimulus_names[s], strings::FormatDouble(unit_quality, 3),
                  strings::FormatDouble(token_quality, 3),
                  std::to_string(ratings[s][0]),
                  std::to_string(ratings[s][1])});
  }
  table.Print();

  const double kappa = stats::FleissKappa(ratings);
  std::printf("\nFleiss' kappa over the simulated panel: %.3f\n", kappa);
  std::printf("(Paper, with 15 human raters: 0.787 — good agreement,\n"
              "preference for decision-unit explanations except on the\n"
              "identical-copy stimulus.)\n");
  return 0;
}
