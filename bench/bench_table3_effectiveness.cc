// Regenerates Table 3: F1 of WYM vs the four baseline systems on the 12
// datasets, with per-dataset ranks and deltas. Expected shape: DITTO
// best on average; WYM / AutoML / CorDEL / DM+ close to each other; the
// easy datasets (S-FZ, S-IA, S-DA) near 1.0 and the hard ones (S-AG,
// T-AB, D-WA) lowest.
//
// WYM is trained twice — with the int8 quantized similarity-matrix path
// (the default) and with the fp fallback — and the per-dataset F1 drift
// between the two is reported, so the quantization precision trade
// stays measured, not assumed. The "WYM" column and the rank/delta
// columns use the int8 path, matching production defaults.

#include <cmath>
#include <cstdio>
#include <memory>

#include "baselines/automl.h"
#include "baselines/cordel.h"
#include "baselines/ditto.h"
#include "baselines/dm_plus.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wym;
  bench::PerfReport report =
      bench::PerfReport::FromArgs("table3", &argc, argv);
  bench::PrintBanner("Table 3: effectiveness (F1) vs competing systems");
  const double scale = bench::ScaleFromEnv();

  const std::vector<std::string> systems = {"WYM", "DM+", "AutoML", "CorDEL",
                                            "DITTO"};
  TablePrinter table({"Dataset", "WYM", "WYMfp", "dI8", "DM+", "AutoML",
                      "CorDEL", "DITTO", "rank(WYM)", "dDM+%", "dAutoML%",
                      "dCorDEL%", "dDITTO%"});
  std::vector<std::vector<double>> all_scores(systems.size());
  std::vector<double> all_ranks;
  std::vector<double> fp_scores, drifts;

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);

    std::vector<double> f1(systems.size());
    double f1_fp = 0.0;
    {
      const core::WymModel model = bench::TrainWym(data);
      // WYM predicts through the parallel batch path (PredictProbaBatch
      // on the global WYM_THREADS pool); results are bit-identical to
      // the sequential per-record loop.
      f1[0] = bench::TestF1(model, data.split, /*pool=*/nullptr);
    }
    {
      // Full-precision fallback: identical config except the quantized
      // knob, isolating the int8 drift.
      core::WymConfig fp_config;
      fp_config.generator.quantized = false;
      const core::WymModel model = bench::TrainWym(data, fp_config);
      f1_fp = bench::TestF1(model, data.split, /*pool=*/nullptr);
    }
    {
      baselines::DmPlusMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[1] = bench::TestF1(model, data.split);
    }
    {
      baselines::AutoMlMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[2] = bench::TestF1(model, data.split);
    }
    {
      baselines::CordelMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[3] = bench::TestF1(model, data.split);
    }
    {
      baselines::DittoMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[4] = bench::TestF1(model, data.split);
    }

    // Rank of WYM (1 = best; ties share the better rank as in the paper).
    size_t rank = 1;
    for (size_t s = 1; s < systems.size(); ++s) {
      if (f1[s] > f1[0]) ++rank;
    }
    const double drift = f1[0] - f1_fp;
    fp_scores.push_back(f1_fp);
    drifts.push_back(drift);

    std::vector<std::string> row = {spec.id};
    for (size_t s = 0; s < systems.size(); ++s) {
      row.push_back(strings::FormatDouble(f1[s], 3));
      all_scores[s].push_back(f1[s]);
      if (s == 0) {
        row.push_back(strings::FormatDouble(f1_fp, 3));
        row.push_back(strings::FormatDouble(drift, 4));
      }
    }
    row.push_back(std::to_string(rank));
    for (size_t s = 1; s < systems.size(); ++s) {
      row.push_back(strings::FormatDouble(100.0 * (f1[0] - f1[s]), 1));
    }
    table.AddRow(row);
    all_ranks.push_back(static_cast<double>(rank));
    std::printf("  [done] %s\n", spec.id.c_str());
  }

  std::printf("\n");
  std::vector<std::string> avg_row = {"AVG"};
  for (size_t s = 0; s < all_scores.size(); ++s) {
    avg_row.push_back(strings::FormatDouble(stats::Mean(all_scores[s]), 3));
    if (s == 0) {
      avg_row.push_back(strings::FormatDouble(stats::Mean(fp_scores), 3));
      avg_row.push_back(strings::FormatDouble(stats::Mean(drifts), 4));
    }
  }
  avg_row.push_back(strings::FormatDouble(stats::Mean(all_ranks), 1));
  for (size_t s = 1; s < systems.size(); ++s) {
    avg_row.push_back(strings::FormatDouble(
        100.0 * (stats::Mean(all_scores[0]) - stats::Mean(all_scores[s])),
        1));
  }
  table.AddRow(avg_row);
  table.Print();

  double max_abs_drift = 0.0, sum_abs_drift = 0.0;
  for (const double d : drifts) {
    const double a = std::fabs(d);
    sum_abs_drift += a;
    if (a > max_abs_drift) max_abs_drift = a;
  }
  const double mean_abs_drift =
      drifts.empty() ? 0.0 : sum_abs_drift / static_cast<double>(drifts.size());
  std::printf(
      "\nint8 quantization drift (F1, int8 - fp): mean |d| = %.4f, "
      "max |d| = %.4f (budget: 0.002 absolute)\n",
      mean_abs_drift, max_abs_drift);
  report.AddRate("table3.f1_drift_i8_mean_abs", mean_abs_drift);
  report.AddRate("table3.f1_drift_i8_max_abs", max_abs_drift);
  report.AddRate("table3.f1_wym_i8_mean", stats::Mean(all_scores[0]));
  report.AddRate("table3.f1_wym_fp_mean", stats::Mean(fp_scores));
  report.Write();
  return 0;
}
