// Regenerates Table 3: F1 of WYM vs the four baseline systems on the 12
// datasets, with per-dataset ranks and deltas. Expected shape: DITTO
// best on average; WYM / AutoML / CorDEL / DM+ close to each other; the
// easy datasets (S-FZ, S-IA, S-DA) near 1.0 and the hard ones (S-AG,
// T-AB, D-WA) lowest.

#include <cstdio>
#include <memory>

#include "baselines/automl.h"
#include "baselines/cordel.h"
#include "baselines/ditto.h"
#include "baselines/dm_plus.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Table 3: effectiveness (F1) vs competing systems");
  const double scale = bench::ScaleFromEnv();

  const std::vector<std::string> systems = {"WYM", "DM+", "AutoML", "CorDEL",
                                            "DITTO"};
  TablePrinter table({"Dataset", "WYM", "DM+", "AutoML", "CorDEL", "DITTO",
                      "rank(WYM)", "dDM+%", "dAutoML%", "dCorDEL%",
                      "dDITTO%"});
  std::vector<std::vector<double>> all_scores(systems.size());
  std::vector<double> all_ranks;

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);

    std::vector<double> f1(systems.size());
    {
      const core::WymModel model = bench::TrainWym(data);
      // WYM predicts through the parallel batch path (PredictProbaBatch
      // on the global WYM_THREADS pool); results are bit-identical to
      // the sequential per-record loop.
      f1[0] = bench::TestF1(model, data.split, /*pool=*/nullptr);
    }
    {
      baselines::DmPlusMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[1] = bench::TestF1(model, data.split);
    }
    {
      baselines::AutoMlMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[2] = bench::TestF1(model, data.split);
    }
    {
      baselines::CordelMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[3] = bench::TestF1(model, data.split);
    }
    {
      baselines::DittoMatcher model;
      model.Fit(data.split.train, data.split.validation);
      f1[4] = bench::TestF1(model, data.split);
    }

    // Rank of WYM (1 = best; ties share the better rank as in the paper).
    size_t rank = 1;
    for (size_t s = 1; s < systems.size(); ++s) {
      if (f1[s] > f1[0]) ++rank;
    }
    std::vector<std::string> row = {spec.id};
    for (size_t s = 0; s < systems.size(); ++s) {
      row.push_back(strings::FormatDouble(f1[s], 3));
      all_scores[s].push_back(f1[s]);
    }
    row.push_back(std::to_string(rank));
    for (size_t s = 1; s < systems.size(); ++s) {
      row.push_back(strings::FormatDouble(100.0 * (f1[0] - f1[s]), 1));
    }
    table.AddRow(row);
    all_ranks.push_back(static_cast<double>(rank));
    std::printf("  [done] %s\n", spec.id.c_str());
  }

  std::printf("\n");
  std::vector<std::string> avg_row = {"AVG"};
  for (const auto& scores : all_scores) {
    avg_row.push_back(strings::FormatDouble(stats::Mean(scores), 3));
  }
  avg_row.push_back(strings::FormatDouble(stats::Mean(all_ranks), 1));
  for (size_t s = 1; s < systems.size(); ++s) {
    avg_row.push_back(strings::FormatDouble(
        100.0 * (stats::Mean(all_scores[0]) - stats::Mean(all_scores[s])),
        1));
  }
  table.AddRow(avg_row);
  table.Print();
  return 0;
}
