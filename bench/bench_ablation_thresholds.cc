// Design-choice ablation (DESIGN.md / paper §4.1.2 and §4.2): sensitivity
// of WYM's F1 to the pairing thresholds (theta/eta/epsilon as a family,
// preserving the paper's increasing ordering) and to the Eq. 2 label
// thresholds alpha/beta. The paper states both are "experimentally
// determined" and that increasing theta < eta < epsilon works best; this
// harness regenerates that evidence on the substitute encoder.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner(
      "Ablation: pairing thresholds (theta/eta/epsilon) and Eq.2 alpha/beta");
  const double scale = bench::ScaleFromEnv();

  // A spread of dataset difficulties keeps the sweep honest.
  const std::vector<std::string> ids = {"S-DA", "S-WA", "D-DG"};

  // --- Sweep 1: shift the whole theta/eta/epsilon family. ---
  const std::vector<double> theta_grid = {0.25, 0.35, 0.45, 0.55, 0.65};
  {
    std::vector<std::string> headers = {"Dataset"};
    for (double theta : theta_grid) {
      headers.push_back("th=" + strings::FormatDouble(theta, 2));
    }
    TablePrinter table(headers);
    for (const auto& id : ids) {
      const bench::PreparedData data =
          bench::Prepare(*data::FindSpec(id), scale);
      std::vector<std::string> row = {id};
      for (double theta : theta_grid) {
        core::WymConfig config;
        config.generator.theta = theta;
        config.generator.eta = theta + 0.05;
        config.generator.epsilon = theta + 0.10;
        const core::WymModel model = bench::TrainWym(data, config);
        row.push_back(
            strings::FormatDouble(bench::TestF1(model, data.split), 3));
      }
      table.AddRow(row);
      std::printf("  [done] thresholds %s\n", id.c_str());
    }
    std::printf("\nF1 vs pairing-threshold family (eta=th+0.05, eps=th+0.10):\n");
    table.Print();
  }

  // --- Sweep 2: ordering ablation — does theta < eta < epsilon matter? ---
  {
    TablePrinter table({"Dataset", "increasing", "flat", "decreasing"});
    for (const auto& id : ids) {
      const bench::PreparedData data =
          bench::Prepare(*data::FindSpec(id), scale);
      auto run = [&](double theta, double eta, double epsilon) {
        core::WymConfig config;
        config.generator.theta = theta;
        config.generator.eta = eta;
        config.generator.epsilon = epsilon;
        const core::WymModel model = bench::TrainWym(data, config);
        return bench::TestF1(model, data.split);
      };
      table.AddRow(id,
                   {run(0.45, 0.50, 0.55), run(0.50, 0.50, 0.50),
                    run(0.55, 0.50, 0.45)},
                   3);
      std::printf("  [done] ordering %s\n", id.c_str());
    }
    std::printf("\nF1 vs threshold ordering (paper: increasing works best):\n");
    table.Print();
  }

  // --- Sweep 3: Eq. 2 alpha/beta label thresholds. ---
  {
    const std::vector<std::pair<double, double>> ab_grid = {
        {0.35, 0.25}, {0.45, 0.35}, {0.55, 0.45}, {0.65, 0.55},
        {0.75, 0.65}};
    std::vector<std::string> headers = {"Dataset"};
    for (const auto& [alpha, beta] : ab_grid) {
      headers.push_back("a=" + strings::FormatDouble(alpha, 2));
    }
    TablePrinter table(headers);
    for (const auto& id : ids) {
      const bench::PreparedData data =
          bench::Prepare(*data::FindSpec(id), scale);
      std::vector<std::string> row = {id};
      for (const auto& [alpha, beta] : ab_grid) {
        core::WymConfig config;
        config.scorer.alpha = alpha;
        config.scorer.beta = beta;
        const core::WymModel model = bench::TrainWym(data, config);
        row.push_back(
            strings::FormatDouble(bench::TestF1(model, data.split), 3));
      }
      table.AddRow(row);
      std::printf("  [done] alpha/beta %s\n", id.c_str());
    }
    std::printf("\nF1 vs Eq.2 thresholds (beta = alpha - 0.10):\n");
    table.Print();
  }
  return 0;
}
