// Regenerates §5.3: time performance — end-to-end training throughput,
// prediction/explanation throughput (records/second) and the pipeline
// time breakdown per stage. The paper reports training throughput
// comparable to DITTO (~9 rec/s on their GPU box), ~20 explanations/s
// (70k+/hour), and ~40% of inference time spent on the explanation side.
// Absolute numbers differ on this substrate; the harness reports the
// same quantities.
//
// Explanation throughput is measured twice through the batch API
// (WymModel::ExplainBatch): once on a 1-thread pool (the sequential
// baseline) and once on the global WYM_THREADS pool, so the speedup of
// the deterministic parallel runtime is visible side by side. Both runs
// produce bit-identical explanations (see DESIGN.md "Threading model").

#include <cstdio>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace wym;
  bench::PerfReport report =
      bench::PerfReport::FromArgs("sec53_throughput", &argc, argv);
  bench::PrintBanner("Section 5.3: time performance");
  const double scale = bench::ScaleFromEnv();

  const size_t n_threads = util::ThreadPool::DefaultThreadCount();
  util::ThreadPool sequential_pool(1);
  std::printf("Thread pool: %zu thread(s) (WYM_THREADS to override).\n\n",
              n_threads);

  TablePrinter table(
      {"Dataset", "train recs", "train s", "train rec/s", "explain rec/s 1T",
       "explain rec/s " + std::to_string(n_threads) + "T", "speedup",
       "encode %", "units %", "score %", "classify %", "impacts %"});

  for (const auto& spec : bench::SelectedSpecs()) {
    const bench::PreparedData data = bench::Prepare(spec, scale);

    Stopwatch train_watch;
    const core::WymModel model = bench::TrainWym(data);
    const double train_seconds = train_watch.ElapsedSeconds();

    const data::Dataset sample = bench::Head(data.split.test, 150);

    // Batch explanation throughput: sequential baseline vs the pool.
    const double rps_1t =
        bench::ExplainRecPerSec(model, sample, &sequential_pool);
    const double rps_nt = bench::ExplainRecPerSec(model, sample, nullptr);

    // Per-stage timing of the inference pipeline (sequential, so the
    // percentages describe one record's critical path).
    double t_encode = 0.0, t_units = 0.0, t_score = 0.0, t_classify = 0.0,
           t_impacts = 0.0;
    Stopwatch watch;
    for (const auto& record : sample.records) {
      watch.Reset();
      const core::TokenizedRecord tokenized = model.Prepare(record);
      t_encode += watch.ElapsedSeconds();

      watch.Reset();
      core::ScoredUnitSet set;
      set.units = model.GenerateUnits(tokenized);
      t_units += watch.ElapsedSeconds();

      watch.Reset();
      set.scores = model.ScoreUnits(tokenized, set.units);
      t_score += watch.ElapsedSeconds();

      watch.Reset();
      (void)model.PredictProbaFromUnits(set);
      t_classify += watch.ElapsedSeconds();

      watch.Reset();
      (void)model.matcher().UnitImpacts(set);
      t_impacts += watch.ElapsedSeconds();
    }
    const double total =
        t_encode + t_units + t_score + t_classify + t_impacts;
    auto pct = [&](double t) {
      return strings::FormatDouble(total > 0 ? 100.0 * t / total : 0.0, 1);
    };
    table.AddRow({spec.id, std::to_string(data.split.train.size()),
                  strings::FormatDouble(train_seconds, 2),
                  strings::FormatDouble(
                      static_cast<double>(data.split.train.size()) /
                          std::max(train_seconds, 1e-9),
                      1),
                  strings::FormatDouble(rps_1t, 1),
                  strings::FormatDouble(rps_nt, 1),
                  strings::FormatDouble(rps_nt / std::max(rps_1t, 1e-9), 2),
                  pct(t_encode), pct(t_units), pct(t_score), pct(t_classify),
                  pct(t_impacts)});
    report.AddStage(spec.id + ".train", train_seconds);
    report.AddStage(spec.id + ".infer.encode", t_encode);
    report.AddStage(spec.id + ".infer.units", t_units);
    report.AddStage(spec.id + ".infer.score", t_score);
    report.AddStage(spec.id + ".infer.classify", t_classify);
    report.AddStage(spec.id + ".infer.impacts", t_impacts);
    report.AddRate(spec.id + ".train_rec_per_sec",
                   static_cast<double>(data.split.train.size()) /
                       std::max(train_seconds, 1e-9));
    report.AddRate(spec.id + ".explain_rec_per_sec_1t", rps_1t);
    report.AddRate(spec.id + ".explain_rec_per_sec_nt", rps_nt);
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nShape check vs the paper: explanation throughput extrapolates to\n"
      "tens of thousands per hour; the explanation-specific stages (unit\n"
      "scoring + impact attribution) are a visible share of inference\n"
      "(the paper reports ~40%% on their BERT-sized stack). The 1T vs NT\n"
      "columns compare the same batch API on a 1-thread pool and on the\n"
      "WYM_THREADS-sized global pool; outputs are bit-identical.\n");
  return report.Write() ? 0 : 1;
}
