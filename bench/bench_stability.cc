// Seed-stability harness: WYM's test F1 across independent dataset +
// pipeline seeds, per dataset (mean ± SD). Backs the variance notes in
// EXPERIMENTS.md — the paper itself flags small-dataset variance (S-BR's
// 91-record test set, §5.1.2/§5.2.2).

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace wym;
  bench::PrintBanner("Seed stability: WYM F1 across 5 seeds");
  const double scale = bench::ScaleFromEnv();
  const std::vector<uint64_t> seeds = {11, 42, 77, 123, 2023};

  TablePrinter table({"Dataset", "mean F1", "SD", "min", "max"});
  for (const auto& spec : bench::SelectedSpecs()) {
    std::vector<double> scores;
    for (uint64_t seed : seeds) {
      const bench::PreparedData data = bench::Prepare(spec, scale, seed);
      core::WymConfig config;
      config.seed = seed;
      const core::WymModel model = bench::TrainWym(data, config);
      scores.push_back(bench::TestF1(model, data.split));
    }
    table.AddRow(spec.id,
                 {stats::Mean(scores), stats::StdDev(scores),
                  stats::Min(scores), stats::Max(scores)},
                 3);
    std::printf("  [done] %s\n", spec.id.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nExpected shape: the large datasets are stable within a few F1\n"
      "points; the small ones (S-BR, S-IA, S-FZ) and the hard ones swing\n"
      "more, as the paper notes for its smallest test sets.\n");
  return 0;
}
